#include "tools/lint/rules.h"

#include <array>
#include <cctype>
#include <cstddef>

namespace opdelta::lint {

namespace {

constexpr size_t kNpos = static_cast<size_t>(-1);

const char* kRuleNames[] = {
    "", "opdelta-R1", "opdelta-R2", "opdelta-R3", "opdelta-R4", "opdelta-R5",
    "opdelta-R6", "opdelta-R7", "opdelta-R8", "opdelta-R9",
};

const char* kRuleSummaries[] = {
    "",
    "discarded Status/Result return value",
    "raw filesystem access bypassing common::Env",
    "lock discipline: bare cv wait / callback under lock",
    "naked new/delete or missing [[nodiscard]]",
    "hygiene: forbidden include or untagged TODO; NOLINT without a reason",
    "decode/apply hot-path hygiene: ad-hoc SchemaMap, or Parser::Parse "
    "re-parsed inside a loop instead of going through StatementCache",
    "lock-order cycle or declared-rank inversion in the acquisition graph",
    "potentially blocking call (Env I/O, queue, ship, wait) under a lock",
    "mutex member without an OPDELTA_LOCK_RANK annotation",
};

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string TrimmedLine(const FileUnit& unit, uint32_t line) {
  if (line == 0 || line > unit.lines.size()) return "";
  const std::string& raw = unit.lines[line - 1];
  size_t b = raw.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = raw.find_last_not_of(" \t");
  return raw.substr(b, e - b + 1);
}

void Report(const FileUnit& unit, RuleId rule, uint32_t line,
            std::string message, std::vector<Finding>* findings) {
  findings->push_back(Finding{rule, unit.path, line, std::move(message),
                              TrimmedLine(unit, line)});
}

bool PathContains(const std::string& path, const char* needle) {
  return path.find(needle) != std::string::npos;
}

/// Returns the index just past the token matching the opener at `i`
/// (tokens[i] must be "(", "[" or "{"), or kNpos when unbalanced.
size_t SkipBalanced(const std::vector<Token>& toks, size_t i) {
  const std::string& open = toks[i].text;
  const char* close = open == "(" ? ")" : open == "[" ? "]" : "}";
  int depth = 0;
  for (; i < toks.size() && toks[i].kind != TokenKind::kEof; ++i) {
    if (toks[i].kind != TokenKind::kPunct) continue;
    if (toks[i].text == open) {
      ++depth;
    } else if (toks[i].text == close) {
      if (--depth == 0) return i + 1;
    }
  }
  return kNpos;
}

/// Matches a template argument list starting at `<`; returns index past the
/// closing `>`, or kNpos when this is not a plausible template (statement
/// punctuation hit first).
size_t SkipAngles(const std::vector<Token>& toks, size_t i) {
  int depth = 0;
  for (; i < toks.size() && toks[i].kind != TokenKind::kEof; ++i) {
    if (toks[i].kind != TokenKind::kPunct) continue;
    const std::string& t = toks[i].text;
    if (t == "<") {
      ++depth;
    } else if (t == ">") {
      if (--depth == 0) return i + 1;
    } else if (t == ";" || t == "{" || t == "}") {
      return kNpos;  // statement boundary: was a comparison, not a template
    }
  }
  return kNpos;
}

bool IsStatementKeyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "return",   "if",     "while",  "for",      "switch", "case",
      "goto",     "else",   "do",     "break",    "continue", "using",
      "typedef",  "new",    "delete", "throw",    "co_return", "co_await",
      "co_yield", "public", "private", "protected", "template", "class",
      "struct",   "enum",   "namespace", "static", "const", "constexpr",
      "auto",     "void",   "sizeof", "default",  "try",   "catch",
  };
  return kKeywords.count(s) > 0;
}

// --------------------------------------------------------------- pass 1

/// Consumes `ident (:: ident)*` starting at i; returns index past the chain
/// and the final identifier, or kNpos when i is not an identifier.
size_t ConsumeQualifiedName(const std::vector<Token>& toks, size_t i,
                            std::string* last) {
  if (toks[i].kind != TokenKind::kIdent) return kNpos;
  *last = toks[i].text;
  ++i;
  while (i + 1 < toks.size() && toks[i].IsPunct("::") &&
         toks[i + 1].kind == TokenKind::kIdent) {
    *last = toks[i + 1].text;
    i += 2;
  }
  return i;
}

/// Statement-context keywords that cannot be the return type of a function
/// declaration: `return Foo(x)` / `throw Foo(x)` must not make Foo look like
/// a declared function in pass 1. Type-ish keywords (void, bool, auto, ...)
/// are deliberately absent — `void Init(` IS a declaration.
bool IsNonTypeKeyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "return",  "if",       "while",     "for",       "switch",
      "case",    "goto",     "else",      "do",        "break",
      "continue", "using",   "typedef",   "new",       "delete",
      "throw",   "co_return", "co_await", "co_yield",  "template",
      "class",   "struct",   "enum",      "namespace", "public",
      "private", "protected", "sizeof",   "operator",  "default",
      "try",     "catch",    "friend",    "virtual",   "explicit",
      "inline",  "static",   "const",     "constexpr", "typename",
  };
  return kKeywords.count(s) > 0;
}

void CollectFromUnit(const FileUnit& unit, SymbolIndex* index,
                     std::set<std::string>* non_status_functions) {
  const auto& toks = unit.tokens;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    // `Status Name(` / `Status Class::Name(` — declaration or definition of
    // a Status-returning function.
    if (toks[i].IsIdent("Status")) {
      std::string name;
      size_t j = ConsumeQualifiedName(toks, i + 1, &name);
      if (j != kNpos && j < toks.size() && toks[j].IsPunct("(") &&
          !IsStatementKeyword(name)) {
        index->status_functions.insert(name);
      }
      continue;
    }
    // `Type Name(` with any other unqualified return type — records names
    // that must NOT fire R1 even if the same name returns Status elsewhere.
    if (toks[i].kind == TokenKind::kIdent && !IsNonTypeKeyword(toks[i].text) &&
        !toks[i].IsIdent("Result") &&
        !(i > 0 && (toks[i - 1].IsPunct("::") || toks[i - 1].IsPunct(".") ||
                    toks[i - 1].IsPunct("->")))) {
      std::string name;
      size_t j = ConsumeQualifiedName(toks, i + 1, &name);
      if (j != kNpos && j < toks.size() && toks[j].IsPunct("(") &&
          !IsStatementKeyword(name) && !IsNonTypeKeyword(name)) {
        non_status_functions->insert(name);
      }
      // No continue: toks[i+1] may itself start a `Status Name(` match.
    }
    // `Result<...> Name(`.
    if (toks[i].IsIdent("Result") && toks[i + 1].IsPunct("<")) {
      size_t j = SkipAngles(toks, i + 1);
      if (j == kNpos) continue;
      std::string name;
      j = ConsumeQualifiedName(toks, j, &name);
      if (j != kNpos && j < toks.size() && toks[j].IsPunct("(") &&
          !IsStatementKeyword(name)) {
        index->status_functions.insert(name);
      }
      continue;
    }
    // `std::function<...> [&] name` — a stored or passed callback.
    if (toks[i].IsIdent("function") && i >= 2 && toks[i - 1].IsPunct("::") &&
        toks[i - 2].IsIdent("std") && toks[i + 1].IsPunct("<")) {
      size_t j = SkipAngles(toks, i + 1);
      if (j == kNpos) continue;
      while (j < toks.size() &&
             (toks[j].IsPunct("&") || toks[j].IsPunct("*") ||
              toks[j].IsIdent("const"))) {
        ++j;
      }
      if (j < toks.size() && toks[j].kind == TokenKind::kIdent &&
          !IsStatementKeyword(toks[j].text)) {
        index->function_objects.insert(toks[j].text);
      }
    }
  }
}

// ----------------------------------------------------------- R1 engine

/// True when `i` starts an expression statement. Conservative: positions
/// after `; { } :` and after `)` (so `if (x) Foo();` is covered), plus
/// after `else` / `do`.
bool IsStatementStart(const std::vector<Token>& toks, size_t i) {
  if (i == 0) return true;
  const Token& p = toks[i - 1];
  if (p.kind == TokenKind::kPunct) {
    const std::string& t = p.text;
    if (t == ":") {
      // A label (`case X:`) starts a statement; a ternary's else arm does
      // not. The two are told apart by a `?` earlier in the statement.
      for (size_t j = i - 1; j-- > 0;) {
        if (toks[j].IsPunct("?")) return false;
        if (toks[j].IsPunct(";") || toks[j].IsPunct("{") ||
            toks[j].IsPunct("}")) {
          break;
        }
      }
      return true;
    }
    return t == ";" || t == "{" || t == "}" || t == ")";
  }
  return p.IsIdent("else") || p.IsIdent("do");
}

/// Tries to parse, starting at `i`, a full-statement postfix call chain
/// `a::b->c(...).d(...);` whose value is discarded. On success returns the
/// name of the last function called and sets *line; otherwise returns "".
std::string MatchDiscardedCall(const std::vector<Token>& toks, size_t i,
                               uint32_t* line) {
  size_t j = i;
  if (toks[j].IsPunct("::")) ++j;
  if (j >= toks.size() || toks[j].kind != TokenKind::kIdent ||
      IsStatementKeyword(toks[j].text)) {
    return "";
  }
  std::string pending = toks[j].text;  // identifier a `(` would call
  std::string last_called;
  uint32_t last_line = toks[j].line;
  ++j;
  while (j < toks.size()) {
    const Token& t = toks[j];
    if (t.kind != TokenKind::kPunct) break;
    if ((t.text == "::" || t.text == "." || t.text == "->") &&
        j + 1 < toks.size() && toks[j + 1].kind == TokenKind::kIdent) {
      pending = toks[j + 1].text;
      last_line = toks[j + 1].line;
      j += 2;
      continue;
    }
    if (t.text == "(") {
      size_t k = SkipBalanced(toks, j);
      if (k == kNpos) return "";
      last_called = pending;
      pending.clear();
      j = k;
      continue;
    }
    if (t.text == "[") {
      size_t k = SkipBalanced(toks, j);
      if (k == kNpos) return "";
      j = k;
      continue;
    }
    break;
  }
  if (j < toks.size() && toks[j].IsPunct(";") && !last_called.empty()) {
    *line = last_line;
    return last_called;
  }
  return "";
}

void RunR1(const FileUnit& unit, const SymbolIndex& index,
           std::vector<Finding>* findings) {
  const auto& toks = unit.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdent && !toks[i].IsPunct("::")) continue;
    if (!IsStatementStart(toks, i)) continue;
    // `(void)Foo();` is the sanctioned explicit discard — never a finding.
    if (i >= 3 && toks[i - 1].IsPunct(")") && toks[i - 2].IsIdent("void") &&
        toks[i - 3].IsPunct("(")) {
      continue;
    }
    uint32_t line = 0;
    std::string called = MatchDiscardedCall(toks, i, &line);
    if (!called.empty() && index.status_functions.count(called) > 0) {
      Report(unit, RuleId::kR1DiscardedStatus, line,
             "return value of Status-returning '" + called +
                 "' is silently discarded; handle it, propagate it, or make "
                 "the discard explicit with (void)",
             findings);
    }
  }
}

// ----------------------------------------------------------- R2 engine

void RunR2(const FileUnit& unit, std::vector<Finding>* findings) {
  if (PathContains(unit.path, "src/common/env") ||
      PathContains(unit.path, "src/common/fault_env")) {
    return;  // the Env layer is where raw syscalls are supposed to live
  }
  static const std::set<std::string> kSyscalls = {
      "open",   "openat",  "creat",    "close",    "read",     "write",
      "pread",  "pwrite",  "lseek",    "fsync",    "fdatasync", "unlink",
      "unlinkat", "rename", "renameat", "truncate", "ftruncate", "stat",
      "fstat",  "lstat",   "access",   "mkdir",    "rmdir",    "opendir",
      "readdir", "closedir", "flock",  "fallocate",
  };
  static const std::set<std::string> kStdioCalls = {
      "fopen", "freopen", "fclose", "fread", "fwrite", "tmpfile", "remove",
  };
  static const std::set<std::string> kStreamTypes = {
      "ofstream", "ifstream", "fstream", "filebuf",
  };
  const auto& toks = unit.tokens;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdent) continue;
    const bool global_qualified = i > 0 && toks[i - 1].IsPunct("::") &&
                                  (i == 1 || !(toks[i - 2].kind ==
                                               TokenKind::kIdent));
    const bool std_qualified = i >= 2 && toks[i - 1].IsPunct("::") &&
                               toks[i - 2].IsIdent("std");
    if (global_qualified && kSyscalls.count(t.text) > 0 &&
        toks[i + 1].IsPunct("(")) {
      Report(unit, RuleId::kR2RawFilesystem, t.line,
             "raw ::" + t.text +
                 "() bypasses common::Env — fault injection and crash tests "
                 "cannot see this I/O; route it through Env",
             findings);
      continue;
    }
    if (!std_qualified && !global_qualified && kStdioCalls.count(t.text) > 0 &&
        toks[i + 1].IsPunct("(") &&
        (i == 0 || !(toks[i - 1].IsPunct(".") || toks[i - 1].IsPunct("->") ||
                     toks[i - 1].IsPunct("::")))) {
      Report(unit, RuleId::kR2RawFilesystem, t.line,
             "stdio file API '" + t.text +
                 "()' bypasses common::Env; route file I/O through Env",
             findings);
      continue;
    }
    if ((std_qualified || global_qualified) && kStreamTypes.count(t.text) > 0) {
      Report(unit, RuleId::kR2RawFilesystem, t.line,
             "std::" + t.text +
                 " bypasses common::Env; use Env file handles instead",
             findings);
    }
  }
}

// ----------------------------------------------------------- R3 engine

struct ActiveLock {
  std::string var;
  int depth;  // brace depth at declaration; popped when scope closes
};

bool IsLockClass(const std::string& s) {
  return s == "lock_guard" || s == "unique_lock" || s == "scoped_lock" ||
         s == "shared_lock";
}

void RunR3(const FileUnit& unit, const SymbolIndex& index,
           std::vector<Finding>* findings) {
  const auto& toks = unit.tokens;
  std::vector<ActiveLock> locks;
  int depth = 0;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.IsPunct("{")) {
      ++depth;
      continue;
    }
    if (t.IsPunct("}")) {
      --depth;
      while (!locks.empty() && locks.back().depth > depth) locks.pop_back();
      continue;
    }
    if (t.kind != TokenKind::kIdent) continue;

    // Lock declaration: std::lock_guard<...> name( / std::unique_lock name(.
    if (IsLockClass(t.text) && i >= 2 && toks[i - 1].IsPunct("::") &&
        toks[i - 2].IsIdent("std")) {
      size_t j = i + 1;
      if (j < toks.size() && toks[j].IsPunct("<")) {
        j = SkipAngles(toks, j);
        if (j == kNpos) continue;
      }
      if (j < toks.size() && toks[j].kind == TokenKind::kIdent &&
          j + 1 < toks.size() &&
          (toks[j + 1].IsPunct("(") || toks[j + 1].IsPunct("{"))) {
        locks.push_back(ActiveLock{toks[j].text, depth});
      }
      continue;
    }

    // Manual release: `name.unlock()` deactivates that guard.
    if (t.text == "unlock" && i >= 2 && toks[i - 1].IsPunct(".") &&
        toks[i - 2].kind == TokenKind::kIdent) {
      const std::string& var = toks[i - 2].text;
      for (auto it = locks.begin(); it != locks.end(); ++it) {
        if (it->var == var) {
          locks.erase(it);
          break;
        }
      }
      continue;
    }

    // Bare condition_variable wait: `cv.wait(lk)` with no predicate, or
    // `cv.wait_for/until(lk, dur)` without one. A predicate lambda makes
    // the wait safe against spurious wakeups and lost notifies.
    if ((t.text == "wait" || t.text == "wait_for" || t.text == "wait_until") &&
        i >= 1 && (toks[i - 1].IsPunct(".") || toks[i - 1].IsPunct("->")) &&
        i + 1 < toks.size() && toks[i + 1].IsPunct("(")) {
      size_t end = SkipBalanced(toks, i + 1);
      if (end == kNpos) continue;
      int arg_depth = 0;
      int argc = end - (i + 1) > 2 ? 1 : 0;  // any token between parens?
      bool has_lambda = false;
      for (size_t j = i + 2; j + 1 < end; ++j) {
        if (toks[j].kind != TokenKind::kPunct) continue;
        const std::string& p = toks[j].text;
        if (p == "(" || p == "[" || p == "{") ++arg_depth;
        if (p == ")" || p == "]" || p == "}") --arg_depth;
        if (p == "[" && arg_depth == 1) has_lambda = true;
        if (p == "," && arg_depth == 0) ++argc;
      }
      const bool bare = !has_lambda && ((t.text == "wait" && argc == 1) ||
                                        (t.text != "wait" && argc == 2));
      if (bare) {
        Report(unit, RuleId::kR3LockDiscipline, t.line,
               "condition_variable " + t.text +
                   " without a predicate: spurious wakeups and lost "
                   "notifies break it; pass a predicate lambda",
               findings);
      }
      continue;
    }

    // Stored-callback invocation while a lock guard is live (the LockManager
    // use-after-free class: user code re-enters while we hold the mutex).
    if (!locks.empty() && index.function_objects.count(t.text) > 0 &&
        i + 1 < toks.size() && toks[i + 1].IsPunct("(") &&
        (i == 0 || (toks[i - 1].kind == TokenKind::kPunct &&
                    toks[i - 1].text != ">" && toks[i - 1].text != "." &&
                    toks[i - 1].text != "->" && toks[i - 1].text != "::") ||
         toks[i - 1].IsIdent("return"))) {
      Report(unit, RuleId::kR3LockDiscipline, t.line,
             "callback '" + t.text + "' invoked while lock guard '" +
                 locks.back().var +
                 "' is held; release the lock before running user code",
             findings);
      continue;
    }
  }
}

// ----------------------------------------------------------- R4 engine

void RunR4(const FileUnit& unit, std::vector<Finding>* findings) {
  const auto& toks = unit.tokens;
  bool stmt_is_static = false;
  bool at_stmt_start = true;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokenKind::kPunct &&
        (t.text == ";" || t.text == "{" || t.text == "}")) {
      at_stmt_start = true;
      stmt_is_static = false;
      continue;
    }
    if (at_stmt_start && t.kind == TokenKind::kIdent) {
      stmt_is_static = t.text == "static";
      at_stmt_start = false;
    }

    if (t.kind != TokenKind::kIdent) continue;

    if (t.text == "new" && !(i > 0 && toks[i - 1].IsIdent("operator"))) {
      bool allowed = stmt_is_static;  // function-local singleton idiom
      if (i > 0 && (toks[i - 1].IsPunct("(") || toks[i - 1].IsPunct("{"))) {
        // new as a constructor/reset argument: allowed when the owner is a
        // smart pointer — p.reset(new T), unique_ptr<T>(new T), and the
        // declaration form unique_ptr<T> p(new T).
        size_t before = i - 2;  // token ahead of the opening paren/brace
        if (i >= 2) {
          // Skip a declared variable name: `unique_ptr<T> p(new T)`.
          if (toks[before].kind == TokenKind::kIdent && before >= 1 &&
              toks[before - 1].IsPunct(">")) {
            --before;
          }
          if (toks[before].IsIdent("reset") ||
              toks[before].IsIdent("unique_ptr") ||
              toks[before].IsIdent("shared_ptr")) {
            allowed = true;  // reset(new T) or CTAD unique_ptr(new T)
          } else if (toks[before].IsPunct(">")) {
            // Scan back over the template args to the class name.
            int adepth = 0;
            for (size_t k = before; k > 0; --k) {
              if (toks[k].IsPunct(">")) ++adepth;
              if (toks[k].IsPunct("<")) {
                if (--adepth == 0) {
                  if (toks[k - 1].IsIdent("unique_ptr") ||
                      toks[k - 1].IsIdent("shared_ptr")) {
                    allowed = true;
                  }
                  break;
                }
              }
            }
          }
        }
      }
      if (!allowed) {
        Report(unit, RuleId::kR4OwnershipNodiscard, t.line,
               "naked 'new': transfer the allocation to a smart pointer "
               "(make_unique, unique_ptr(new ...), or reset) so ownership "
               "is explicit",
               findings);
      }
      continue;
    }

    if (t.text == "delete" && !(i > 0 && toks[i - 1].IsPunct("=")) &&
        !(i > 0 && toks[i - 1].IsIdent("operator"))) {
      Report(unit, RuleId::kR4OwnershipNodiscard, t.line,
             "naked 'delete': prefer smart-pointer ownership; manual "
             "deletes hide double-free and leak paths",
             findings);
      continue;
    }

    // class Status / class Result must carry [[nodiscard]] so every caller
    // in the tree gets compiler enforcement of R1.
    if (t.text == "class" && i + 1 < toks.size()) {
      size_t j = i + 1;
      bool has_nodiscard = false;
      while (j + 1 < toks.size() && toks[j].IsPunct("[") &&
             toks[j + 1].IsPunct("[")) {
        size_t k = j + 2;
        for (; k + 1 < toks.size(); ++k) {
          if (toks[k].IsIdent("nodiscard")) has_nodiscard = true;
          if (toks[k].IsPunct("]") && toks[k + 1].IsPunct("]")) break;
        }
        j = k + 2;
      }
      if (j + 1 < toks.size() && toks[j].kind == TokenKind::kIdent &&
          (toks[j].text == "Status" || toks[j].text == "Result") &&
          (toks[j + 1].IsPunct("{") || toks[j + 1].IsPunct(":")) &&
          !has_nodiscard) {
        Report(unit, RuleId::kR4OwnershipNodiscard, toks[j].line,
               "class " + toks[j].text +
                   " must be declared [[nodiscard]] so dropped error "
                   "returns fail the -Werror build",
               findings);
      }
    }
  }
}

// ----------------------------------------------------------- R5 engine

void RunR5(const FileUnit& unit, std::vector<Finding>* findings) {
  // sync.cc is on the list for its abort-path diagnostics: the lock
  // checker prints to stderr and dies, exactly like the logger's fast path.
  const bool io_layer = PathContains(unit.path, "src/common/env") ||
                        PathContains(unit.path, "src/common/fault_env") ||
                        PathContains(unit.path, "src/common/logging") ||
                        PathContains(unit.path, "src/common/sync");
  if (!io_layer) {
    for (const IncludeDirective& inc : unit.includes) {
      if (inc.header == "cstdio" || inc.header == "stdio.h" ||
          inc.header == "fstream") {
        Report(unit, RuleId::kR5Hygiene, inc.line,
               "#include <" + inc.header +
                   "> outside the Env layer invites Env-bypassing I/O; use "
                   "common::Env (or std::to_string/charconv for formatting)",
               findings);
      }
    }
  }
  for (const Comment& c : unit.comments) {
    size_t pos = 0;
    bool reported = false;
    while (!reported &&
           (pos = c.text.find("TODO", pos)) != std::string::npos) {
      const size_t after = pos + 4;
      // Word boundaries: "TODOS" or "fooTODO" are not markers.
      const bool bounded =
          (pos == 0 || !IsIdentChar(c.text[pos - 1])) &&
          (after >= c.text.size() || !IsIdentChar(c.text[after]));
      if (!bounded) {
        pos = after;
        continue;
      }
      // A marker is TODO followed by ':' or '('; prose that merely mentions
      // the word ("the TODO hygiene rule") is not flagged. TODO with "(#"
      // next is the tagged, accepted form.
      const bool paren = after < c.text.size() && c.text[after] == '(';
      const bool colon = after < c.text.size() && c.text[after] == ':';
      const bool tagged = paren && after + 1 < c.text.size() &&
                          c.text[after + 1] == '#';
      if ((paren || colon) && !tagged) {
        Report(unit, RuleId::kR5Hygiene, c.line,
               "TODO without an issue tag; write TODO(#NNN) so the debt is "
               "tracked",
               findings);
        reported = true;  // one finding per comment is enough
      }
      pos = after;
    }
  }
}

// ----------------------------------------------------------- R6 engine

/// Production code decoding op-delta streams must decode against the
/// database's shared schema snapshots — Database::CurrentSchemaMap() for
/// live data, SchemaMapAt(epoch) for epoch-stamped frames — not against a
/// map hand-built from ListTables/GetTable. An ad-hoc map silently decodes
/// old frames with the *current* schema (wrong after DDL) and re-copies
/// every schema per call. Scoped to src/ outside the two layers that own
/// the type (extract defines it, engine builds the shared snapshots);
/// tests and tools may build maps freely.
void RunR6SchemaMap(const FileUnit& unit, std::vector<Finding>* findings) {
  if (PathContains(unit.path, "src/extract") ||
      PathContains(unit.path, "src/engine")) {
    return;
  }
  const auto& toks = unit.tokens;
  bool decodes = false;
  for (const Token& t : toks) {
    if (t.kind == TokenKind::kIdent &&
        (t.text == "ParseOpDeltaLog" || t.text == "DrainDbTable" ||
         t.text == "ReadFile")) {
      if (t.text != "ReadFile" || unit.path.find("op_delta") != kNpos) {
        decodes = true;
        break;
      }
    }
  }
  if (!decodes) return;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!toks[i].IsIdent("SchemaMap")) continue;
    // Declaration of a local map object: `SchemaMap name ;|=|{` — but not
    // a reference/pointer parameter (`const SchemaMap& schemas`) and not
    // the shared-snapshot spelling `shared_ptr<const SchemaMap>`.
    size_t j = i + 1;
    if (j < toks.size() && toks[j].IsPunct(">")) continue;  // template arg
    if (j < toks.size() &&
        (toks[j].IsPunct("&") || toks[j].IsPunct("*"))) {
      continue;
    }
    if (j < toks.size() && toks[j].kind == TokenKind::kIdent &&
        j + 1 < toks.size() &&
        (toks[j + 1].IsPunct(";") || toks[j + 1].IsPunct("=") ||
         toks[j + 1].IsPunct("{") || toks[j + 1].IsPunct("("))) {
      Report(unit, RuleId::kR6SchemaMapHygiene, toks[i].line,
             "ad-hoc SchemaMap built at an op-delta decode site; use "
             "Database::CurrentSchemaMap() (live) or SchemaMapAt(epoch) "
             "(epoch-stamped frames) so decoding is epoch-correct and the "
             "snapshot is shared, not rebuilt per call",
             findings);
    }
  }
}

/// Decode/apply sites replay the same few statement shapes with different
/// literals, so `Parser::Parse` inside a loop re-lexes and re-parses work
/// the StatementCache would serve as a literal rebind. Flags the token
/// sequence `Parser :: Parse` inside a for/while body outside src/sql
/// (the parser and cache own the raw calls). The guarded-fallback idiom
/// `cache != nullptr ? cache->Parse(...) : sql::Parser::Parse(...)` is
/// exempt: the raw parse there only runs when no cache is wired, which
/// the back-scan detects by a *cache* identifier earlier in the same
/// statement.
void RunR6ParseInLoop(const FileUnit& unit,
                      std::vector<Finding>* findings) {
  if (PathContains(unit.path, "src/sql")) return;
  const auto& toks = unit.tokens;

  // Brace ranges of every for/while body (range-for included: the header
  // is just a parenthesized region either way).
  std::vector<std::pair<size_t, size_t>> loops;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!toks[i].IsIdent("for") && !toks[i].IsIdent("while")) continue;
    size_t j = i + 1;
    if (!toks[j].IsPunct("(")) continue;
    int parens = 0;
    for (; j < toks.size(); ++j) {
      if (toks[j].IsPunct("(")) ++parens;
      if (toks[j].IsPunct(")") && --parens == 0) {
        ++j;
        break;
      }
    }
    if (j >= toks.size() || !toks[j].IsPunct("{")) continue;
    const size_t open = j;
    int braces = 0;
    for (; j < toks.size(); ++j) {
      if (toks[j].IsPunct("{")) ++braces;
      if (toks[j].IsPunct("}") && --braces == 0) break;
    }
    loops.emplace_back(open, j);
  }
  if (loops.empty()) return;

  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!toks[i].IsIdent("Parser") || !toks[i + 1].IsPunct("::") ||
        !toks[i + 2].IsIdent("Parse")) {
      continue;
    }
    bool in_loop = false;
    for (const auto& range : loops) {
      if (i > range.first && i < range.second) {
        in_loop = true;
        break;
      }
    }
    if (!in_loop) continue;
    // Back-scan to the start of the statement: a cache identifier there
    // marks this parse as the no-cache fallback arm of a ternary.
    bool guarded = false;
    for (size_t j = i; j-- > 0;) {
      if (toks[j].IsPunct(";") || toks[j].IsPunct("{") ||
          toks[j].IsPunct("}")) {
        break;
      }
      if (toks[j].kind == TokenKind::kIdent &&
          (toks[j].text.find("cache") != kNpos ||
           toks[j].text.find("Cache") != kNpos)) {
        guarded = true;
        break;
      }
    }
    if (guarded) continue;
    Report(unit, RuleId::kR6SchemaMapHygiene, toks[i].line,
           "Parser::Parse inside a loop at a decode/apply site re-parses "
           "every statement; route through sql::StatementCache::Parse so "
           "repeated shapes rebind literals instead of re-parsing (DDL "
           "invalidation comes free via epoch keying)",
           findings);
  }
}

void RunR6(const FileUnit& unit, std::vector<Finding>* findings) {
  if (!PathContains(unit.path, "src/")) return;
  RunR6SchemaMap(unit, findings);
  RunR6ParseInLoop(unit, findings);
}

}  // namespace

const char* RuleName(RuleId id) { return kRuleNames[static_cast<int>(id)]; }
const char* RuleSummary(RuleId id) {
  return kRuleSummaries[static_cast<int>(id)];
}

SymbolIndex BuildSymbolIndex(const std::vector<FileUnit>& units) {
  SymbolIndex index;
  std::set<std::string> non_status;
  for (const FileUnit& unit : units) {
    CollectFromUnit(unit, &index, &non_status);
  }
  // Drop ambiguous names (declared both Status- and non-Status-returning,
  // e.g. Status Parser::Init vs void SlottedPage::Init): a name-based R1
  // cannot tell the call sites apart, and [[nodiscard]] already makes the
  // compiler catch the Status-returning ones.
  for (const std::string& name : non_status) {
    index.status_functions.erase(name);
  }
  return index;
}

void RunRules(const FileUnit& unit, const SymbolIndex& index,
              std::vector<Finding>* findings) {
  RunR1(unit, index, findings);
  RunR2(unit, findings);
  RunR3(unit, index, findings);
  RunR4(unit, findings);
  RunR5(unit, findings);
  RunR6(unit, findings);
}

}  // namespace opdelta::lint
