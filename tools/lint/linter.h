#ifndef OPDELTA_TOOLS_LINT_LINTER_H_
#define OPDELTA_TOOLS_LINT_LINTER_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "tools/lint/rules.h"

namespace opdelta::lint {

/// One source to analyze: (path, content). Paths are matched against rule
/// allowlists and baseline entries, so keep them repo-relative.
using Source = std::pair<std::string, std::string>;

struct LintOptions {
  /// Baseline file contents (not a path; the caller reads the file). Empty
  /// means no baseline.
  std::string baseline;
};

struct LintReport {
  /// Findings that fail the run: not NOLINT-suppressed, not baselined.
  std::vector<Finding> findings;
  /// Findings silenced by an inline NOLINT(opdelta-RN...) on their line.
  std::vector<Finding> suppressed;
  /// Findings matched by a baseline entry.
  std::vector<Finding> baselined;
  /// Baseline entries that matched nothing: stale debt, should be pruned.
  std::vector<std::string> stale_baseline_entries;

  bool clean() const { return findings.empty(); }
};

/// Lexes, indexes, and lints the given sources as one program. Pure: no
/// filesystem access, so tests drive it with inline fixtures.
LintReport RunLint(const std::vector<Source>& sources,
                   const LintOptions& options);

/// Serializes findings in baseline format (one `rule|path|snippet` line
/// each, with a header comment), for --write-baseline.
std::string FormatBaseline(const std::vector<Finding>& findings);

/// Renders one finding as a compiler-style diagnostic line.
std::string FormatFinding(const Finding& finding);

/// Loads every *.cc / *.h under `roots` (repo-relative, resolved against
/// `root_dir`) into `sources`, skipping build and VCS directories.
Status LoadTree(const std::string& root_dir,
                const std::vector<std::string>& roots,
                std::vector<Source>* sources);

}  // namespace opdelta::lint

#endif  // OPDELTA_TOOLS_LINT_LINTER_H_
