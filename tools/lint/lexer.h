#ifndef OPDELTA_TOOLS_LINT_LEXER_H_
#define OPDELTA_TOOLS_LINT_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace opdelta::lint {

/// Token kinds produced by the lexer. Comments and preprocessor directives
/// are not emitted as tokens; they are captured on the side (see FileUnit)
/// because the rules need them for NOLINT suppressions, TODO hygiene, and
/// include checks, but never for expression matching.
enum class TokenKind : uint8_t {
  kIdent,
  kNumber,
  kString,
  kChar,
  kPunct,
  kEof,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;
  uint32_t line = 0;

  bool Is(TokenKind k, const char* t) const {
    return kind == k && text == t;
  }
  bool IsIdent(const char* t) const { return Is(TokenKind::kIdent, t); }
  bool IsPunct(const char* t) const { return Is(TokenKind::kPunct, t); }
};

/// One // or /* */ comment. `line` is the line the comment starts on; for
/// block comments spanning lines, suppressions and TODO checks see the
/// whole text attributed to that first line.
struct Comment {
  uint32_t line = 0;
  std::string text;
};

/// One #include directive.
struct IncludeDirective {
  uint32_t line = 0;
  std::string header;  // path between <> or ""
  bool angled = false;
};

/// The lexed form of one translation unit (or header).
struct FileUnit {
  std::string path;
  std::vector<Token> tokens;       // terminated by a kEof token
  std::vector<Comment> comments;
  std::vector<IncludeDirective> includes;
  std::vector<std::string> lines;  // raw source, for snippets and baselines
};

/// Lexes C++ source. Handles //, /* */, string/char literals with escapes,
/// raw strings (R"delim(...)delim"), digit separators, line continuations,
/// and preprocessor directives (skipped as tokens, #include captured).
/// Never fails: unrecognized bytes are dropped, so the rule engine always
/// gets a stream to work with.
FileUnit Lex(std::string path, const std::string& source);

}  // namespace opdelta::lint

#endif  // OPDELTA_TOOLS_LINT_LEXER_H_
