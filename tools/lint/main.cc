// opdelta-lint: enforces the project invariants that keep op-deltas
// trustworthy (see DESIGN.md "Enforced invariants"). Exits nonzero on any
// finding that is neither NOLINT-suppressed nor baselined.

#include <iostream>
#include <string>
#include <vector>

#include "common/env.h"
#include "tools/lint/linter.h"

namespace {

void PrintUsage() {
  std::cerr
      << "usage: opdelta-lint [--root DIR] [--baseline FILE]\n"
         "                    [--write-baseline] [--list-rules] [PATH...]\n"
         "\n"
         "Lints *.cc/*.h under each PATH (default: src tools tests),\n"
         "resolved relative to --root (default: .).\n"
         "  --baseline FILE   grandfather findings listed in FILE\n"
         "  --write-baseline  print current findings in baseline format\n"
         "  --list-rules      describe the enforced rules\n"
         "Suppress inline with // NOLINT(opdelta-RN: reason) or\n"
         "// NOLINTNEXTLINE(opdelta-RN: reason).\n";
}

void ListRules() {
  using opdelta::lint::RuleId;
  for (int i = 1; i <= 9; ++i) {
    const RuleId id = static_cast<RuleId>(i);
    std::cout << opdelta::lint::RuleName(id) << ": "
              << opdelta::lint::RuleSummary(id) << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string baseline_path;
  bool write_baseline = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    }
    if (arg == "--list-rules") {
      ListRules();
      return 0;
    }
    if (arg == "--write-baseline") {
      write_baseline = true;
      continue;
    }
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
      continue;
    }
    if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "opdelta-lint: unknown flag '" << arg << "'\n";
      PrintUsage();
      return 2;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) paths = {"src", "tools", "tests"};

  opdelta::lint::LintOptions options;
  if (!baseline_path.empty()) {
    opdelta::Status st = opdelta::Env::Default()->ReadFileToString(
        root + "/" + baseline_path, &options.baseline);
    if (!st.ok()) {
      std::cerr << "opdelta-lint: cannot read baseline: " << st.ToString()
                << "\n";
      return 2;
    }
  }

  std::vector<opdelta::lint::Source> sources;
  opdelta::Status st = opdelta::lint::LoadTree(root, paths, &sources);
  if (!st.ok()) {
    std::cerr << "opdelta-lint: " << st.ToString() << "\n";
    return 2;
  }

  const opdelta::lint::LintReport report =
      opdelta::lint::RunLint(sources, options);

  if (write_baseline) {
    std::cout << opdelta::lint::FormatBaseline(report.findings);
    return 0;
  }

  for (const auto& f : report.findings) {
    std::cout << opdelta::lint::FormatFinding(f) << "\n";
  }
  for (const std::string& stale : report.stale_baseline_entries) {
    std::cout << "error: stale baseline entry (matched nothing): " << stale
              << "\n";
  }
  std::cout << "opdelta-lint: " << sources.size() << " files, "
            << report.findings.size() << " findings ("
            << report.suppressed.size() << " suppressed, "
            << report.baselined.size() << " baselined, "
            << report.stale_baseline_entries.size() << " stale)\n";
  // Stale baseline entries fail the run too: grandfathered debt that no
  // longer exists must be pruned, or the baseline rots.
  return report.findings.empty() && report.stale_baseline_entries.empty()
             ? 0
             : 1;
}
