#ifndef OPDELTA_TOOLS_LINT_LOCKGRAPH_H_
#define OPDELTA_TOOLS_LINT_LOCKGRAPH_H_

#include <vector>

#include "tools/lint/rules.h"

namespace opdelta::lint {

/// Cross-translation-unit lock-hierarchy analysis: rules R7, R8, R9.
///
/// Pass 1 indexes every mutex member declaration (an OrderedMutex /
/// OrderedSharedMutex carrying an OPDELTA_LOCK_RANK, or a bare std::mutex,
/// which is an R9 finding in src/), the lockrank constant table, and
/// member-object types (`catalog::Catalog catalog_;`) for call resolution.
///
/// Pass 2 walks every function body tracking live lock guards
/// (lock_guard / unique_lock / shared_lock / scoped_lock / manual .lock())
/// exactly as the runtime checker would, and records:
///   - inter-lock acquisition edges (lock B taken while lock A is held),
///     including acquisitions reachable through ONE level of intra-project
///     calls while a lock is held (`obj_.Method()` resolved through the
///     member-type index, or a globally unique free function);
///   - R8 findings: a potentially blocking call — Env/file I/O,
///     PersistentQueue traffic, transport Ship, a cv wait while more than
///     one lock is held, or a stored user callback — under a live lock;
///   - R9 findings: mutex members with no declared rank.
///
/// The finished graph is checked for declared-rank inversions (an edge
/// from a higher-ranked lock into a lower-ranked one) and for cycles; each
/// R7 finding carries the witness file:line of every edge on the cycle.
///
/// Scope: src/ only. Tests and tools construct deliberate inversions (the
/// runtime checker's own death tests) and are exercised via fixtures.
/// Same-class (same rank name) nesting is not edged statically — distinct
/// instances of one class may nest legally, and the runtime per-instance
/// cycle detector owns that case.
void RunLockGraph(const std::vector<FileUnit>& units, const SymbolIndex& index,
                  std::vector<Finding>* findings);

}  // namespace opdelta::lint

#endif  // OPDELTA_TOOLS_LINT_LOCKGRAPH_H_
