#ifndef OPDELTA_TOOLS_LINT_RULES_H_
#define OPDELTA_TOOLS_LINT_RULES_H_

#include <set>
#include <string>
#include <vector>

#include "tools/lint/lexer.h"

namespace opdelta::lint {

/// The enforced project invariants. Keep ids stable: they appear in NOLINT
/// suppressions, baselines, and CI output.
enum class RuleId : int {
  kR1DiscardedStatus = 1,   // Status/Result return value silently dropped
  kR2RawFilesystem = 2,     // filesystem syscall bypassing common::Env
  kR3LockDiscipline = 3,    // bare cv wait / callback invoked under lock
  kR4OwnershipNodiscard = 4,  // naked new/delete; Status not [[nodiscard]]
  kR5Hygiene = 5,           // <cstdio>/<fstream> includes; untagged TODO
  kR6SchemaMapHygiene = 6,  // ad-hoc SchemaMap at a decode site, or
                            // Parser::Parse re-parsed inside a loop
  kR7LockOrder = 7,         // cross-TU lock-order cycle / rank inversion
  kR8BlockingUnderLock = 8,  // potentially blocking call while a lock held
  kR9UnrankedMutex = 9,     // mutex member without an OPDELTA_LOCK_RANK
};

const char* RuleName(RuleId id);      // "opdelta-R2"
const char* RuleSummary(RuleId id);   // one-line description

struct Finding {
  RuleId rule;
  std::string path;
  uint32_t line = 0;
  std::string message;
  std::string snippet;  // the offending source line, trimmed

  bool operator<(const Finding& o) const {
    if (path != o.path) return path < o.path;
    if (line != o.line) return line < o.line;
    return static_cast<int>(rule) < static_cast<int>(o.rule);
  }
};

/// Cross-file facts collected in pass 1. Token-stream heuristics, not a type
/// system: names are matched globally, which is the right tradeoff for a
/// codebase whose conventions this tool itself enforces.
struct SymbolIndex {
  /// Functions declared to return Status or Result<T> anywhere in the tree.
  /// Names also declared with a non-Status return type somewhere (e.g. the
  /// void SlottedPage::Init vs Status Parser::Init) are removed again by
  /// BuildSymbolIndex: R1 only fires on unambiguous names, and the
  /// [[nodiscard]] attribute (R4) makes the compiler the backstop for the
  /// ambiguous rest.
  std::set<std::string> status_functions;
  /// Identifiers declared as std::function<...> (members, params, locals).
  std::set<std::string> function_objects;
};

/// Pass 1: scans every unit for declarations the rules need.
SymbolIndex BuildSymbolIndex(const std::vector<FileUnit>& units);

/// Pass 2: runs every rule over one unit, appending findings. Suppressions
/// and baselines are applied later by the linter driver.
void RunRules(const FileUnit& unit, const SymbolIndex& index,
              std::vector<Finding>* findings);

}  // namespace opdelta::lint

#endif  // OPDELTA_TOOLS_LINT_RULES_H_
