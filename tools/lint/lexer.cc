#include "tools/lint/lexer.h"

#include <cctype>
#include <cstring>

namespace opdelta::lint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

/// String-literal prefixes that can precede a raw string.
bool IsRawStringPrefix(const std::string& ident) {
  return ident == "R" || ident == "uR" || ident == "u8R" || ident == "UR" ||
         ident == "LR";
}

class Lexer {
 public:
  Lexer(std::string path, const std::string& src) : src_(src) {
    unit_.path = std::move(path);
    SplitLines();
  }

  FileUnit Run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        continue;
      }
      if (c == '\\' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '\n') {
        ++line_;
        pos_ += 2;
        continue;
      }
      if (c == '/' && Peek(1) == '/') {
        LexLineComment();
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        LexBlockComment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        LexPreprocessor();
        continue;
      }
      at_line_start_ = false;
      if (IsIdentStart(c)) {
        LexIdentOrRawString();
        continue;
      }
      if (IsDigit(c) || (c == '.' && IsDigit(Peek(1)))) {
        LexNumber();
        continue;
      }
      if (c == '"') {
        LexString();
        continue;
      }
      if (c == '\'') {
        LexChar();
        continue;
      }
      LexPunct();
    }
    Emit(TokenKind::kEof, "", line_);
    return std::move(unit_);
  }

 private:
  char Peek(size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void Emit(TokenKind kind, std::string text, uint32_t line) {
    unit_.tokens.push_back(Token{kind, std::move(text), line});
  }

  void SplitLines() {
    std::string cur;
    for (char c : src_) {
      if (c == '\n') {
        unit_.lines.push_back(cur);
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    if (!cur.empty()) unit_.lines.push_back(cur);
  }

  void LexLineComment() {
    const uint32_t start = line_;
    size_t begin = pos_;
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
    unit_.comments.push_back(Comment{start, src_.substr(begin, pos_ - begin)});
  }

  void LexBlockComment() {
    const uint32_t start = line_;
    size_t begin = pos_;
    pos_ += 2;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\n') ++line_;
      if (src_[pos_] == '*' && Peek(1) == '/') {
        pos_ += 2;
        break;
      }
      ++pos_;
    }
    unit_.comments.push_back(Comment{start, src_.substr(begin, pos_ - begin)});
  }

  /// Consumes one logical preprocessor line (with \-continuations). The
  /// directive's tokens are NOT emitted; #include targets are recorded.
  /// String and raw-string literals inside the directive are consumed as
  /// literals: a `//` inside "http://x" is not a comment, and a multi-line
  /// raw string in a #define must not leak its contents as code tokens.
  void LexPreprocessor() {
    const uint32_t start = line_;
    std::string text;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\' && Peek(1) == '\n') {
        ++line_;
        pos_ += 2;
        text.push_back(' ');
        continue;
      }
      if (c == '\n') break;  // newline handled by the main loop
      if (c == '"') {
        if (DirectiveEndsWithRawPrefix(text)) {
          LexDirectiveRawString(&text);
        } else {
          LexDirectiveString(&text);
        }
        continue;
      }
      // A // comment ends the directive's meaningful text.
      if (c == '/' && Peek(1) == '/') {
        LexLineComment();
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        LexBlockComment();
        text.push_back(' ');
        continue;
      }
      text.push_back(c);
      ++pos_;
    }
    ParseIncludeDirective(start, text);
  }

  /// True when the directive text consumed so far ends in a raw-string
  /// prefix (R, uR, u8R, UR, LR) that is its own identifier.
  static bool DirectiveEndsWithRawPrefix(const std::string& text) {
    size_t b = text.size();
    while (b > 0 && IsIdentChar(text[b - 1])) --b;
    return b < text.size() && IsRawStringPrefix(text.substr(b));
  }

  /// Consumes a "..." literal inside a directive (escapes honored,
  /// \-newline continuations allowed); appends the literal text verbatim.
  void LexDirectiveString(std::string* text) {
    text->push_back('"');
    ++pos_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\' && pos_ + 1 < src_.size()) {
        if (src_[pos_ + 1] == '\n') ++line_;
        text->push_back(c);
        text->push_back(src_[pos_ + 1]);
        pos_ += 2;
        continue;
      }
      if (c == '\n') break;  // unterminated; recover at EOL
      text->push_back(c);
      ++pos_;
      if (c == '"') break;
    }
  }

  /// Consumes R"delim(...)delim" inside a directive, including across the
  /// newlines a \-continued #define puts in its body. The contents are
  /// replaced by a placeholder so they can never read as directive text.
  void LexDirectiveRawString(std::string* text) {
    ++pos_;  // opening quote
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(' && src_[pos_] != '\n') {
      delim.push_back(src_[pos_]);
      ++pos_;
    }
    if (pos_ >= src_.size() || src_[pos_] != '(') return;  // malformed
    ++pos_;
    const std::string closer = ")" + delim + "\"";
    size_t end = src_.find(closer, pos_);
    if (end == std::string::npos) end = src_.size();
    for (size_t i = pos_; i < end; ++i) {
      if (src_[i] == '\n') ++line_;
    }
    pos_ = end == src_.size() ? end : end + closer.size();
    text->append("<raw-string>");
  }

  void ParseIncludeDirective(uint32_t line, const std::string& text) {
    size_t i = 0;
    auto skip_ws = [&] {
      while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
    };
    if (i >= text.size() || text[i] != '#') return;
    ++i;
    skip_ws();
    static constexpr char kInclude[] = "include";
    if (text.compare(i, sizeof(kInclude) - 1, kInclude) != 0) return;
    i += sizeof(kInclude) - 1;
    skip_ws();
    if (i >= text.size()) return;
    const char open = text[i];
    const char close = open == '<' ? '>' : (open == '"' ? '"' : '\0');
    if (close == '\0') return;
    const size_t end = text.find(close, i + 1);
    if (end == std::string::npos) return;
    unit_.includes.push_back(
        IncludeDirective{line, text.substr(i + 1, end - i - 1), open == '<'});
  }

  void LexIdentOrRawString() {
    const uint32_t start = line_;
    size_t begin = pos_;
    while (pos_ < src_.size() && IsIdentChar(src_[pos_])) ++pos_;
    std::string ident = src_.substr(begin, pos_ - begin);
    if (IsRawStringPrefix(ident) && pos_ < src_.size() && src_[pos_] == '"') {
      LexRawString(start);
      return;
    }
    // Non-raw literal prefixes (u8"x", L'c'): fold into the literal token.
    if ((ident == "u8" || ident == "u" || ident == "U" || ident == "L") &&
        (Peek(0) == '"' || Peek(0) == '\'')) {
      if (Peek(0) == '"') {
        LexString();
      } else {
        LexChar();
      }
      return;
    }
    Emit(TokenKind::kIdent, std::move(ident), start);
  }

  void LexRawString(uint32_t start) {
    // pos_ is at the opening quote of R"delim( ... )delim".
    ++pos_;
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(') {
      delim.push_back(src_[pos_]);
      ++pos_;
    }
    ++pos_;  // '('
    const std::string closer = ")" + delim + "\"";
    size_t end = src_.find(closer, pos_);
    if (end == std::string::npos) end = src_.size();
    for (size_t i = pos_; i < end; ++i) {
      if (src_[i] == '\n') ++line_;
    }
    pos_ = end == src_.size() ? end : end + closer.size();
    Emit(TokenKind::kString, "<raw-string>", start);
  }

  void LexString() {
    const uint32_t start = line_;
    ++pos_;  // opening quote
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\' && pos_ + 1 < src_.size()) {
        if (src_[pos_ + 1] == '\n') ++line_;
        pos_ += 2;
        continue;
      }
      if (c == '\n') {  // unterminated; recover at EOL
        break;
      }
      ++pos_;
      if (c == '"') break;
    }
    Emit(TokenKind::kString, "<string>", start);
  }

  void LexChar() {
    const uint32_t start = line_;
    ++pos_;  // opening quote
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\' && pos_ + 1 < src_.size()) {
        pos_ += 2;
        continue;
      }
      if (c == '\n') break;
      ++pos_;
      if (c == '\'') break;
    }
    Emit(TokenKind::kChar, "<char>", start);
  }

  void LexNumber() {
    const uint32_t start = line_;
    size_t begin = pos_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '.') {
        ++pos_;
        continue;
      }
      // Digit separator: 1'000'000.
      if (c == '\'' && IsIdentChar(Peek(1))) {
        pos_ += 2;
        continue;
      }
      // Exponent sign: 1e+9, 0x1p-3.
      if ((c == '+' || c == '-') && pos_ > begin) {
        const char prev = src_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++pos_;
          continue;
        }
      }
      break;
    }
    Emit(TokenKind::kNumber, src_.substr(begin, pos_ - begin), start);
  }

  void LexPunct() {
    const uint32_t start = line_;
    const char c = src_[pos_];
    // Multi-char tokens the rules care about. '>' is never combined (so
    // nested template closers stay matchable) and '<' stays single so
    // angle-bracket matching is uniform.
    if (c == ':' && Peek(1) == ':') {
      pos_ += 2;
      Emit(TokenKind::kPunct, "::", start);
      return;
    }
    if (c == '-' && Peek(1) == '>') {
      pos_ += 2;
      Emit(TokenKind::kPunct, "->", start);
      return;
    }
    ++pos_;
    Emit(TokenKind::kPunct, std::string(1, c), start);
  }

  const std::string& src_;
  FileUnit unit_;
  size_t pos_ = 0;
  uint32_t line_ = 1;
  bool at_line_start_ = true;
};

}  // namespace

FileUnit Lex(std::string path, const std::string& source) {
  return Lexer(std::move(path), source).Run();
}

}  // namespace opdelta::lint
