#include "tools/lint/lockgraph.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace opdelta::lint {

namespace {

constexpr size_t kNpos = static_cast<size_t>(-1);

bool PathContains(const std::string& path, const char* needle) {
  return path.find(needle) != std::string::npos;
}

bool InScope(const std::string& path) {
  return PathContains(path, "src/") && !PathContains(path, "src/common/sync");
}

/// Files allowed to hold their own lock across I/O: the Env layer itself
/// plus the stderr logger (fprintf under the log mutex is the design).
bool R8Exempt(const std::string& path) {
  return PathContains(path, "src/common/env") ||
         PathContains(path, "src/common/fault_env") ||
         PathContains(path, "src/common/logging");
}

std::string TrimmedLine(const FileUnit& unit, uint32_t line) {
  if (line == 0 || line > unit.lines.size()) return "";
  const std::string& raw = unit.lines[line - 1];
  size_t b = raw.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = raw.find_last_not_of(" \t");
  return raw.substr(b, e - b + 1);
}

size_t SkipBalanced(const std::vector<Token>& toks, size_t i) {
  const std::string& open = toks[i].text;
  const char* close = open == "(" ? ")" : open == "[" ? "]" : "}";
  int depth = 0;
  for (; i < toks.size() && toks[i].kind != TokenKind::kEof; ++i) {
    if (toks[i].kind != TokenKind::kPunct) continue;
    if (toks[i].text == open) {
      ++depth;
    } else if (toks[i].text == close) {
      if (--depth == 0) return i + 1;
    }
  }
  return kNpos;
}

size_t SkipAngles(const std::vector<Token>& toks, size_t i) {
  int depth = 0;
  for (; i < toks.size() && toks[i].kind != TokenKind::kEof; ++i) {
    if (toks[i].kind != TokenKind::kPunct) continue;
    const std::string& t = toks[i].text;
    if (t == "<") {
      ++depth;
    } else if (t == ">") {
      if (--depth == 0) return i + 1;
    } else if (t == ";" || t == "{" || t == "}") {
      return kNpos;
    }
  }
  return kNpos;
}

bool IsLockClass(const std::string& s) {
  return s == "lock_guard" || s == "unique_lock" || s == "scoped_lock" ||
         s == "shared_lock";
}

bool IsOrderedMutexClass(const std::string& s) {
  return s == "OrderedMutex" || s == "OrderedSharedMutex";
}

/// One OPDELTA_LOCK_RANK-annotated mutex declaration.
struct MutexDecl {
  std::string member;  // declared variable name
  std::string node;    // lock-class name (the macro's stringified first arg)
  int rank = -1;       // resolved rank, or -1 when unresolvable
  std::string path;
  uint32_t line = 0;
};

/// First-witness acquisition edge: `to` acquired while `from` was held.
struct EdgeWitness {
  std::string from, to;
  std::string path;
  uint32_t line = 0;
  std::string via;  // non-empty: reached through this callee
};

/// Deferred one-level call expansion: callee resolved after all function
/// bodies have been indexed.
struct CallSite {
  std::vector<std::string> held;     // nodes held at the call
  std::vector<std::string> callees;  // candidate keys, tried in order
  std::string path;
  uint32_t line = 0;
};

std::string Stem(const std::string& path) {
  size_t dot = path.rfind('.');
  return dot == std::string::npos ? path : path.substr(0, dot);
}

/// Everything pass 1 accumulates across the tree.
struct TreeIndex {
  std::vector<MutexDecl> decls;
  std::map<std::string, int> rank_consts;            // kCatalog -> 36
  std::map<std::string, std::set<std::string>> member_types;  // obj_ -> Class
  // member name -> indexes into decls, for guard-arg resolution.
  std::map<std::string, std::vector<size_t>> by_member;

  const MutexDecl* Resolve(const std::string& unit_path,
                           const std::string& member) const {
    auto it = by_member.find(member);
    if (it == by_member.end()) return nullptr;
    const std::vector<size_t>& cands = it->second;
    // Same file, then same stem (catalog.cc <-> catalog.h), then a
    // globally unique member name; ambiguous names stay unresolved.
    for (size_t i : cands) {
      if (decls[i].path == unit_path) return &decls[i];
    }
    const std::string stem = Stem(unit_path);
    for (size_t i : cands) {
      if (Stem(decls[i].path) == stem) return &decls[i];
    }
    if (cands.size() == 1) return &decls[cands[0]];
    return nullptr;
  }

  int RankOf(const std::string& node) const {
    for (const MutexDecl& d : decls) {
      if (d.node == node) return d.rank;
    }
    return -1;
  }
};

// --------------------------------------------------------------- pass 1

/// Parses OPDELTA_LOCK_RANK(name, rank-expr) starting at the macro name
/// token. Returns the index past the closing paren, or kNpos.
size_t ParseRankSpec(const std::vector<Token>& toks, size_t i,
                     const std::map<std::string, int>& rank_consts,
                     std::string* node, int* rank) {
  if (!toks[i].IsIdent("OPDELTA_LOCK_RANK") || i + 1 >= toks.size() ||
      !toks[i + 1].IsPunct("(")) {
    return kNpos;
  }
  size_t end = SkipBalanced(toks, i + 1);
  if (end == kNpos) return kNpos;
  size_t j = i + 2;
  if (j >= end || toks[j].kind != TokenKind::kIdent) return kNpos;
  *node = toks[j].text;
  // The rank expression: remember the last identifier (a lockrank
  // constant) or the last bare number inside the argument list.
  *rank = -1;
  for (++j; j + 1 < end; ++j) {
    if (toks[j].kind == TokenKind::kNumber) {
      *rank = std::atoi(toks[j].text.c_str());
    } else if (toks[j].kind == TokenKind::kIdent) {
      auto it = rank_consts.find(toks[j].text);
      if (it != rank_consts.end()) *rank = it->second;
    }
  }
  return end;
}

void CollectRankConstants(const FileUnit& unit, TreeIndex* tree) {
  const auto& toks = unit.tokens;
  for (size_t i = 0; i + 4 < toks.size(); ++i) {
    // [inline] constexpr int kName = NN;
    if (!toks[i].IsIdent("constexpr") || !toks[i + 1].IsIdent("int")) continue;
    if (toks[i + 2].kind != TokenKind::kIdent) continue;
    if (!toks[i + 3].IsPunct("=")) continue;
    if (toks[i + 4].kind != TokenKind::kNumber) continue;
    tree->rank_consts[toks[i + 2].text] =
        std::atoi(toks[i + 4].text.c_str());
  }
}

void CollectDecls(const FileUnit& unit, TreeIndex* tree,
                  std::vector<Finding>* findings) {
  const auto& toks = unit.tokens;
  const bool in_scope = InScope(unit.path);
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdent) continue;

    // OrderedMutex member_{OPDELTA_LOCK_RANK(...)}; — the annotated form.
    if (IsOrderedMutexClass(t.text) && toks[i + 1].kind == TokenKind::kIdent &&
        toks[i + 2].IsPunct("{")) {
      size_t end = SkipBalanced(toks, i + 2);
      if (end == kNpos) continue;
      bool ranked = false;
      for (size_t j = i + 3; j + 1 < end; ++j) {
        std::string node;
        int rank = -1;
        if (ParseRankSpec(toks, j, tree->rank_consts, &node, &rank) != kNpos) {
          MutexDecl d{toks[i + 1].text, node, rank, unit.path,
                      toks[i + 1].line};
          tree->by_member[d.member].push_back(tree->decls.size());
          tree->decls.push_back(std::move(d));
          ranked = true;
          break;
        }
      }
      if (!ranked && in_scope) {
        findings->push_back(Finding{
            RuleId::kR9UnrankedMutex, unit.path, toks[i + 1].line,
            "OrderedMutex '" + toks[i + 1].text +
                "' has no OPDELTA_LOCK_RANK annotation; declare its place "
                "in the hierarchy (src/common/sync.h lockrank table)",
            TrimmedLine(unit, toks[i + 1].line)});
      }
      continue;
    }

    // OrderedMutex member_; — declared but never ranked.
    if (IsOrderedMutexClass(t.text) && in_scope &&
        toks[i + 1].kind == TokenKind::kIdent &&
        (toks[i + 2].IsPunct(";") || toks[i + 2].IsPunct("="))) {
      findings->push_back(Finding{
          RuleId::kR9UnrankedMutex, unit.path, toks[i + 1].line,
          "OrderedMutex '" + toks[i + 1].text +
              "' has no OPDELTA_LOCK_RANK annotation; declare its place in "
              "the hierarchy (src/common/sync.h lockrank table)",
          TrimmedLine(unit, toks[i + 1].line)});
      continue;
    }

    // std::mutex member_; — a mutex outside the ranked-type system.
    if ((t.text == "mutex" || t.text == "shared_mutex") && in_scope &&
        i >= 2 && toks[i - 1].IsPunct("::") && toks[i - 2].IsIdent("std") &&
        toks[i + 1].kind == TokenKind::kIdent &&
        (toks[i + 2].IsPunct(";") || toks[i + 2].IsPunct("{") ||
         toks[i + 2].IsPunct("="))) {
      findings->push_back(Finding{
          RuleId::kR9UnrankedMutex, unit.path, toks[i + 1].line,
          "std::" + t.text + " '" + toks[i + 1].text +
              "' bypasses the lock hierarchy; use common::OrderedMutex "
              "with an OPDELTA_LOCK_RANK (src/common/sync.h)",
          TrimmedLine(unit, toks[i + 1].line)});
      continue;
    }

    // Member-object types for one-level call resolution:
    //   catalog::Catalog catalog_;              -> catalog_ : Catalog
    //   std::unique_ptr<ApplyLedger> ledger_;   -> ledger_  : ApplyLedger
    if ((t.text == "unique_ptr" || t.text == "shared_ptr") &&
        toks[i + 1].IsPunct("<")) {
      size_t close = SkipAngles(toks, i + 1);
      if (close == kNpos || close >= toks.size()) continue;
      std::string type;
      for (size_t j = i + 2; j + 1 < close; ++j) {
        if (toks[j].kind == TokenKind::kIdent &&
            std::isupper(static_cast<unsigned char>(toks[j].text[0]))) {
          type = toks[j].text;
        }
      }
      if (!type.empty() && toks[close].kind == TokenKind::kIdent &&
          close + 1 < toks.size() && toks[close + 1].IsPunct(";")) {
        tree->member_types[toks[close].text].insert(type);
      }
      continue;
    }
    if (std::isupper(static_cast<unsigned char>(t.text[0])) &&
        toks[i + 1].kind == TokenKind::kIdent &&
        toks[i + 2].IsPunct(";") && !toks[i + 1].text.empty() &&
        toks[i + 1].text.back() == '_') {
      tree->member_types[toks[i + 1].text].insert(t.text);
    }
  }
}

// --------------------------------------------------------------- pass 2

/// Methods whose call can block on I/O or on another thread. Only flagged
/// as R8 when invoked through `.` or `->` while a lock is held.
bool IsBlockingMethod(const std::string& s) {
  static const std::set<std::string> kMethods = {
      // common::Env + file handles.
      "NewSequentialFile", "NewWritableFile", "NewRandomRWFile",
      "ReadFileToString", "WriteFileAtomic", "RenameFile", "DeleteFile",
      "CreateDir", "ListDir", "ReadPage", "WritePage", "AllocatePage",
      "Append", "Sync", "Flush",
      // transport::PersistentQueue append/drain + shipping.
      "Enqueue", "Peek", "Ack", "ForEachMessage", "Ship",
      // Joins: blocking on other threads while holding a lock.
      "Wait", "WaitIdle",
  };
  return kMethods.count(s) > 0;
}

bool IsGuardTag(const std::string& s) {
  return s == "try_to_lock" || s == "adopt_lock" || s == "defer_lock" ||
         s == "std";
}

bool IsStatementKeyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if", "while", "for", "switch", "return", "catch", "sizeof", "new",
      "delete", "throw", "else", "do", "case", "co_await", "co_return",
      "co_yield", "static_cast", "const_cast", "reinterpret_cast",
      "dynamic_cast", "assert",
  };
  return kKeywords.count(s) > 0;
}

struct ActiveLock {
  std::string node;
  std::string var;  // guard variable, or the mutex member for manual .lock()
  int depth;
};

struct FnCtx {
  std::vector<std::string> keys;  // "Class::name" and/or bare "name"
  int depth;                      // brace depth at the opening '{'
  std::vector<ActiveLock> saved;  // outer locks, restored on pop
};

struct ClassCtx {
  std::string name;
  int depth;
};

/// Per-unit walker: tracks live guards per function body and emits edges,
/// call sites, R8 findings, and the per-function acquisition index.
class Walker {
 public:
  Walker(const FileUnit& unit, const TreeIndex& tree, const SymbolIndex& index,
         std::map<std::string, std::set<std::string>>* fn_acquires,
         std::map<std::string, std::set<std::string>>* bare_owners,
         std::vector<EdgeWitness>* edges, std::vector<CallSite>* calls,
         std::vector<Finding>* findings)
      : unit_(unit),
        tree_(tree),
        index_(index),
        fn_acquires_(fn_acquires),
        bare_owners_(bare_owners),
        edges_(edges),
        calls_(calls),
        findings_(findings) {}

  void Run() {
    const auto& toks = unit_.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.IsPunct("{")) {
        OnOpenBrace(i);
        ++depth_;
        continue;
      }
      if (t.IsPunct("}")) {
        --depth_;
        while (!locks_.empty() && locks_.back().depth > depth_) {
          locks_.pop_back();
        }
        // Contexts record the depth their '{' opened at, so they close
        // when the depth falls back TO that value.
        while (!classes_.empty() && classes_.back().depth >= depth_) {
          classes_.pop_back();
        }
        while (!fns_.empty() && fns_.back().depth >= depth_) {
          locks_ = std::move(fns_.back().saved);
          fns_.pop_back();
        }
        continue;
      }
      if (t.IsPunct(";")) pending_class_.clear();  // `class Foo;` fwd decl
      if (t.kind != TokenKind::kIdent) continue;

      if (t.text == "class" || t.text == "struct") {
        if (i + 1 < toks.size() && toks[i + 1].kind == TokenKind::kIdent) {
          pending_class_ = toks[i + 1].text;
        }
        continue;
      }

      // Guard declaration: std::lock_guard<...> var(mu_); etc.
      if (IsLockClass(t.text) && i >= 2 && toks[i - 1].IsPunct("::") &&
          toks[i - 2].IsIdent("std")) {
        i = OnGuardDecl(i) - 1;
        continue;
      }

      // Manual mu_.lock() / guard.unlock() / mu_.unlock().
      if ((t.text == "lock" || t.text == "unlock") && i >= 2 &&
          (toks[i - 1].IsPunct(".") || toks[i - 1].IsPunct("->")) &&
          toks[i - 2].kind == TokenKind::kIdent && i + 1 < toks.size() &&
          toks[i + 1].IsPunct("(")) {
        if (t.text == "lock") {
          OnManualLock(toks[i - 2].text, t.line);
        } else {
          OnUnlock(toks[i - 2].text);
        }
        continue;
      }

      // cv wait while more than one lock is held: the wait releases only
      // the guard it is given; every other held lock blocks strangers for
      // the whole sleep.
      if ((t.text == "wait" || t.text == "wait_for" ||
           t.text == "wait_until") &&
          i >= 1 && (toks[i - 1].IsPunct(".") || toks[i - 1].IsPunct("->")) &&
          i + 1 < toks.size() && toks[i + 1].IsPunct("(")) {
        if (locks_.size() >= 2 && InScope(unit_.path) &&
            !R8Exempt(unit_.path)) {
          Report(RuleId::kR8BlockingUnderLock, t.line,
                 "condition-variable " + t.text + " while also holding '" +
                     locks_[locks_.size() - 2].node +
                     "'; the wait releases only its own mutex, so every "
                     "other held lock stays blocked for the whole sleep");
        }
        continue;
      }

      // Method or function call while locks are held.
      if (i + 1 < toks.size() && toks[i + 1].IsPunct("(") &&
          !IsStatementKeyword(t.text) && !locks_.empty()) {
        OnCall(i);
        continue;
      }
    }
  }

 private:
  void Report(RuleId rule, uint32_t line, std::string message) {
    findings_->push_back(Finding{rule, unit_.path, line, std::move(message),
                                 TrimmedLine(unit_, line)});
  }

  /// Skips backwards over `const|noexcept|override|final|mutable` between
  /// a parameter list and the body '{'.
  size_t SkipQualifiersBack(size_t j) const {
    const auto& toks = unit_.tokens;
    while (j > 0 && toks[j - 1].kind == TokenKind::kIdent &&
           (toks[j - 1].text == "const" || toks[j - 1].text == "noexcept" ||
            toks[j - 1].text == "override" || toks[j - 1].text == "final" ||
            toks[j - 1].text == "mutable")) {
      --j;
    }
    return j;
  }

  /// Function-header detection for the '{' at token index i. Scans back
  /// over qualifiers and an optional `-> Type` trailing return; the
  /// identifier before the matching '(' names the function, while a `[`
  /// capture list marks a lambda body (an anonymous barrier: the enclosing
  /// function's held locks do not flow into code that may run elsewhere).
  void OnOpenBrace(size_t i) {
    const auto& toks = unit_.tokens;
    if (!pending_class_.empty()) {
      classes_.push_back(ClassCtx{pending_class_, depth_});
      pending_class_.clear();
      return;
    }
    size_t j = SkipQualifiersBack(i);
    // `-> RetType {` trailing return: walk back over the type to the arrow.
    {
      size_t r = j;
      while (r > 0 &&
             (toks[r - 1].kind == TokenKind::kIdent ||
              toks[r - 1].IsPunct("::") || toks[r - 1].IsPunct("<") ||
              toks[r - 1].IsPunct(">") || toks[r - 1].IsPunct("*") ||
              toks[r - 1].IsPunct("&"))) {
        --r;
      }
      if (r < j && r > 0 && toks[r - 1].IsPunct("->")) {
        j = SkipQualifiersBack(r - 1);
      }
    }
    // `[captures] {` — a parameterless lambda.
    if (j > 0 && toks[j - 1].IsPunct("]")) {
      PushLambda();
      return;
    }
    if (j == 0 || !toks[j - 1].IsPunct(")")) return;
    // Find the matching '(' backwards.
    int pdepth = 0;
    size_t k = j - 1;
    while (true) {
      if (toks[k].IsPunct(")")) ++pdepth;
      if (toks[k].IsPunct("(")) {
        if (--pdepth == 0) break;
      }
      if (k == 0) return;
      --k;
    }
    // `[captures](params) {` — a lambda with a parameter list.
    if (k > 0 && toks[k - 1].IsPunct("]")) {
      PushLambda();
      return;
    }
    if (k == 0 || toks[k - 1].kind != TokenKind::kIdent) return;
    const std::string fn = toks[k - 1].text;
    if (IsStatementKeyword(fn) || IsLockClass(fn)) return;
    // `: member_(x) {` or `, member_(x) {` is a constructor init list, not
    // a definition of member_.
    if (k >= 2 && (toks[k - 2].IsPunct(":") || toks[k - 2].IsPunct(","))) {
      return;
    }
    FnCtx ctx;
    ctx.depth = depth_;
    std::string cls;
    if (k >= 3 && toks[k - 2].IsPunct("::") &&
        toks[k - 3].kind == TokenKind::kIdent) {
      cls = toks[k - 3].text;  // out-of-line Class::fn
    } else if (!classes_.empty()) {
      cls = classes_.back().name;  // in-class definition
    }
    if (!cls.empty()) {
      ctx.keys.push_back(cls + "::" + fn);
      (*bare_owners_)[fn].insert(cls + "::" + fn);
    } else {
      ctx.keys.push_back("::" + fn);
      (*bare_owners_)[fn].insert("::" + fn);
    }
    ctx.saved = std::move(locks_);
    locks_.clear();
    fns_.push_back(std::move(ctx));
  }

  /// Resolves the mutex expression ending at the last identifier of one
  /// guard constructor argument; returns the lock-class node or, for an
  /// undeclared member, a per-file fallback so held-tracking still works.
  std::string ResolveNode(const std::string& member) {
    const MutexDecl* d = tree_.Resolve(unit_.path, member);
    if (d != nullptr) return d->node;
    return Stem(unit_.path) + "#" + member;
  }

  /// Enters an anonymous lambda context: held locks are parked (the body
  /// may run on another thread), and acquisitions inside still attribute
  /// to the enclosing function — the dominant pattern is an
  /// immediately-invoked body (WithTransaction, ForEach visitors).
  void PushLambda() {
    FnCtx ctx;
    ctx.depth = depth_;
    if (!fns_.empty()) ctx.keys = fns_.back().keys;
    ctx.saved = std::move(locks_);
    locks_.clear();
    fns_.push_back(std::move(ctx));
  }

  void Acquire(const std::string& node, const std::string& var, uint32_t line,
               bool edged) {
    if (edged) {
      for (const ActiveLock& h : locks_) {
        if (h.node == node) continue;  // runtime owns same-class nesting
        edges_->push_back(EdgeWitness{h.node, node, unit_.path, line, ""});
      }
    }
    // Attribute to the innermost context only: outer functions do not
    // acquire what their nested bodies acquire.
    if (!fns_.empty()) {
      for (const std::string& key : fns_.back().keys) {
        (*fn_acquires_)[key].insert(node);
      }
    }
    locks_.push_back(ActiveLock{node, var, depth_});
  }

  /// Handles `std::lock_guard<...> var(mu_[, tag])`; returns the index
  /// past the declaration.
  size_t OnGuardDecl(size_t i) {
    const auto& toks = unit_.tokens;
    size_t j = i + 1;
    if (j < toks.size() && toks[j].IsPunct("<")) {
      size_t a = SkipAngles(toks, j);
      if (a == kNpos) return i + 1;
      j = a;
    }
    if (j >= toks.size() || toks[j].kind != TokenKind::kIdent) return i + 1;
    const std::string var = toks[j].text;
    if (j + 1 >= toks.size() ||
        !(toks[j + 1].IsPunct("(") || toks[j + 1].IsPunct("{"))) {
      return j + 1;
    }
    size_t end = SkipBalanced(toks, j + 1);
    if (end == kNpos) return j + 1;
    // Split the argument list at top-level commas; each argument's last
    // identifier names a mutex (scoped_lock takes several).
    std::vector<std::string> members;
    bool try_tag = false, defer_tag = false;
    std::string last;
    int adepth = 0;
    for (size_t k = j + 2; k + 1 < end; ++k) {
      if (toks[k].kind == TokenKind::kPunct) {
        const std::string& p = toks[k].text;
        if (p == "(" || p == "[" || p == "{") ++adepth;
        if (p == ")" || p == "]" || p == "}") --adepth;
        if (p == "," && adepth == 0) {
          if (!last.empty()) members.push_back(last);
          last.clear();
        }
        continue;
      }
      if (toks[k].kind != TokenKind::kIdent) continue;
      if (toks[k].text == "try_to_lock") {
        try_tag = true;
        last.clear();
      } else if (toks[k].text == "defer_lock") {
        defer_tag = true;
        last.clear();
      } else if (!IsGuardTag(toks[k].text)) {
        last = toks[k].text;
      }
    }
    if (!last.empty()) members.push_back(last);
    if (defer_tag) return end;  // nothing held until an explicit .lock()
    for (const std::string& m : members) {
      // try_to_lock acquisitions cannot deadlock: held, but no edges.
      Acquire(ResolveNode(m), var, toks[j].line, /*edged=*/!try_tag);
    }
    return end;
  }

  void OnManualLock(const std::string& obj, uint32_t line) {
    // `guard.lock()` re-locks an existing (deferred/unlocked) guard whose
    // mutex we cannot see here; treat a known guard var as a no-op.
    for (const ActiveLock& l : locks_) {
      if (l.var == obj) return;
    }
    Acquire(ResolveNode(obj), obj, line, /*edged=*/true);
  }

  void OnUnlock(const std::string& obj) {
    for (auto it = locks_.rbegin(); it != locks_.rend(); ++it) {
      if (it->var == obj) {
        locks_.erase(std::next(it).base());
        return;
      }
    }
  }

  /// A call with locks held: R8 for blocking methods and stored callbacks;
  /// otherwise a candidate for one-level acquisition expansion.
  void OnCall(size_t i) {
    const auto& toks = unit_.tokens;
    const Token& t = toks[i];
    const bool member_call =
        i >= 2 && (toks[i - 1].IsPunct(".") || toks[i - 1].IsPunct("->")) &&
        toks[i - 2].kind == TokenKind::kIdent;
    const bool checked = InScope(unit_.path) && !R8Exempt(unit_.path);

    if (member_call && IsBlockingMethod(t.text) && checked) {
      Report(RuleId::kR8BlockingUnderLock, t.line,
             "potentially blocking '" + toks[i - 2].text + "." + t.text +
                 "()' while holding lock '" + locks_.back().node +
                 "'; move the call outside the critical section or document "
                 "the serialization with NOLINT(opdelta-R8: reason)");
      return;
    }

    // Stored std::function member invoked under a lock: user code re-enters
    // while we hold the mutex (deadlock or use-after-free on reentry).
    if (!member_call && index_.function_objects.count(t.text) > 0 && checked &&
        (i == 0 || toks[i - 1].kind == TokenKind::kPunct ||
         toks[i - 1].IsIdent("return")) &&
        !(i >= 1 && (toks[i - 1].IsPunct(".") || toks[i - 1].IsPunct("->") ||
                     toks[i - 1].IsPunct("::")))) {
      Report(RuleId::kR8BlockingUnderLock, t.line,
             "callback '" + t.text + "' invoked while holding lock '" +
                 locks_.back().node + "'; run user code outside the lock");
      return;
    }

    // One-level call expansion: record the candidate callee keys and the
    // held set; edges materialize once every function body is indexed.
    if (member_call && toks[i - 2].text != "std") {
      CallSite site;
      const auto mt = tree_.member_types.find(toks[i - 2].text);
      if (mt != tree_.member_types.end() && mt->second.size() == 1) {
        site.callees.push_back(*mt->second.begin() + "::" + t.text);
      }
      site.callees.push_back(t.text);  // bare-name fallback
      for (const ActiveLock& l : locks_) site.held.push_back(l.node);
      site.path = unit_.path;
      site.line = t.line;
      calls_->push_back(std::move(site));
    } else if (!member_call &&
               !(i >= 1 && toks[i - 1].IsPunct("::"))) {
      CallSite site;
      site.callees.push_back(t.text);
      for (const ActiveLock& l : locks_) site.held.push_back(l.node);
      site.path = unit_.path;
      site.line = t.line;
      calls_->push_back(std::move(site));
    }
  }

  const FileUnit& unit_;
  const TreeIndex& tree_;
  const SymbolIndex& index_;
  std::map<std::string, std::set<std::string>>* fn_acquires_;
  std::map<std::string, std::set<std::string>>* bare_owners_;
  std::vector<EdgeWitness>* edges_;
  std::vector<CallSite>* calls_;
  std::vector<Finding>* findings_;

  int depth_ = 0;
  std::string pending_class_;
  std::vector<ClassCtx> classes_;
  std::vector<FnCtx> fns_;
  std::vector<ActiveLock> locks_;
};

// ------------------------------------------------------- graph analysis

struct Graph {
  // from -> to -> first witness.
  std::map<std::string, std::map<std::string, EdgeWitness>> adj;

  void Add(const EdgeWitness& e) {
    if (e.from == e.to) return;
    adj[e.from].emplace(e.to, e);
  }

  /// BFS path from -> to; returns the edge chain, empty when unreachable.
  std::vector<const EdgeWitness*> FindPath(const std::string& from,
                                           const std::string& to) const {
    std::map<std::string, const EdgeWitness*> parent;
    std::deque<std::string> queue{from};
    parent[from] = nullptr;
    while (!queue.empty()) {
      const std::string node = queue.front();
      queue.pop_front();
      auto it = adj.find(node);
      if (it == adj.end()) continue;
      for (const auto& [next, edge] : it->second) {
        if (parent.count(next) > 0) continue;
        parent[next] = &edge;
        if (next == to) {
          std::vector<const EdgeWitness*> path;
          for (const EdgeWitness* e = parent[to]; e != nullptr;
               e = parent[e->from]) {
            path.push_back(e);
          }
          std::reverse(path.begin(), path.end());
          return path;
        }
        queue.push_back(next);
      }
    }
    return {};
  }
};

std::string DescribeEdge(const EdgeWitness& e) {
  std::string out = e.from + " -> " + e.to + " (" + e.path + ":" +
                    std::to_string(e.line);
  if (!e.via.empty()) out += " via " + e.via;
  out += ")";
  return out;
}

void AnalyzeGraph(const TreeIndex& tree, const std::vector<EdgeWitness>& edges,
                  std::vector<Finding>* findings) {
  Graph graph;
  for (const EdgeWitness& e : edges) graph.Add(e);

  // Declared-rank inversions: an edge that acquires downward.
  for (const auto& [from, outs] : graph.adj) {
    const int from_rank = tree.RankOf(from);
    if (from_rank < 0) continue;
    for (const auto& [to, e] : outs) {
      const int to_rank = tree.RankOf(to);
      if (to_rank < 0 || to_rank >= from_rank) continue;
      findings->push_back(Finding{
          RuleId::kR7LockOrder, e.path, e.line,
          "rank inversion: '" + to + "' (rank " + std::to_string(to_rank) +
              ") acquired while holding '" + from + "' (rank " +
              std::to_string(from_rank) +
              "); the declared hierarchy requires the opposite order",
          ""});
    }
  }

  // Cycles: for every edge a->b, a path b->..->a closes a cycle. Each
  // cycle is reported once, keyed by its sorted node set, with the
  // witness file:line of every edge on it.
  std::set<std::string> reported;
  for (const auto& [from, outs] : graph.adj) {
    for (const auto& [to, e] : outs) {
      std::vector<const EdgeWitness*> back = graph.FindPath(to, from);
      if (back.empty()) continue;
      std::vector<std::string> nodes{from};
      for (const EdgeWitness* b : back) nodes.push_back(b->from);
      std::sort(nodes.begin(), nodes.end());
      nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
      std::string key;
      for (const std::string& n : nodes) key += n + "|";
      if (!reported.insert(key).second) continue;
      std::string msg = "lock-order cycle: " + DescribeEdge(e);
      for (const EdgeWitness* b : back) msg += ", " + DescribeEdge(*b);
      findings->push_back(
          Finding{RuleId::kR7LockOrder, e.path, e.line, std::move(msg), ""});
    }
  }
}

}  // namespace

void RunLockGraph(const std::vector<FileUnit>& units, const SymbolIndex& index,
                  std::vector<Finding>* findings) {
  TreeIndex tree;
  for (const FileUnit& unit : units) CollectRankConstants(unit, &tree);
  for (const FileUnit& unit : units) {
    if (!PathContains(unit.path, "src/")) continue;
    CollectDecls(unit, &tree, findings);
  }

  std::map<std::string, std::set<std::string>> fn_acquires;
  std::map<std::string, std::set<std::string>> bare_owners;
  std::vector<EdgeWitness> edges;
  std::vector<CallSite> calls;
  for (const FileUnit& unit : units) {
    if (!PathContains(unit.path, "src/")) continue;
    Walker(unit, tree, index, &fn_acquires, &bare_owners, &edges, &calls,
           findings)
        .Run();
  }

  // One-level call expansion: a lock held across a call reaches every lock
  // that callee acquires. Bare names resolve only when unambiguous.
  for (const CallSite& site : calls) {
    const std::set<std::string>* acquired = nullptr;
    std::string resolved;
    for (const std::string& key : site.callees) {
      auto it = fn_acquires.find(key);
      if (it != fn_acquires.end()) {
        acquired = &it->second;
        resolved = key;
        break;
      }
      auto owners = bare_owners.find(key);
      if (owners != bare_owners.end() && owners->second.size() == 1) {
        auto unique_it = fn_acquires.find(*owners->second.begin());
        if (unique_it != fn_acquires.end()) {
          acquired = &unique_it->second;
          resolved = *owners->second.begin();
          break;
        }
      }
    }
    if (acquired == nullptr) continue;
    for (const std::string& held : site.held) {
      for (const std::string& node : *acquired) {
        if (node == held) continue;
        edges.push_back(
            EdgeWitness{held, node, site.path, site.line, resolved});
      }
    }
  }

  AnalyzeGraph(tree, edges, findings);
}

}  // namespace opdelta::lint
