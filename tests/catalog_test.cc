#include <gtest/gtest.h>

#include "common/random.h"
#include "catalog/catalog.h"
#include "catalog/row_codec.h"
#include "catalog/schema.h"
#include "catalog/value.h"
#include "tests/test_util.h"

namespace opdelta::catalog {
namespace {

using opdelta::testing::TempDir;

Schema TestSchema() {
  return Schema({Column{"id", ValueType::kInt64},
                 Column{"name", ValueType::kString},
                 Column{"score", ValueType::kDouble},
                 Column{"modified", ValueType::kTimestamp}});
}

// ------------------------------------------------------------------ Value

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int64(42).AsInt64(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::String("abc").AsString(), "abc");
  EXPECT_EQ(Value::Timestamp(999).AsTimestamp(), 999);
}

TEST(ValueTest, CompareWithinTypes) {
  EXPECT_LT(Value::Int64(1).Compare(Value::Int64(2)), 0);
  EXPECT_EQ(Value::Int64(2).Compare(Value::Int64(2)), 0);
  EXPECT_GT(Value::String("b").Compare(Value::String("a")), 0);
  EXPECT_LT(Value::Double(1.5).Compare(Value::Double(2.5)), 0);
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int64(-100)), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, CrossNumericComparison) {
  EXPECT_EQ(Value::Int64(2).Compare(Value::Double(2.0)), 0);
  EXPECT_LT(Value::Int64(2).Compare(Value::Double(2.5)), 0);
}

TEST(ValueTest, SqlLiteralRendering) {
  EXPECT_EQ(Value::Null().ToSqlLiteral(), "NULL");
  EXPECT_EQ(Value::Int64(-7).ToSqlLiteral(), "-7");
  EXPECT_EQ(Value::String("it's").ToSqlLiteral(), "'it''s'");
  EXPECT_EQ(Value::Timestamp(123).ToSqlLiteral(), "TS:123");
}

TEST(ValueTest, CsvFieldQuoting) {
  EXPECT_EQ(Value::String("plain").ToCsvField(), "plain");
  EXPECT_EQ(Value::String("a,b").ToCsvField(), "\"a,b\"");
  EXPECT_EQ(Value::String("say \"hi\"").ToCsvField(), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(Value::Null().ToCsvField(), "");
}

TEST(ValueTest, RowComparisonLexicographic) {
  Row a = {Value::Int64(1), Value::String("x")};
  Row b = {Value::Int64(1), Value::String("y")};
  Row c = {Value::Int64(1)};
  EXPECT_LT(CompareRows(a, b), 0);
  EXPECT_EQ(CompareRows(a, a), 0);
  EXPECT_GT(CompareRows(a, c), 0);  // longer row sorts after its prefix
}

// ----------------------------------------------------------------- Schema

TEST(SchemaTest, ColumnLookup) {
  Schema s = TestSchema();
  EXPECT_EQ(s.ColumnIndex("name"), 1);
  EXPECT_EQ(s.ColumnIndex("missing"), -1);
  EXPECT_EQ(s.TimestampColumnIndex(), 3);
  EXPECT_EQ(s.KeyColumnIndex(), 0);
}

TEST(SchemaTest, EncodeDecodeRoundTrip) {
  Schema s = TestSchema();
  std::string buf;
  s.EncodeTo(&buf);
  Slice in(buf);
  Schema out;
  OPDELTA_ASSERT_OK(Schema::DecodeFrom(&in, &out));
  EXPECT_TRUE(s == out);
  EXPECT_TRUE(in.empty());
}

TEST(SchemaTest, DecodeRejectsGarbage) {
  Slice in("\xff\xff\xff garbage");
  Schema out;
  EXPECT_FALSE(Schema::DecodeFrom(&in, &out).ok());
}

TEST(SchemaTest, ValidateRowChecksArityAndTypes) {
  Schema s = TestSchema();
  Row good = {Value::Int64(1), Value::String("a"), Value::Double(0.5),
              Value::Timestamp(1)};
  OPDELTA_EXPECT_OK(ValidateRow(s, good));

  Row with_nulls = {Value::Int64(1), Value::Null(), Value::Null(),
                    Value::Null()};
  OPDELTA_EXPECT_OK(ValidateRow(s, with_nulls));

  Row short_row = {Value::Int64(1)};
  EXPECT_FALSE(ValidateRow(s, short_row).ok());

  Row bad_type = {Value::String("not-an-int"), Value::String("a"),
                  Value::Double(0.5), Value::Timestamp(1)};
  EXPECT_FALSE(ValidateRow(s, bad_type).ok());
}

// --------------------------------------------------------------- RowCodec

TEST(RowCodecTest, RoundTripAllTypes) {
  Schema s = TestSchema();
  Row row = {Value::Int64(-12345), Value::String("hello world"),
             Value::Double(3.14159), Value::Timestamp(1710000000000000)};
  std::string enc = RowCodec::Encode(s, row);
  Row out;
  OPDELTA_ASSERT_OK(RowCodec::Decode(s, Slice(enc), &out));
  EXPECT_EQ(CompareRows(row, out), 0);
}

TEST(RowCodecTest, NullBitmap) {
  Schema s = TestSchema();
  Row row = {Value::Int64(1), Value::Null(), Value::Null(), Value::Null()};
  std::string enc = RowCodec::Encode(s, row);
  Row out;
  OPDELTA_ASSERT_OK(RowCodec::Decode(s, Slice(enc), &out));
  EXPECT_TRUE(out[1].is_null());
  EXPECT_TRUE(out[2].is_null());
  EXPECT_TRUE(out[3].is_null());
  EXPECT_EQ(out[0].AsInt64(), 1);
}

TEST(RowCodecTest, EmptyStringRoundTrips) {
  Schema s({Column{"k", ValueType::kInt64}, Column{"v", ValueType::kString}});
  Row row = {Value::Int64(0), Value::String("")};
  Row out;
  OPDELTA_ASSERT_OK(RowCodec::Decode(s, Slice(RowCodec::Encode(s, row)),
                                     &out));
  EXPECT_FALSE(out[1].is_null());
  EXPECT_EQ(out[1].AsString(), "");
}

TEST(RowCodecTest, TruncatedInputFails) {
  Schema s = TestSchema();
  Row row = {Value::Int64(1), Value::String("abc"), Value::Double(1.0),
             Value::Timestamp(5)};
  std::string enc = RowCodec::Encode(s, row);
  Row out;
  EXPECT_FALSE(
      RowCodec::Decode(s, Slice(enc.data(), enc.size() / 2), &out).ok());
}

class RowCodecPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RowCodecPropertyTest, RandomRowsRoundTrip) {
  Rng rng(GetParam());
  Schema s = TestSchema();
  for (int i = 0; i < 500; ++i) {
    Row row;
    row.push_back(rng.OneIn(10) ? Value::Null()
                                : Value::Int64(static_cast<int64_t>(
                                      rng.Next())));
    row.push_back(rng.OneIn(10)
                      ? Value::Null()
                      : Value::String(rng.NextString(rng.Uniform(300))));
    row.push_back(rng.OneIn(10) ? Value::Null()
                                : Value::Double(rng.NextDouble() * 1e9));
    row.push_back(rng.OneIn(10)
                      ? Value::Null()
                      : Value::Timestamp(static_cast<Micros>(rng.Next() >> 1)));
    Row out;
    OPDELTA_ASSERT_OK(RowCodec::Decode(s, Slice(RowCodec::Encode(s, row)),
                                       &out));
    ASSERT_EQ(CompareRows(row, out), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RowCodecPropertyTest,
                         ::testing::Values(5, 6, 7, 8));

// --------------------------------------------------------------- CsvCodec

TEST(CsvCodecTest, LineRoundTrip) {
  Schema s = TestSchema();
  Row row = {Value::Int64(7), Value::String("widget,a \"big\" one"),
             Value::Double(0.25), Value::Timestamp(1234)};
  std::string line;
  CsvCodec::EncodeLine(row, &line);
  ASSERT_EQ(line.back(), '\n');
  Row out;
  OPDELTA_ASSERT_OK(CsvCodec::DecodeLine(
      s, Slice(line.data(), line.size() - 1), &out));
  EXPECT_EQ(CompareRows(row, out), 0);
}

TEST(CsvCodecTest, NullsAsEmptyFields) {
  Schema s = TestSchema();
  Row row = {Value::Int64(1), Value::String("x"), Value::Null(),
             Value::Null()};
  std::string line;
  CsvCodec::EncodeLine(row, &line);
  Row out;
  OPDELTA_ASSERT_OK(CsvCodec::DecodeLine(
      s, Slice(line.data(), line.size() - 1), &out));
  EXPECT_TRUE(out[2].is_null());
  EXPECT_TRUE(out[3].is_null());
}

TEST(CsvCodecTest, FieldCountMismatchRejected) {
  Schema s = TestSchema();
  Row out;
  EXPECT_FALSE(CsvCodec::DecodeLine(s, Slice("1,2"), &out).ok());
}

TEST(CsvCodecTest, BadNumberRejected) {
  Schema s({Column{"n", ValueType::kInt64}});
  Row out;
  EXPECT_FALSE(CsvCodec::DecodeLine(s, Slice("notanumber"), &out).ok());
}

// ---------------------------------------------------------------- Catalog

TEST(CatalogTest, CreateLookupDrop) {
  Catalog catalog;
  TableId id;
  OPDELTA_ASSERT_OK(catalog.CreateTable("parts", TestSchema(), &id));
  const TableInfo* info = catalog.GetTable("parts");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->id, id);
  EXPECT_EQ(catalog.GetTable(id), info);
  EXPECT_EQ(catalog.GetTable("nope"), nullptr);

  EXPECT_TRUE(catalog.CreateTable("parts", TestSchema(), nullptr)
                  .code() == StatusCode::kAlreadyExists);
  OPDELTA_ASSERT_OK(catalog.DropTable("parts"));
  EXPECT_EQ(catalog.GetTable("parts"), nullptr);
  EXPECT_TRUE(catalog.DropTable("parts").IsNotFound());
}

TEST(CatalogTest, PersistsToFile) {
  TempDir dir;
  const std::string path = dir.Sub("catalog.meta");
  TableId id1, id2;
  {
    Catalog catalog;
    OPDELTA_ASSERT_OK(catalog.CreateTable("a", TestSchema(), &id1));
    OPDELTA_ASSERT_OK(catalog.CreateTable("b", TestSchema(), &id2));
    OPDELTA_ASSERT_OK(catalog.SaveToFile(path));
  }
  Catalog reloaded;
  OPDELTA_ASSERT_OK(reloaded.LoadFromFile(path));
  ASSERT_NE(reloaded.GetTable("a"), nullptr);
  ASSERT_NE(reloaded.GetTable("b"), nullptr);
  EXPECT_EQ(reloaded.GetTable("a")->id, id1);
  EXPECT_TRUE(reloaded.GetTable("b")->schema == TestSchema());

  // New ids continue after the loaded ones.
  TableId id3;
  OPDELTA_ASSERT_OK(reloaded.CreateTable("c", TestSchema(), &id3));
  EXPECT_GT(id3, id2);
}

TEST(CatalogTest, TableNamesSorted) {
  Catalog catalog;
  OPDELTA_ASSERT_OK(catalog.CreateTable("zeta", TestSchema(), nullptr));
  OPDELTA_ASSERT_OK(catalog.CreateTable("alpha", TestSchema(), nullptr));
  std::vector<std::string> names = catalog.TableNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

}  // namespace
}  // namespace opdelta::catalog
