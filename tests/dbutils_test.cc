#include <gtest/gtest.h>

#include "common/random.h"
#include "dbutils/ascii_dump.h"
#include "dbutils/export.h"
#include "dbutils/loader.h"
#include "workload/workload.h"
#include "tests/test_util.h"

namespace opdelta::dbutils {
namespace {

using catalog::Row;
using catalog::Value;
using opdelta::testing::CountRows;
using opdelta::testing::OpenDb;
using opdelta::testing::TablesEqual;
using opdelta::testing::TempDir;

class DbUtilsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    src_ = OpenDb(dir_, "src");
    dst_ = OpenDb(dir_, "dst");
    OPDELTA_ASSERT_OK(wl_.CreateTable(src_.get(), "parts"));
    OPDELTA_ASSERT_OK(wl_.CreateTable(dst_.get(), "parts"));
    OPDELTA_ASSERT_OK(wl_.Populate(src_.get(), "parts", 500));
  }

  TempDir dir_;
  workload::PartsWorkload wl_;
  std::unique_ptr<engine::Database> src_, dst_;
};

// ---------------------------------------------------------- Export/Import

TEST_F(DbUtilsTest, ExportImportRoundTrip) {
  const std::string path = dir_.Sub("parts.exp");
  OPDELTA_ASSERT_OK(ExportUtil::Export(src_.get(), "parts", path));
  OPDELTA_ASSERT_OK(ImportUtil::Import(dst_.get(), "parts", path));
  EXPECT_TRUE(TablesEqual(src_.get(), "parts", dst_.get(), "parts"));
}

TEST_F(DbUtilsTest, ExportFileStreamsRows) {
  const std::string path = dir_.Sub("parts.exp");
  OPDELTA_ASSERT_OK(ExportUtil::Export(src_.get(), "parts", path));
  catalog::Schema schema;
  int rows = 0;
  OPDELTA_ASSERT_OK(
      ExportUtil::ReadExportFile(path, &schema, [&](const Row&) {
        ++rows;
        return true;
      }));
  EXPECT_EQ(rows, 500);
  EXPECT_TRUE(schema == workload::PartsWorkload::Schema());
}

TEST_F(DbUtilsTest, ImportRejectsSchemaMismatch) {
  // "Use of the Export/Import utilities require that the same database
  // product [and schema] exist in the source and in the data warehouse."
  const std::string path = dir_.Sub("parts.exp");
  OPDELTA_ASSERT_OK(ExportUtil::Export(src_.get(), "parts", path));
  OPDELTA_ASSERT_OK(dst_->CreateTable(
      "other", catalog::Schema({catalog::Column{
                   "x", catalog::ValueType::kInt64}})));
  Status st = ImportUtil::Import(dst_.get(), "other", path);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST_F(DbUtilsTest, ImportDetectsCorruptFile) {
  const std::string path = dir_.Sub("parts.exp");
  OPDELTA_ASSERT_OK(ExportUtil::Export(src_.get(), "parts", path));
  std::string data;
  OPDELTA_ASSERT_OK(Env::Default()->ReadFileToString(path, &data));
  data[data.size() / 2] ^= 0x40;
  OPDELTA_ASSERT_OK(Env::Default()->WriteStringToFile(path, Slice(data)));
  EXPECT_TRUE(ImportUtil::Import(dst_.get(), "parts", path).IsCorruption());
}

TEST_F(DbUtilsTest, ImportDoesMorePhysicalIoThanLoader) {
  // Reproduce Table 1's qualitative result at unit-test scale: the Import
  // path writes more pages than the Loader path for the same data.
  const std::string exp_path = dir_.Sub("parts.exp");
  const std::string csv_path = dir_.Sub("parts.csv");
  OPDELTA_ASSERT_OK(ExportUtil::Export(src_.get(), "parts", exp_path));
  OPDELTA_ASSERT_OK(AsciiDump::DumpTable(src_.get(), "parts",
                                         engine::Predicate::True(),
                                         csv_path));

  auto import_db = OpenDb(dir_, "imp");
  OPDELTA_ASSERT_OK(wl_.CreateTable(import_db.get(), "parts"));
  ImportUtil::Stats import_stats;
  OPDELTA_ASSERT_OK(ImportUtil::Import(import_db.get(), "parts", exp_path,
                                       ImportUtil::Options(), &import_stats));
  OPDELTA_ASSERT_OK(import_db->FlushAll());

  auto loader_db = OpenDb(dir_, "load");
  OPDELTA_ASSERT_OK(wl_.CreateTable(loader_db.get(), "parts"));
  Loader::Stats loader_stats;
  OPDELTA_ASSERT_OK(
      Loader::Load(loader_db.get(), "parts", csv_path, &loader_stats));

  EXPECT_EQ(loader_stats.rows_loaded, 500u);
  EXPECT_EQ(import_stats.rows_imported, 500u);
  // The Import path's extra physical I/O: staging-page spills plus a WAL
  // record per row; the Loader writes database blocks directly with no
  // logging at all.
  EXPECT_GT(import_stats.staging_spills, 0u);
  EXPECT_GT(import_db->wal()->bytes_appended(),
            500u * 100u);  // ≥ one ~100B image per row
  EXPECT_EQ(loader_db->wal()->bytes_appended(), 0u);
}

class ExportImportPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(ExportImportPropertyTest, RandomSchemasAndRowsRoundTrip) {
  Rng rng(GetParam());
  TempDir dir;
  auto src = OpenDb(dir, "src");
  auto dst = OpenDb(dir, "dst");

  // Random schema: int key + 1..6 random-typed columns.
  std::vector<catalog::Column> cols = {
      catalog::Column{"k", catalog::ValueType::kInt64}};
  const catalog::ValueType kTypes[] = {catalog::ValueType::kInt64,
                                       catalog::ValueType::kDouble,
                                       catalog::ValueType::kString,
                                       catalog::ValueType::kTimestamp};
  const size_t extra = 1 + rng.Uniform(6);
  for (size_t i = 0; i < extra; ++i) {
    cols.push_back(
        catalog::Column{"c" + std::to_string(i), kTypes[rng.Uniform(4)]});
  }
  catalog::Schema schema(std::move(cols));
  OPDELTA_ASSERT_OK(src->CreateTable("t", schema));
  OPDELTA_ASSERT_OK(dst->CreateTable("t", schema));

  // Random rows with nulls sprinkled in.
  const int n = 50 + static_cast<int>(rng.Uniform(300));
  OPDELTA_ASSERT_OK(src->WithTransaction([&](txn::Transaction* txn) -> Status {
    for (int i = 0; i < n; ++i) {
      Row row;
      row.push_back(Value::Int64(i));
      for (size_t c = 1; c < schema.num_columns(); ++c) {
        if (rng.OneIn(8)) {
          row.push_back(Value::Null());
          continue;
        }
        switch (schema.column(c).type) {
          case catalog::ValueType::kInt64:
            row.push_back(Value::Int64(static_cast<int64_t>(rng.Next())));
            break;
          case catalog::ValueType::kDouble:
            row.push_back(Value::Double(rng.NextDouble() * 1e6));
            break;
          case catalog::ValueType::kString:
            row.push_back(Value::String(rng.NextString(rng.Uniform(80))));
            break;
          default:
            row.push_back(
                Value::Timestamp(static_cast<Micros>(rng.Next() >> 1)));
            break;
        }
      }
      OPDELTA_RETURN_IF_ERROR(src->InsertRaw(txn, "t", std::move(row)));
    }
    return Status::OK();
  }));

  const std::string path = dir.Sub("t.exp");
  OPDELTA_ASSERT_OK(ExportUtil::Export(src.get(), "t", path));
  OPDELTA_ASSERT_OK(ImportUtil::Import(dst.get(), "t", path));
  EXPECT_TRUE(TablesEqual(src.get(), "t", dst.get(), "t"));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExportImportPropertyTest,
                         ::testing::Values(61, 62, 63, 64));

// -------------------------------------------------------- AsciiDump/Load

TEST_F(DbUtilsTest, DumpAndLoadRoundTrip) {
  const std::string path = dir_.Sub("parts.csv");
  OPDELTA_ASSERT_OK(AsciiDump::DumpTable(src_.get(), "parts",
                                         engine::Predicate::True(), path));
  OPDELTA_ASSERT_OK(Loader::Load(dst_.get(), "parts", path, nullptr));
  EXPECT_TRUE(TablesEqual(src_.get(), "parts", dst_.get(), "parts"));
}

TEST_F(DbUtilsTest, DumpRespectsPredicate) {
  const std::string path = dir_.Sub("some.csv");
  OPDELTA_ASSERT_OK(AsciiDump::DumpTable(
      src_.get(), "parts",
      engine::Predicate::Where("id", engine::CompareOp::kLt,
                               Value::Int64(100)),
      path));
  std::vector<Row> rows;
  OPDELTA_ASSERT_OK(
      AsciiDump::ReadCsv(path, workload::PartsWorkload::Schema(), &rows));
  EXPECT_EQ(rows.size(), 100u);
}

TEST_F(DbUtilsTest, DumpRowsAndReadBack) {
  std::vector<Row> rows = {{Value::Int64(1), Value::String("a,b"),
                            Value::String("x"), Value::Timestamp(5)},
                           {Value::Int64(2), Value::String("plain"),
                            Value::String(""), Value::Null()}};
  const std::string path = dir_.Sub("rows.csv");
  OPDELTA_ASSERT_OK(AsciiDump::DumpRows(rows, path));
  std::vector<Row> readback;
  OPDELTA_ASSERT_OK(
      AsciiDump::ReadCsv(path, workload::PartsWorkload::Schema(), &readback));
  ASSERT_EQ(readback.size(), 2u);
  EXPECT_EQ(catalog::CompareRows(rows[0], readback[0]), 0);
  EXPECT_EQ(catalog::CompareRows(rows[1], readback[1]), 0);
}

TEST_F(DbUtilsTest, CsvCannotDistinguishNullStringFromEmpty) {
  // A documented ASCII-format limitation: a NULL in a string column comes
  // back as the empty string. Binary Export/Import preserves it exactly —
  // one of the trade-offs §3 weighs between the two dump techniques.
  std::vector<Row> rows = {{Value::Int64(1), Value::Null(),
                            Value::String("p"), Value::Null()}};
  const std::string path = dir_.Sub("null.csv");
  OPDELTA_ASSERT_OK(AsciiDump::DumpRows(rows, path));
  std::vector<Row> readback;
  OPDELTA_ASSERT_OK(
      AsciiDump::ReadCsv(path, workload::PartsWorkload::Schema(), &readback));
  ASSERT_EQ(readback.size(), 1u);
  EXPECT_FALSE(readback[0][1].is_null());
  EXPECT_EQ(readback[0][1].AsString(), "");
}

TEST_F(DbUtilsTest, LoaderRefusesIndexedTable) {
  OPDELTA_ASSERT_OK(dst_->CreateIndex("parts", "id"));
  const std::string path = dir_.Sub("parts.csv");
  OPDELTA_ASSERT_OK(AsciiDump::DumpTable(src_.get(), "parts",
                                         engine::Predicate::True(), path));
  Status st = Loader::Load(dst_.get(), "parts", path, nullptr);
  EXPECT_EQ(st.code(), StatusCode::kNotSupported);
}

TEST_F(DbUtilsTest, LoaderRowsVisibleToScansAndIndexableAfter) {
  const std::string path = dir_.Sub("parts.csv");
  OPDELTA_ASSERT_OK(AsciiDump::DumpTable(src_.get(), "parts",
                                         engine::Predicate::True(), path));
  OPDELTA_ASSERT_OK(Loader::Load(dst_.get(), "parts", path, nullptr));
  // Create the index after the load: it must backfill the loaded rows.
  OPDELTA_ASSERT_OK(dst_->CreateIndex("parts", "id"));
  int count = 0;
  OPDELTA_ASSERT_OK(dst_->IndexScan(nullptr, "parts", "id", 0, 499,
                                    [&](const storage::Rid&, const Row&) {
                                      ++count;
                                      return true;
                                    }));
  EXPECT_EQ(count, 500);
}

TEST_F(DbUtilsTest, LoadedRowsUpdatableTransactionally) {
  const std::string path = dir_.Sub("parts.csv");
  OPDELTA_ASSERT_OK(AsciiDump::DumpTable(src_.get(), "parts",
                                         engine::Predicate::True(), path));
  OPDELTA_ASSERT_OK(Loader::Load(dst_.get(), "parts", path, nullptr));
  OPDELTA_ASSERT_OK(dst_->WithTransaction([&](txn::Transaction* txn) {
    return dst_
        ->UpdateWhere(txn, "parts",
                      engine::Predicate::Where("id", engine::CompareOp::kLt,
                                               Value::Int64(10)),
                      {engine::Assignment{"status", Value::String("bulk")}})
        .status();
  }));
  int updated = 0;
  OPDELTA_ASSERT_OK(dst_->Scan(
      nullptr, "parts",
      engine::Predicate::Where("status", engine::CompareOp::kEq,
                               Value::String("bulk")),
      [&](const storage::Rid&, const Row&) {
        ++updated;
        return true;
      }));
  EXPECT_EQ(updated, 10);
}

}  // namespace
}  // namespace opdelta::dbutils
