#include <gtest/gtest.h>

#include "common/random.h"
#include "extract/op_delta.h"
#include "extract/trigger_extractor.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "warehouse/integrator.h"
#include "workload/workload.h"
#include "tests/test_util.h"

namespace opdelta::extract {
namespace {

using catalog::Row;
using catalog::Value;
using opdelta::testing::CountRows;
using opdelta::testing::OpenDb;
using opdelta::testing::TablesEqual;
using opdelta::testing::TempDir;
using sql::Statement;

class OpDeltaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = OpenDb(dir_, "src");
    OPDELTA_ASSERT_OK(wl_.CreateTable(db_.get(), "parts"));
    executor_ = std::make_unique<sql::Executor>(db_.get());
  }

  /// Capture wrapper with a DB-table sink.
  std::unique_ptr<OpDeltaCapture> MakeDbCapture(bool hybrid = false) {
    if (db_->GetTable("op_log") == nullptr) {
      Status st = db_->CreateTable("op_log", OpDeltaLogTableSchema());
      EXPECT_TRUE(st.ok()) << st.ToString();
    }
    OpDeltaCapture::Options options;
    options.hybrid_before_images = hybrid;
    return std::make_unique<OpDeltaCapture>(
        executor_.get(), std::make_shared<OpDeltaDbSink>("op_log"), options);
  }

  TempDir dir_;
  workload::PartsWorkload wl_;
  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<sql::Executor> executor_;
};

// -------------------------------------------------------------- Capturing

TEST_F(OpDeltaTest, DbSinkCapturesTransactionBoundaries) {
  auto capture = MakeDbCapture();
  OPDELTA_ASSERT_OK(capture
                        ->RunTransaction({wl_.MakeInsert("parts", 0, 3),
                                          wl_.MakeUpdate("parts", 0, 2, "u")})
                        .status());

  std::vector<OpDeltaTxn> txns;
  OPDELTA_ASSERT_OK(OpDeltaLogReader::DrainDbTable(
      db_.get(), "op_log", workload::PartsWorkload::Schema(), &txns));
  ASSERT_EQ(txns.size(), 1u);
  ASSERT_EQ(txns[0].ops.size(), 2u);
  EXPECT_TRUE(txns[0].ops[0].sql.rfind("INSERT INTO parts", 0) == 0);
  EXPECT_TRUE(txns[0].ops[1].sql.rfind("UPDATE parts", 0) == 0);
  // Drained: the log table is empty afterwards.
  EXPECT_EQ(CountRows(db_.get(), "op_log"), 0u);
}

TEST_F(OpDeltaTest, AbortedTransactionLeavesNoDbLogEntries) {
  auto capture = MakeDbCapture();
  Result<std::unique_ptr<txn::Transaction>> txn = capture->Begin();
  ASSERT_TRUE(txn.ok());
  OPDELTA_ASSERT_OK(
      capture->Execute(txn->get(), wl_.MakeInsert("parts", 0, 2)).status());
  OPDELTA_ASSERT_OK(capture->Abort(txn->get()));

  // Capture rode the user transaction: nothing committed anywhere.
  EXPECT_EQ(CountRows(db_.get(), "parts"), 0u);
  EXPECT_EQ(CountRows(db_.get(), "op_log"), 0u);
}

TEST_F(OpDeltaTest, FileSinkRoundTrip) {
  const std::string log_path = dir_.Sub("ops.log");
  Result<std::unique_ptr<OpDeltaFileSink>> sink =
      OpDeltaFileSink::Create(log_path);
  ASSERT_TRUE(sink.ok());
  OpDeltaCapture capture(executor_.get(),
                         std::shared_ptr<OpDeltaSink>(std::move(*sink)),
                         OpDeltaCapture::Options());

  OPDELTA_ASSERT_OK(capture
                        .RunTransaction({wl_.MakeInsert("parts", 0, 2),
                                         wl_.MakeDelete("parts", 0, 1)})
                        .status());
  OPDELTA_ASSERT_OK(
      capture.RunTransaction({wl_.MakeUpdate("parts", 1, 2, "x")}).status());

  std::vector<OpDeltaTxn> txns;
  OPDELTA_ASSERT_OK(OpDeltaLogReader::ReadFile(
      log_path, workload::PartsWorkload::Schema(), &txns));
  ASSERT_EQ(txns.size(), 2u);
  EXPECT_EQ(txns[0].ops.size(), 2u);
  EXPECT_EQ(txns[1].ops.size(), 1u);
}

TEST_F(OpDeltaTest, FileSinkAbortedTxnSkippedByReader) {
  const std::string log_path = dir_.Sub("ops.log");
  Result<std::unique_ptr<OpDeltaFileSink>> sink =
      OpDeltaFileSink::Create(log_path);
  ASSERT_TRUE(sink.ok());
  OpDeltaCapture capture(executor_.get(),
                         std::shared_ptr<OpDeltaSink>(std::move(*sink)),
                         OpDeltaCapture::Options());

  Result<std::unique_ptr<txn::Transaction>> txn = capture.Begin();
  ASSERT_TRUE(txn.ok());
  OPDELTA_ASSERT_OK(
      capture.Execute(txn->get(), wl_.MakeInsert("parts", 0, 1)).status());
  OPDELTA_ASSERT_OK(capture.Abort(txn->get()));
  OPDELTA_ASSERT_OK(
      capture.RunTransaction({wl_.MakeInsert("parts", 5, 1)}).status());

  std::vector<OpDeltaTxn> txns;
  OPDELTA_ASSERT_OK(OpDeltaLogReader::ReadFile(
      log_path, workload::PartsWorkload::Schema(), &txns));
  ASSERT_EQ(txns.size(), 1u);  // the aborted txn was discarded
}

TEST_F(OpDeltaTest, HybridModeCapturesBeforeImages) {
  auto capture = MakeDbCapture(/*hybrid=*/true);
  OPDELTA_ASSERT_OK(
      capture->RunTransaction({wl_.MakeInsert("parts", 0, 5)}).status());
  OPDELTA_ASSERT_OK(
      capture->RunTransaction({wl_.MakeUpdate("parts", 0, 3, "u")}).status());

  std::vector<OpDeltaTxn> txns;
  OPDELTA_ASSERT_OK(OpDeltaLogReader::DrainDbTable(
      db_.get(), "op_log", workload::PartsWorkload::Schema(), &txns));
  ASSERT_EQ(txns.size(), 2u);
  EXPECT_TRUE(txns[0].ops[0].before_images.empty());  // inserts never need it
  ASSERT_EQ(txns[1].ops[0].before_images.size(), 3u);
  EXPECT_EQ(txns[1].ops[0].before_images[0][1].AsString(), "active");
}

TEST_F(OpDeltaTest, OpDeltaVolumeIndependentOfTransactionSize) {
  // §4.1: "the size of an Op-Delta for deletion and update is independent
  // of the size of the transaction", unlike value delta.
  OPDELTA_ASSERT_OK(wl_.Populate(db_.get(), "parts", 2000));
  auto capture = MakeDbCapture();

  OPDELTA_ASSERT_OK(
      capture->RunTransaction({wl_.MakeUpdate("parts", 0, 10, "v")}).status());
  std::vector<OpDeltaTxn> small;
  OPDELTA_ASSERT_OK(OpDeltaLogReader::DrainDbTable(
      db_.get(), "op_log", workload::PartsWorkload::Schema(), &small));

  OPDELTA_ASSERT_OK(
      capture->RunTransaction({wl_.MakeUpdate("parts", 0, 1000, "w")})
          .status());
  std::vector<OpDeltaTxn> large;
  OPDELTA_ASSERT_OK(OpDeltaLogReader::DrainDbTable(
      db_.get(), "op_log", workload::PartsWorkload::Schema(), &large));

  const catalog::Schema schema = workload::PartsWorkload::Schema();
  const uint64_t small_bytes = OpDeltaVolumeBytes(small, schema);
  const uint64_t large_bytes = OpDeltaVolumeBytes(large, schema);
  // 100x more affected records, nearly identical op-delta volume.
  EXPECT_LT(large_bytes, small_bytes + 16);
  // The paper's ~70-byte example statement: ours are the same order.
  EXPECT_LT(small_bytes, 200u);
}

TEST_F(OpDeltaTest, StatementTextIsCanonicalSql) {
  auto capture = MakeDbCapture();
  OPDELTA_ASSERT_OK(
      capture->RunTransaction({wl_.MakeUpdate("parts", 5, 9, "revised")})
          .status());
  std::vector<OpDeltaTxn> txns;
  OPDELTA_ASSERT_OK(OpDeltaLogReader::DrainDbTable(
      db_.get(), "op_log", workload::PartsWorkload::Schema(), &txns));
  ASSERT_EQ(txns.size(), 1u);
  const std::string& sql = txns[0].ops[0].sql;
  EXPECT_EQ(sql,
            "UPDATE parts SET status = 'revised' WHERE id >= 5 AND id < 9");
  // And it re-parses to the same text (wire-format stability).
  Result<Statement> parsed = sql::Parser::Parse(sql);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->ToSql(), sql);
}

TEST_F(OpDeltaTest, DbSinkChunksOversizedStatements) {
  // A multi-thousand-row INSERT statement exceeds a storage page; the DB
  // sink must split it across continuation rows and the reader must
  // reassemble it byte-exactly.
  auto capture = MakeDbCapture();
  sql::Statement big = wl_.MakeInsert("parts", 0, 2000);
  const std::string original_sql = big.ToSql();
  ASSERT_GT(original_sql.size(), 100000u);  // really oversized
  OPDELTA_ASSERT_OK(capture->RunTransaction({big}).status());

  std::vector<OpDeltaTxn> txns;
  OPDELTA_ASSERT_OK(OpDeltaLogReader::DrainDbTable(
      db_.get(), "op_log", workload::PartsWorkload::Schema(), &txns));
  ASSERT_EQ(txns.size(), 1u);
  ASSERT_EQ(txns[0].ops.size(), 1u);
  EXPECT_EQ(txns[0].ops[0].sql, original_sql);

  // And the reassembled statement must replay correctly.
  engine::DatabaseOptions options;
  options.auto_timestamp = false;
  TempDir wh_dir;
  auto wh = opdelta::testing::OpenDb(wh_dir, "wh", options);
  OPDELTA_ASSERT_OK(wl_.CreateTable(wh.get(), "parts"));
  warehouse::OpDeltaIntegrator integrator(wh.get());
  OPDELTA_ASSERT_OK(integrator.Apply(txns, nullptr));
  EXPECT_EQ(CountRows(wh.get(), "parts"), 2000u);
}

// ----------------------------------------------- Apply-equivalence property

class OpDeltaReplayPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(OpDeltaReplayPropertyTest, WarehouseReplayReproducesSource) {
  // Property: applying the captured op stream at an (initially equal)
  // warehouse reproduces the source table exactly — the foundation of the
  // §4.1 claim that Op-Delta alone can refresh the warehouse.
  TempDir dir;
  workload::PartsWorkload wl(
      workload::PartsWorkload::Options{100, GetParam()});

  engine::DatabaseOptions no_stamp;
  no_stamp.auto_timestamp = false;  // replay must not re-stamp
  auto src = OpenDb(dir, "src", no_stamp);
  auto wh = OpenDb(dir, "wh", no_stamp);
  OPDELTA_ASSERT_OK(wl.CreateTable(src.get(), "parts"));
  OPDELTA_ASSERT_OK(wl.CreateTable(wh.get(), "parts"));

  sql::Executor exec(src.get());
  const std::string log_path = dir.Sub("ops.log");
  Result<std::unique_ptr<OpDeltaFileSink>> sink =
      OpDeltaFileSink::Create(log_path);
  ASSERT_TRUE(sink.ok());
  OpDeltaCapture capture(&exec, std::shared_ptr<OpDeltaSink>(std::move(*sink)),
                         OpDeltaCapture::Options());

  Rng rng(GetParam());
  int64_t next_id = 0;
  for (int i = 0; i < 40; ++i) {
    std::vector<Statement> stmts;
    const size_t ops = 1 + rng.Uniform(3);
    for (size_t j = 0; j < ops; ++j) {
      switch (rng.Uniform(3)) {
        case 0: {
          const size_t n = 1 + rng.Uniform(20);
          stmts.push_back(wl.MakeInsert("parts", next_id, n));
          next_id += static_cast<int64_t>(n);
          break;
        }
        case 1: {
          int64_t lo = rng.Uniform(std::max<int64_t>(next_id, 1));
          stmts.push_back(wl.MakeUpdate("parts", lo, lo + 1 + rng.Uniform(15),
                                        "s" + std::to_string(i)));
          break;
        }
        default: {
          int64_t lo = rng.Uniform(std::max<int64_t>(next_id, 1));
          stmts.push_back(wl.MakeDelete("parts", lo, lo + 1 + rng.Uniform(8)));
          break;
        }
      }
    }
    OPDELTA_ASSERT_OK(capture.RunTransaction(stmts).status());
  }

  std::vector<OpDeltaTxn> txns;
  OPDELTA_ASSERT_OK(OpDeltaLogReader::ReadFile(
      log_path, workload::PartsWorkload::Schema(), &txns));
  warehouse::OpDeltaIntegrator integrator(wh.get());
  warehouse::IntegrationStats stats;
  OPDELTA_ASSERT_OK(integrator.Apply(txns, &stats));

  EXPECT_TRUE(TablesEqual(src.get(), "parts", wh.get(), "parts"));
  EXPECT_EQ(stats.transactions, txns.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, OpDeltaReplayPropertyTest,
                         ::testing::Values(21, 22, 23, 24));

// -------------------------------------------- Comparison with value delta

TEST_F(OpDeltaTest, TransportVolumeFarBelowValueDelta) {
  OPDELTA_ASSERT_OK(wl_.Populate(db_.get(), "parts", 1000));
  Result<std::string> delta_table =
      TriggerExtractor::Install(db_.get(), "parts");
  ASSERT_TRUE(delta_table.ok());
  auto capture = MakeDbCapture();

  OPDELTA_ASSERT_OK(
      capture->RunTransaction({wl_.MakeUpdate("parts", 0, 500, "bulk")})
          .status());

  Result<DeltaBatch> value_delta = TriggerExtractor::Drain(db_.get(), "parts");
  ASSERT_TRUE(value_delta.ok());
  std::vector<OpDeltaTxn> op_delta;
  OPDELTA_ASSERT_OK(OpDeltaLogReader::DrainDbTable(
      db_.get(), "op_log", workload::PartsWorkload::Schema(), &op_delta));

  const uint64_t value_bytes = value_delta->SizeBytes();
  const uint64_t op_bytes =
      OpDeltaVolumeBytes(op_delta, workload::PartsWorkload::Schema());
  // 500 before+after images (~100B each) vs one ~70B statement.
  EXPECT_GT(value_bytes, 50u * op_bytes);
}

}  // namespace
}  // namespace opdelta::extract
