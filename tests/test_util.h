#ifndef OPDELTA_TESTS_TEST_UTIL_H_
#define OPDELTA_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <map>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/status.h"
#include "catalog/value.h"
#include "engine/database.h"

namespace opdelta::testing {

/// Asserts an opdelta::Status is OK with a useful message.
#define OPDELTA_ASSERT_OK(expr)                                     \
  do {                                                              \
    ::opdelta::Status _st = (expr);                                 \
    ASSERT_TRUE(_st.ok()) << "status: " << _st.ToString();          \
  } while (0)

#define OPDELTA_EXPECT_OK(expr)                                     \
  do {                                                              \
    ::opdelta::Status _st = (expr);                                 \
    EXPECT_TRUE(_st.ok()) << "status: " << _st.ToString();          \
  } while (0)

/// Installs `env` as the process default for the enclosing scope.
class ScopedEnvOverride {
 public:
  explicit ScopedEnvOverride(Env* env) : prev_(Env::SetDefault(env)) {}
  ~ScopedEnvOverride() { Env::SetDefault(prev_); }

  ScopedEnvOverride(const ScopedEnvOverride&) = delete;
  ScopedEnvOverride& operator=(const ScopedEnvOverride&) = delete;

 private:
  Env* prev_;
};

/// Unique scratch directory, removed on destruction.
class TempDir {
 public:
  TempDir() {
    static std::atomic<uint64_t> counter{0};
    path_ = ::testing::TempDir() + "opdelta_test_" +
            std::to_string(::getpid()) + "_" +
            std::to_string(counter.fetch_add(1));
    (void)Env::Default()->CreateDir(path_);  // asserted by first use
  }
  ~TempDir() { (void)Env::Default()->RemoveDirAll(path_); }

  const std::string& path() const { return path_; }
  std::string Sub(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

/// Opens a database under the temp dir with sane test options.
inline std::unique_ptr<engine::Database> OpenDb(
    const TempDir& dir, const std::string& name,
    engine::DatabaseOptions options = engine::DatabaseOptions()) {
  std::unique_ptr<engine::Database> db;
  Status st = engine::Database::Open(dir.Sub(name), options, &db);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return db;
}

/// All rows of a table keyed by first column, for equality comparisons.
inline std::map<catalog::Value, catalog::Row> TableContents(
    engine::Database* db, const std::string& table) {
  std::map<catalog::Value, catalog::Row> out;
  Status st = db->Scan(nullptr, table, engine::Predicate::True(),
                       [&](const storage::Rid&, const catalog::Row& row) {
                         out[row[0]] = row;
                         return true;
                       });
  EXPECT_TRUE(st.ok()) << st.ToString();
  return out;
}

/// Row count helper.
inline uint64_t CountRows(engine::Database* db, const std::string& table) {
  Result<uint64_t> r = db->CountRows(table);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? r.value() : 0;
}

/// Compares two tables (possibly in different databases) for exact
/// equality of contents, ignoring physical placement.
inline ::testing::AssertionResult TablesEqual(engine::Database* a,
                                              const std::string& ta,
                                              engine::Database* b,
                                              const std::string& tb) {
  auto ca = TableContents(a, ta);
  auto cb = TableContents(b, tb);
  if (ca.size() != cb.size()) {
    return ::testing::AssertionFailure()
           << ta << " has " << ca.size() << " rows, " << tb << " has "
           << cb.size();
  }
  for (const auto& [key, row] : ca) {
    auto it = cb.find(key);
    if (it == cb.end()) {
      return ::testing::AssertionFailure()
             << "key " << key.ToSqlLiteral() << " missing from " << tb;
    }
    if (catalog::CompareRows(row, it->second) != 0) {
      return ::testing::AssertionFailure()
             << "rows differ at key " << key.ToSqlLiteral();
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace opdelta::testing

#endif  // OPDELTA_TESTS_TEST_UTIL_H_
