#include <gtest/gtest.h>

#include "common/random.h"
#include "pipeline/cdc_pipeline.h"
#include "pipeline/source_leg.h"
#include "sql/executor.h"
#include "workload/workload.h"
#include "tests/test_util.h"

namespace opdelta::pipeline {
namespace {

using opdelta::testing::CountRows;
using opdelta::testing::OpenDb;
using opdelta::testing::TablesEqual;
using opdelta::testing::TempDir;

class PipelineTest : public ::testing::TestWithParam<Method> {
 protected:
  void SetUp() override {
    engine::DatabaseOptions options;
    options.auto_timestamp = GetParam() == Method::kTimestamp;
    src_ = OpenDb(dir_, "src", options);
    engine::DatabaseOptions wh_options;
    wh_options.auto_timestamp = false;
    wh_ = OpenDb(dir_, "wh", wh_options);
    OPDELTA_ASSERT_OK(wl_.CreateTable(src_.get(), "parts"));
    OPDELTA_ASSERT_OK(wl_.CreateTable(wh_.get(), "parts"));

    PipelineOptions popts;
    popts.method = GetParam();
    popts.source_table = "parts";
    popts.warehouse_table = "parts";
    popts.work_dir = dir_.Sub("pipeline");
    Result<std::unique_ptr<CdcPipeline>> p =
        CdcPipeline::Create(src_.get(), wh_.get(), popts);
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    pipeline_ = std::move(*p);
    OPDELTA_ASSERT_OK(pipeline_->Setup());
    exec_ = std::make_unique<sql::Executor>(src_.get());
  }

  /// Runs one source transaction through the right entry point.
  Status RunSource(const sql::Statement& stmt) {
    if (GetParam() == Method::kOpDelta) {
      return pipeline_->capture()->RunTransaction({stmt}).status();
    }
    return exec_->ExecuteSql(stmt.ToSql()).status();
  }

  TempDir dir_;
  workload::PartsWorkload wl_;
  std::unique_ptr<engine::Database> src_, wh_;
  std::unique_ptr<CdcPipeline> pipeline_;
  std::unique_ptr<sql::Executor> exec_;
};

TEST_P(PipelineTest, ConvergesOverMultipleRounds) {
  // Round 1: inserts.
  OPDELTA_ASSERT_OK(RunSource(wl_.MakeInsert("parts", 0, 200)));
  OPDELTA_ASSERT_OK(pipeline_->RunOnce());
  EXPECT_TRUE(TablesEqual(src_.get(), "parts", wh_.get(), "parts"));

  // Round 2: updates.
  OPDELTA_ASSERT_OK(RunSource(wl_.MakeUpdate("parts", 50, 150, "v2")));
  OPDELTA_ASSERT_OK(pipeline_->RunOnce());
  EXPECT_TRUE(TablesEqual(src_.get(), "parts", wh_.get(), "parts"));

  // Round 3: deletes — visible to every method except timestamp.
  OPDELTA_ASSERT_OK(RunSource(wl_.MakeDelete("parts", 0, 30)));
  OPDELTA_ASSERT_OK(pipeline_->RunOnce());
  if (GetParam() == Method::kTimestamp) {
    // Documented blind spot: the warehouse keeps the deleted rows.
    EXPECT_EQ(CountRows(wh_.get(), "parts"), 200u);
    EXPECT_EQ(CountRows(src_.get(), "parts"), 170u);
  } else {
    EXPECT_TRUE(TablesEqual(src_.get(), "parts", wh_.get(), "parts"));
  }

  EXPECT_EQ(pipeline_->stats().rounds, 3u);
  // The timestamp method ships nothing for the delete-only round (the
  // deletes are invisible to it); every other method ships three batches.
  EXPECT_GE(pipeline_->stats().batches_shipped,
            GetParam() == Method::kTimestamp ? 2u : 3u);
  EXPECT_GT(pipeline_->stats().bytes_shipped, 0u);
}

TEST_P(PipelineTest, IdleRoundsShipNothing) {
  OPDELTA_ASSERT_OK(RunSource(wl_.MakeInsert("parts", 0, 10)));
  OPDELTA_ASSERT_OK(pipeline_->RunOnce());
  const uint64_t shipped = pipeline_->stats().batches_shipped;
  OPDELTA_ASSERT_OK(pipeline_->RunOnce());
  OPDELTA_ASSERT_OK(pipeline_->RunOnce());
  EXPECT_EQ(pipeline_->stats().batches_shipped, shipped);  // no new batches
  EXPECT_TRUE(TablesEqual(src_.get(), "parts", wh_.get(), "parts"));
}

TEST_P(PipelineTest, InterleavedChangesAcrossRounds) {
  Rng rng(31 + static_cast<uint64_t>(GetParam()));
  int64_t next_id = 0;
  for (int round = 0; round < 8; ++round) {
    const size_t n = 1 + rng.Uniform(20);
    OPDELTA_ASSERT_OK(RunSource(wl_.MakeInsert("parts", next_id, n)));
    next_id += static_cast<int64_t>(n);
    if (round % 2 == 1) {
      int64_t lo = rng.Uniform(next_id);
      OPDELTA_ASSERT_OK(RunSource(wl_.MakeUpdate(
          "parts", lo, lo + 1 + rng.Uniform(10),
          "r" + std::to_string(round))));
    }
    OPDELTA_ASSERT_OK(pipeline_->RunOnce());
    ASSERT_TRUE(TablesEqual(src_.get(), "parts", wh_.get(), "parts"))
        << "after round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Methods, PipelineTest,
                         ::testing::Values(Method::kTimestamp, Method::kLog,
                                           Method::kTrigger,
                                           Method::kOpDelta),
                         [](const ::testing::TestParamInfo<Method>& param_info) {
                           switch (param_info.param) {
                             case Method::kTimestamp:
                               return "Timestamp";
                             case Method::kLog:
                               return "Log";
                             case Method::kTrigger:
                               return "Trigger";
                             case Method::kOpDelta:
                               return "OpDelta";
                           }
                           return "Unknown";
                         });

TEST(PipelineRestartTest, WatermarkSurvivesRestart) {
  TempDir dir;
  engine::DatabaseOptions options;
  options.auto_timestamp = false;
  auto src = OpenDb(dir, "src", options);
  auto wh = OpenDb(dir, "wh", options);
  workload::PartsWorkload wl;
  OPDELTA_ASSERT_OK(wl.CreateTable(src.get(), "parts"));
  OPDELTA_ASSERT_OK(wl.CreateTable(wh.get(), "parts"));
  sql::Executor exec(src.get());

  PipelineOptions popts;
  popts.method = Method::kLog;
  popts.source_table = "parts";
  popts.warehouse_table = "parts";
  popts.work_dir = dir.Sub("pipeline");

  {
    Result<std::unique_ptr<CdcPipeline>> p =
        CdcPipeline::Create(src.get(), wh.get(), popts);
    ASSERT_TRUE(p.ok());
    OPDELTA_ASSERT_OK((*p)->Setup());
    OPDELTA_ASSERT_OK(
        exec.ExecuteSql(wl.MakeInsert("parts", 0, 100).ToSql()).status());
    OPDELTA_ASSERT_OK((*p)->RunOnce());
    EXPECT_TRUE(TablesEqual(src.get(), "parts", wh.get(), "parts"));
  }

  // "Restart": a new pipeline instance over the same work dir must resume
  // from the persisted LSN watermark — the first batch must not re-ship.
  Result<std::unique_ptr<CdcPipeline>> p2 =
      CdcPipeline::Create(src.get(), wh.get(), popts);
  ASSERT_TRUE(p2.ok());
  OPDELTA_ASSERT_OK((*p2)->Setup());
  OPDELTA_ASSERT_OK(
      exec.ExecuteSql(wl.MakeUpdate("parts", 0, 10, "after").ToSql())
          .status());
  OPDELTA_ASSERT_OK((*p2)->RunOnce());
  // Only the update's 20 images (before+after per row) were extracted.
  EXPECT_EQ((*p2)->stats().records_extracted, 20u);
  EXPECT_TRUE(TablesEqual(src.get(), "parts", wh.get(), "parts"));
}

// ------------------------------------------------- batch payload CRC

/// End-to-end payload checksum: stamped over the serialized batch at
/// capture, verified at warehouse apply. A flipped payload byte must be
/// rejected as Corruption (a deterministic error, so the hub diverts the
/// batch to dead-letters instead of retrying forever).
TEST(BatchCrcTest, CorruptPayloadRejectedAtApply) {
  TempDir dir;
  engine::DatabaseOptions options;
  options.auto_timestamp = false;
  auto src = OpenDb(dir, "src", options);
  auto wh = OpenDb(dir, "wh", options);
  workload::PartsWorkload wl;
  OPDELTA_ASSERT_OK(wl.CreateTable(src.get(), "parts"));
  OPDELTA_ASSERT_OK(wl.CreateTable(wh.get(), "parts"));
  PipelineOptions popts;
  popts.method = Method::kOpDelta;
  popts.source_table = "parts";
  popts.warehouse_table = "parts";
  popts.work_dir = dir.Sub("leg");
  Result<std::unique_ptr<SourceLeg>> leg =
      SourceLeg::Create(src.get(), std::move(popts));
  OPDELTA_ASSERT_OK(leg.status());
  OPDELTA_ASSERT_OK((*leg)->Setup());

  OPDELTA_ASSERT_OK((*leg)
                        ->capture()
                        ->RunTransaction({wl.MakeInsert("parts", 0, 10)})
                        .status());
  bool shipped = false;
  OPDELTA_ASSERT_OK((*leg)->ExtractAndShip(&shipped));
  ASSERT_TRUE(shipped);
  std::string message;
  OPDELTA_ASSERT_OK((*leg)->PeekShipped(&message));

  // Bit rot in transit: flip one payload byte past the frame header. The
  // header still parses (routing stays possible) but apply must refuse.
  std::string corrupt = message;
  corrupt[corrupt.size() - 3] ^= 0x20;
  extract::BatchId id;
  OPDELTA_ASSERT_OK(DecodeBatchHeader(Slice(corrupt), &id));
  std::string payload;
  Status st = DecodeBatchFrame(corrupt, &id, &payload);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  st = (*leg)->Integrate(wh.get(), corrupt, nullptr);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_EQ(CountRows(wh.get(), "parts"), 0u);

  // The pristine frame still applies.
  OPDELTA_ASSERT_OK((*leg)->Integrate(wh.get(), message, nullptr));
  OPDELTA_ASSERT_OK((*leg)->AckShipped());
  EXPECT_TRUE(TablesEqual(src.get(), "parts", wh.get(), "parts"));
}

// --------------------------------------------------- queue backpressure

/// A bounded shipping queue stalls extraction (kResourceExhausted, batch
/// retained) rather than dropping data; draining the backlog un-wedges
/// the leg and everything converges without loss or duplication.
TEST(BackpressureTest, FullQueueRetainsBatchUntilDrained) {
  TempDir dir;
  engine::DatabaseOptions options;
  options.auto_timestamp = false;
  auto src = OpenDb(dir, "src", options);
  auto wh = OpenDb(dir, "wh", options);
  workload::PartsWorkload wl;
  OPDELTA_ASSERT_OK(wl.CreateTable(src.get(), "parts"));
  OPDELTA_ASSERT_OK(wl.CreateTable(wh.get(), "parts"));
  PipelineOptions popts;
  popts.method = Method::kOpDelta;
  popts.source_table = "parts";
  popts.warehouse_table = "parts";
  popts.work_dir = dir.Sub("leg");
  popts.queue_max_bytes = 2048;  // a couple of small batches at most
  Result<std::unique_ptr<SourceLeg>> leg =
      SourceLeg::Create(src.get(), std::move(popts));
  OPDELTA_ASSERT_OK(leg.status());
  OPDELTA_ASSERT_OK((*leg)->Setup());

  // Ship without draining until the bound pushes back.
  Status st;
  int rounds = 0;
  for (; rounds < 200; ++rounds) {
    OPDELTA_ASSERT_OK(
        (*leg)
            ->capture()
            ->RunTransaction({wl.MakeInsert("parts", rounds * 10, 10)})
            .status());
    st = (*leg)->ExtractAndShip();
    if (!st.ok()) break;
  }
  ASSERT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();
  const uint64_t shipped_before = (*leg)->stats().batches_shipped;

  // The retained batch blocks snapshot ships too (stable identities).
  extract::DeltaBatch chunk;
  chunk.table = "parts";
  chunk.schema = workload::PartsWorkload::Schema();
  EXPECT_EQ((*leg)->ShipSnapshot(chunk).code(), StatusCode::kBusy);

  // Drain one message and the retried ship goes through.
  std::string message;
  OPDELTA_ASSERT_OK((*leg)->PeekShipped(&message));
  OPDELTA_ASSERT_OK((*leg)->Integrate(wh.get(), message, nullptr));
  OPDELTA_ASSERT_OK((*leg)->AckShipped());
  OPDELTA_ASSERT_OK((*leg)->ExtractAndShip());
  EXPECT_EQ((*leg)->stats().batches_shipped, shipped_before + 1);

  // Full drain: every batch arrives exactly once.
  while (true) {
    Status peek = (*leg)->PeekShipped(&message);
    if (peek.IsNotFound()) break;
    OPDELTA_ASSERT_OK(peek);
    OPDELTA_ASSERT_OK((*leg)->Integrate(wh.get(), message, nullptr));
    OPDELTA_ASSERT_OK((*leg)->AckShipped());
  }
  EXPECT_TRUE(TablesEqual(src.get(), "parts", wh.get(), "parts"));
}

TEST(PipelineValidationTest, RejectsMismatchedSchemas) {
  TempDir dir;
  auto src = OpenDb(dir, "src");
  auto wh = OpenDb(dir, "wh");
  workload::PartsWorkload wl;
  OPDELTA_ASSERT_OK(wl.CreateTable(src.get(), "parts"));
  OPDELTA_ASSERT_OK(wh->CreateTable(
      "parts",
      catalog::Schema({catalog::Column{"x", catalog::ValueType::kInt64}})));
  PipelineOptions popts;
  popts.source_table = "parts";
  popts.warehouse_table = "parts";
  popts.work_dir = dir.Sub("p");
  EXPECT_FALSE(CdcPipeline::Create(src.get(), wh.get(), popts).ok());
}

}  // namespace
}  // namespace opdelta::pipeline
