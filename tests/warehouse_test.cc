#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "extract/op_delta.h"
#include "extract/trigger_extractor.h"
#include "warehouse/apply_ledger.h"
#include "sql/executor.h"
#include "warehouse/integrator.h"
#include "warehouse/view.h"
#include "workload/workload.h"
#include "tests/test_util.h"

namespace opdelta::warehouse {
namespace {

using catalog::Row;
using catalog::Value;
using engine::CompareOp;
using engine::Predicate;
using extract::DeltaBatch;
using extract::DeltaOp;
using extract::DeltaRecord;
using extract::OpDeltaTxn;
using opdelta::testing::CountRows;
using opdelta::testing::OpenDb;
using opdelta::testing::TableContents;
using opdelta::testing::TablesEqual;
using opdelta::testing::TempDir;

class WarehouseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine::DatabaseOptions options;
    options.auto_timestamp = false;  // warehouses preserve source values
    wh_ = OpenDb(dir_, "wh", options);
    OPDELTA_ASSERT_OK(wl_.CreateTable(wh_.get(), "parts"));
  }

  Row PartsRow(int64_t id, const std::string& status) {
    return {Value::Int64(id), Value::String(status), Value::String("p"),
            Value::Timestamp(id * 10)};
  }

  Status Preload(int64_t n) {
    return wh_->WithTransaction([&](txn::Transaction* txn) -> Status {
      for (int64_t i = 0; i < n; ++i) {
        OPDELTA_RETURN_IF_ERROR(
            wh_->InsertRaw(txn, "parts", PartsRow(i, "base")));
      }
      return Status::OK();
    });
  }

  TempDir dir_;
  workload::PartsWorkload wl_;
  std::unique_ptr<engine::Database> wh_;
};

// ---------------------------------------------------- ValueDeltaIntegrator

TEST_F(WarehouseTest, ValueDeltaAppliesInsertDeleteUpdate) {
  OPDELTA_ASSERT_OK(Preload(10));
  DeltaBatch batch;
  batch.table = "parts";
  batch.schema = workload::PartsWorkload::Schema();
  batch.records = {
      DeltaRecord{DeltaOp::kInsert, 1, 0, PartsRow(100, "new")},
      DeltaRecord{DeltaOp::kDelete, 2, 1, PartsRow(3, "base")},
      DeltaRecord{DeltaOp::kUpdateBefore, 3, 2, PartsRow(5, "base")},
      DeltaRecord{DeltaOp::kUpdateAfter, 3, 3, PartsRow(5, "mut")},
      DeltaRecord{DeltaOp::kUpsert, 4, 4, PartsRow(7, "upserted")},
  };

  ValueDeltaIntegrator integrator(wh_.get(), "parts");
  IntegrationStats stats;
  OPDELTA_ASSERT_OK(integrator.Apply(batch, &stats));

  auto contents = TableContents(wh_.get(), "parts");
  EXPECT_EQ(contents.size(), 10u);  // +1 insert, -1 delete
  EXPECT_EQ(contents.at(Value::Int64(100))[1].AsString(), "new");
  EXPECT_EQ(contents.count(Value::Int64(3)), 0u);
  EXPECT_EQ(contents.at(Value::Int64(5))[1].AsString(), "mut");
  EXPECT_EQ(contents.at(Value::Int64(7))[1].AsString(), "upserted");

  // One transaction; one statement per record (update pair = 2, upsert = 2).
  EXPECT_EQ(stats.transactions, 1u);
  EXPECT_EQ(stats.statements_executed, 6u);
  EXPECT_GT(stats.outage_micros, 0);
}

TEST_F(WarehouseTest, ValueDeltaUpsertInsertsWhenAbsent) {
  DeltaBatch batch;
  batch.table = "parts";
  batch.schema = workload::PartsWorkload::Schema();
  batch.records = {DeltaRecord{DeltaOp::kUpsert, 1, 0, PartsRow(1, "fresh")}};
  ValueDeltaIntegrator integrator(wh_.get(), "parts");
  OPDELTA_ASSERT_OK(integrator.Apply(batch, nullptr));
  EXPECT_EQ(CountRows(wh_.get(), "parts"), 1u);
}

// ------------------------------------------------------ OpDeltaIntegrator

TEST_F(WarehouseTest, OpDeltaAppliesPerSourceTransaction) {
  OPDELTA_ASSERT_OK(Preload(20));
  OpDeltaTxn t1{101, {}};
  t1.ops.push_back(extract::OpDeltaRecord{
      101, 1, "UPDATE parts SET status = 'x' WHERE id < 5", false, {}});
  OpDeltaTxn t2{102, {}};
  t2.ops.push_back(
      extract::OpDeltaRecord{102, 2, "DELETE FROM parts WHERE id >= 18", false, {}});

  OpDeltaIntegrator integrator(wh_.get());
  IntegrationStats stats;
  OPDELTA_ASSERT_OK(integrator.Apply({t1, t2}, &stats));
  EXPECT_EQ(stats.transactions, 2u);
  EXPECT_EQ(stats.statements_executed, 2u);
  EXPECT_EQ(stats.rows_affected, 7u);
  EXPECT_EQ(stats.outage_micros, 0);  // never takes a table-X lock

  auto contents = TableContents(wh_.get(), "parts");
  EXPECT_EQ(contents.size(), 18u);
  EXPECT_EQ(contents.at(Value::Int64(0))[1].AsString(), "x");
}

TEST_F(WarehouseTest, OpDeltaBadStatementAbortsItsTransactionOnly) {
  OPDELTA_ASSERT_OK(Preload(5));
  OpDeltaTxn good{1, {extract::OpDeltaRecord{
                         1, 1, "UPDATE parts SET status = 'ok'", false, {}}}};
  OpDeltaTxn bad{2, {extract::OpDeltaRecord{2, 2, "NOT SQL AT ALL", false, {}}}};

  OpDeltaIntegrator integrator(wh_.get());
  OPDELTA_ASSERT_OK(integrator.ApplyOne(good, nullptr));
  EXPECT_FALSE(integrator.ApplyOne(bad, nullptr).ok());
  // The first transaction's effect survives.
  EXPECT_EQ(TableContents(wh_.get(), "parts").at(Value::Int64(0))[1]
                .AsString(),
            "ok");
}

// ------------------------------------------------- Online maintenance story

TEST_F(WarehouseTest, ValueDeltaBlocksOlapQueriesOpDeltaDoesNot) {
  OPDELTA_ASSERT_OK(Preload(2000));

  // A long value-delta batch holding the table-X lock.
  DeltaBatch batch;
  batch.table = "parts";
  batch.schema = workload::PartsWorkload::Schema();
  for (int i = 0; i < 400; ++i) {
    batch.records.push_back(
        DeltaRecord{DeltaOp::kUpdateBefore, 1, static_cast<uint64_t>(2 * i),
                    PartsRow(i, "base")});
    batch.records.push_back(
        DeltaRecord{DeltaOp::kUpdateAfter, 1,
                    static_cast<uint64_t>(2 * i + 1), PartsRow(i, "vd")});
  }

  std::atomic<bool> integration_started{false};
  std::atomic<Micros> query_latency{0};
  std::thread integrator_thread([&]() {
    ValueDeltaIntegrator integrator(wh_.get(), "parts");
    integration_started = true;
    IntegrationStats stats;
    Status st = integrator.Apply(batch, &stats);
    EXPECT_TRUE(st.ok()) << st.ToString();
  });
  while (!integration_started) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  // OLAP query issued while the batch runs: it must wait out the outage.
  Result<workload::OlapQueryResult> blocked =
      workload::RunOlapQuery(wh_.get(), "parts");
  integrator_thread.join();
  ASSERT_TRUE(blocked.ok()) << blocked.status().ToString();

  // Compare with the same query against Op-Delta integration.
  OpDeltaTxn op_txn{9, {extract::OpDeltaRecord{
                           9, 1,
                           "UPDATE parts SET status = 'od' WHERE id < 400", false, {}}}};
  std::thread op_thread([&]() {
    OpDeltaIntegrator integrator(wh_.get());
    IntegrationStats stats;
    Status st = integrator.Apply({op_txn}, &stats);
    EXPECT_TRUE(st.ok()) << st.ToString();
  });
  Result<workload::OlapQueryResult> concurrent =
      workload::RunOlapQuery(wh_.get(), "parts");
  op_thread.join();
  ASSERT_TRUE(concurrent.ok());

  // Both queries eventually answered; the blocked one saw the post-batch
  // state (it could not read during the outage).
  EXPECT_EQ(blocked->rows_scanned, 2000u);
  EXPECT_EQ(concurrent->rows_scanned, 2000u);
}

TEST_F(WarehouseTest, OlapQueriesNeverSeeTornOpDeltaTransactions) {
  // §4.1: Op-Delta "can interleave with OLAP queries without impacting the
  // integrity of the query result". Each applied source transaction
  // rewrites EVERY row's status to one generation tag; a table-S OLAP
  // query must always observe exactly one generation — never a mix.
  OPDELTA_ASSERT_OK(Preload(800));
  OPDELTA_ASSERT_OK(wh_->CreateIndex("parts", "id"));

  std::vector<OpDeltaTxn> txns;
  for (int gen = 0; gen < 25; ++gen) {
    txns.push_back(OpDeltaTxn{
        static_cast<txn::TxnId>(gen + 1),
        {extract::OpDeltaRecord{
            static_cast<txn::TxnId>(gen + 1), 1,
            "UPDATE parts SET status = 'gen" + std::to_string(gen) + "'",
            false,
            {}}}});
  }

  std::atomic<bool> done{false};
  std::atomic<int> torn_reads{0};
  std::atomic<int> queries{0};
  std::thread olap([&]() {
    while (!done.load()) {
      auto txn = wh_->Begin();
      if (!wh_->LockTableShared(txn.get(), "parts").ok()) {
        (void)wh_->Abort(txn.get());
        continue;
      }
      std::set<std::string> generations;
      Status st = wh_->Scan(txn.get(), "parts", Predicate::True(),
                            [&](const storage::Rid&, const Row& row) {
                              generations.insert(row[1].AsString());
                              return true;
                            });
      (void)wh_->Commit(txn.get());
      if (st.ok()) {
        ++queries;
        if (generations.size() > 1) ++torn_reads;
      }
    }
  });

  warehouse::OpDeltaIntegrator integrator(wh_.get());
  OPDELTA_ASSERT_OK(integrator.Apply(txns, nullptr));
  done = true;
  olap.join();

  EXPECT_GT(queries.load(), 0);
  EXPECT_EQ(torn_reads.load(), 0)
      << "a query observed rows from two different source transactions";
  auto contents = TableContents(wh_.get(), "parts");
  EXPECT_EQ(contents.at(Value::Int64(0))[1].AsString(), "gen24");
}

// ------------------------------------------------------------------ Views

class ViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine::DatabaseOptions options;
    options.auto_timestamp = false;
    src_ = OpenDb(dir_, "src", options);
    wh_ = OpenDb(dir_, "wh", options);
    OPDELTA_ASSERT_OK(wl_.CreateTable(src_.get(), "parts"));

    def_.view_table = "active_parts";
    def_.source_table = "parts";
    def_.projection = {{"id", "part_id"}, {"status", "part_status"}};
    def_.selection =
        Predicate::Where("status", CompareOp::kNe, Value::String("retired"));

    Result<std::unique_ptr<ViewMaintainer>> vm = ViewMaintainer::CreateViewTable(
        wh_.get(), def_, workload::PartsWorkload::Schema());
    ASSERT_TRUE(vm.ok()) << vm.status().ToString();
    maintainer_ = std::move(*vm);

    exec_ = std::make_unique<sql::Executor>(src_.get());
    Result<std::unique_ptr<extract::OpDeltaFileSink>> sink =
        extract::OpDeltaFileSink::Create(dir_.Sub("ops.log"));
    ASSERT_TRUE(sink.ok());
    extract::OpDeltaCapture::Options copt;
    copt.hybrid_before_images = true;
    capture_ = std::make_unique<extract::OpDeltaCapture>(
        exec_.get(), std::shared_ptr<extract::OpDeltaSink>(std::move(*sink)),
        copt);
  }

  /// Runs stmts as one captured source txn and applies it to the view.
  Status RunAndMaintain(const std::vector<sql::Statement>& stmts) {
    OPDELTA_RETURN_IF_ERROR(capture_->RunTransaction(stmts).status());
    std::vector<OpDeltaTxn> txns;
    OPDELTA_RETURN_IF_ERROR(extract::OpDeltaLogReader::ReadFile(
        dir_.Sub("ops.log"), workload::PartsWorkload::Schema(), &txns));
    // Apply only the newest txn (the file accumulates).
    return maintainer_->ApplyTxn(txns.back());
  }

  ::testing::AssertionResult ViewMatchesRecompute() {
    Result<std::vector<Row>> expected =
        ViewMaintainer::ComputeFromSource(src_.get(), def_);
    if (!expected.ok()) {
      return ::testing::AssertionFailure() << expected.status().ToString();
    }
    Result<std::vector<Row>> actual = maintainer_->Materialized();
    if (!actual.ok()) {
      return ::testing::AssertionFailure() << actual.status().ToString();
    }
    if (expected->size() != actual->size()) {
      return ::testing::AssertionFailure()
             << "view has " << actual->size() << " rows, recompute says "
             << expected->size();
    }
    for (size_t i = 0; i < expected->size(); ++i) {
      if (catalog::CompareRows((*expected)[i], (*actual)[i]) != 0) {
        return ::testing::AssertionFailure() << "row " << i << " differs";
      }
    }
    return ::testing::AssertionSuccess();
  }

  TempDir dir_;
  workload::PartsWorkload wl_;
  std::unique_ptr<engine::Database> src_, wh_;
  ViewDef def_;
  std::unique_ptr<ViewMaintainer> maintainer_;
  std::unique_ptr<sql::Executor> exec_;
  std::unique_ptr<extract::OpDeltaCapture> capture_;
};

TEST_F(ViewTest, SchemaRenamesColumns) {
  engine::Table* vt = wh_->GetTable("active_parts");
  ASSERT_NE(vt, nullptr);
  EXPECT_EQ(vt->schema().column(0).name, "part_id");
  EXPECT_EQ(vt->schema().column(1).name, "part_status");
  EXPECT_EQ(vt->schema().num_columns(), 2u);
}

TEST_F(ViewTest, AnalyzeClassifiesStatements) {
  // INSERT: always op-only.
  EXPECT_EQ(maintainer_->Analyze(wl_.MakeInsert("parts", 0, 1)),
            Maintainability::kOpOnly);
  // DELETE on projected columns: op-only.
  sql::DeleteStmt d1;
  d1.table = "parts";
  d1.where = Predicate::Where("id", CompareOp::kLt, Value::Int64(5));
  EXPECT_EQ(maintainer_->Analyze(sql::Statement(d1)),
            Maintainability::kOpOnly);
  // DELETE on a non-projected column: needs before images.
  sql::DeleteStmt d2;
  d2.table = "parts";
  d2.where =
      Predicate::Where("payload", CompareOp::kEq, Value::String("x"));
  EXPECT_EQ(maintainer_->Analyze(sql::Statement(d2)),
            Maintainability::kNeedsBeforeImage);
  // UPDATE touching a selection column: membership may change.
  EXPECT_EQ(maintainer_->Analyze(wl_.MakeUpdate("parts", 0, 1, "retired")),
            Maintainability::kNeedsBeforeImage);
  // UPDATE of a non-selection, projected-where statement: op-only.
  sql::UpdateStmt u;
  u.table = "parts";
  u.sets = {engine::Assignment{"payload", Value::String("pp")}};
  u.where = Predicate::Where("id", CompareOp::kEq, Value::Int64(1));
  EXPECT_EQ(maintainer_->Analyze(sql::Statement(u)),
            Maintainability::kOpOnly);
}

TEST_F(ViewTest, InsertMaintainsSelectionAndProjection) {
  OPDELTA_ASSERT_OK(RunAndMaintain({wl_.MakeInsert("parts", 0, 5)}));
  Result<std::vector<Row>> rows = maintainer_->Materialized();
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 5u);
  EXPECT_EQ((*rows)[0].size(), 2u);  // projected
  EXPECT_TRUE(ViewMatchesRecompute());
}

TEST_F(ViewTest, InsertFilteredBySelection) {
  sql::InsertStmt ins;
  ins.table = "parts";
  ins.rows.push_back({Value::Int64(1), Value::String("retired"),
                      Value::String("p"), Value::Timestamp(0)});
  ins.rows.push_back({Value::Int64(2), Value::String("active"),
                      Value::String("p"), Value::Timestamp(0)});
  OPDELTA_ASSERT_OK(RunAndMaintain({sql::Statement(ins)}));
  Result<std::vector<Row>> rows = maintainer_->Materialized();
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);  // retired row filtered out
  EXPECT_EQ((*rows)[0][0].AsInt64(), 2);
  EXPECT_TRUE(ViewMatchesRecompute());
}

TEST_F(ViewTest, OpOnlyDeleteAndUpdate) {
  OPDELTA_ASSERT_OK(RunAndMaintain({wl_.MakeInsert("parts", 0, 10)}));
  OPDELTA_ASSERT_OK(RunAndMaintain({wl_.MakeDelete("parts", 0, 3)}));
  EXPECT_TRUE(ViewMatchesRecompute());
  // status is projected AND a selection column — but setting it to a value
  // that keeps rows in the view still needs before images per our analysis;
  // use an id-based op-only update on a projected non-selection column.
  sql::UpdateStmt u;
  u.table = "parts";
  u.sets = {engine::Assignment{"payload", Value::String("zz")}};
  u.where = Predicate::Where("id", CompareOp::kGe, Value::Int64(5));
  OPDELTA_ASSERT_OK(RunAndMaintain({sql::Statement(u)}));
  EXPECT_TRUE(ViewMatchesRecompute());
}

TEST_F(ViewTest, MembershipTransitionsViaBeforeImages) {
  OPDELTA_ASSERT_OK(RunAndMaintain({wl_.MakeInsert("parts", 0, 10)}));
  // Retire rows 0..4: they leave the view (selection column updated).
  OPDELTA_ASSERT_OK(RunAndMaintain({wl_.MakeUpdate("parts", 0, 5, "retired")}));
  EXPECT_TRUE(ViewMatchesRecompute());
  Result<std::vector<Row>> rows = maintainer_->Materialized();
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 5u);

  // Re-activate rows 0..2: they re-enter with current values.
  OPDELTA_ASSERT_OK(RunAndMaintain({wl_.MakeUpdate("parts", 0, 3, "active")}));
  EXPECT_TRUE(ViewMatchesRecompute());
  rows = maintainer_->Materialized();
  EXPECT_EQ(rows->size(), 8u);
}

TEST_F(ViewTest, NeedsBeforeImageFailsWithoutHybridCapture) {
  // Capture WITHOUT hybrid mode, then try a membership-changing update.
  Result<std::unique_ptr<extract::OpDeltaFileSink>> sink =
      extract::OpDeltaFileSink::Create(dir_.Sub("plain.log"));
  ASSERT_TRUE(sink.ok());
  extract::OpDeltaCapture plain(
      exec_.get(), std::shared_ptr<extract::OpDeltaSink>(std::move(*sink)),
      extract::OpDeltaCapture::Options());

  OPDELTA_ASSERT_OK(plain.RunTransaction({wl_.MakeInsert("parts", 0, 3)})
                        .status());
  OPDELTA_ASSERT_OK(
      plain.RunTransaction({wl_.MakeUpdate("parts", 0, 2, "retired")})
          .status());
  std::vector<OpDeltaTxn> txns;
  OPDELTA_ASSERT_OK(extract::OpDeltaLogReader::ReadFile(
      dir_.Sub("plain.log"), workload::PartsWorkload::Schema(), &txns));
  OPDELTA_ASSERT_OK(maintainer_->ApplyTxn(txns[0]));  // insert: op-only
  Status st = maintainer_->ApplyTxn(txns[1]);
  EXPECT_EQ(st.code(), StatusCode::kNotSupported);
}

TEST_F(ViewTest, RandomizedMaintenanceMatchesRecompute) {
  Rng rng(77);
  int64_t next_id = 0;
  OPDELTA_ASSERT_OK(RunAndMaintain({wl_.MakeInsert("parts", 0, 30)}));
  next_id = 30;
  const char* statuses[] = {"active", "retired", "hold"};
  for (int i = 0; i < 25; ++i) {
    std::vector<sql::Statement> stmts;
    switch (rng.Uniform(3)) {
      case 0: {
        size_t n = 1 + rng.Uniform(8);
        stmts.push_back(wl_.MakeInsert("parts", next_id, n));
        next_id += static_cast<int64_t>(n);
        break;
      }
      case 1: {
        int64_t lo = rng.Uniform(next_id);
        stmts.push_back(wl_.MakeUpdate("parts", lo, lo + 1 + rng.Uniform(10),
                                       statuses[rng.Uniform(3)]));
        break;
      }
      default: {
        int64_t lo = rng.Uniform(next_id);
        stmts.push_back(wl_.MakeDelete("parts", lo, lo + 1 + rng.Uniform(6)));
        break;
      }
    }
    OPDELTA_ASSERT_OK(RunAndMaintain(stmts));
    ASSERT_TRUE(ViewMatchesRecompute()) << "after step " << i;
  }
}

TEST(ViewValidationTest, RequiresKeyProjection) {
  TempDir dir;
  engine::DatabaseOptions options;
  auto wh = OpenDb(dir, "wh", options);
  ViewDef def;
  def.view_table = "v";
  def.source_table = "parts";
  def.projection = {{"status", "s"}};  // key column missing
  Result<std::unique_ptr<ViewMaintainer>> vm = ViewMaintainer::CreateViewTable(
      wh.get(), def, workload::PartsWorkload::Schema());
  EXPECT_FALSE(vm.ok());
}

TEST(ViewValidationTest, RejectsUnknownColumns) {
  TempDir dir;
  auto wh = OpenDb(dir, "wh");
  ViewDef def;
  def.view_table = "v";
  def.source_table = "parts";
  def.projection = {{"id", "id"}, {"ghost", "g"}};
  EXPECT_FALSE(ViewMaintainer::CreateViewTable(
                   wh.get(), def, workload::PartsWorkload::Schema())
                   .ok());
}

// --------------------------------------------------------------- ApplyLedger

extract::BatchId Bid(const std::string& source, uint64_t epoch, uint64_t seq) {
  extract::BatchId id;
  id.source_id = source;
  id.epoch = epoch;
  id.seq = seq;
  return id;
}

class ApplyLedgerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wh_ = OpenDb(dir_, "wh");
    ledger_ = std::make_unique<ApplyLedger>(wh_.get());
    OPDELTA_ASSERT_OK(ledger_->Setup());
  }

  /// Applies `id` through `txns` source transactions in one warehouse txn.
  Status Apply(const extract::BatchId& id, uint64_t txns) {
    return wh_->WithTransaction([&](txn::Transaction* txn) {
      return ledger_->Advance(txn, id, txns);
    });
  }

  ApplyLedger::Admission Admit(const extract::BatchId& id, uint64_t txns) {
    Result<ApplyLedger::Admission> a = ledger_->Admit(id, txns);
    EXPECT_TRUE(a.ok()) << a.status().ToString();
    return a.ok() ? a.value() : ApplyLedger::Admission{};
  }

  TempDir dir_;
  std::unique_ptr<engine::Database> wh_;
  std::unique_ptr<ApplyLedger> ledger_;
};

using Decision = ApplyLedger::Decision;

TEST_F(ApplyLedgerTest, SetupIsIdempotentAndUnknownSourceHasNoWatermark) {
  OPDELTA_ASSERT_OK(ledger_->Setup());
  OPDELTA_ASSERT_OK(ledger_->Setup());
  Result<ApplyLedger::Watermark> w = ledger_->Get("never-seen");
  OPDELTA_ASSERT_OK(w.status());
  EXPECT_FALSE(w.value().exists);
  EXPECT_EQ(Admit(Bid("never-seen", 1, 1), 3).decision, Decision::kFresh);
}

TEST_F(ApplyLedgerTest, FreshThenDuplicateThenResume) {
  const extract::BatchId b1 = Bid("s1", 1, 1);
  EXPECT_EQ(Admit(b1, 2).decision, Decision::kFresh);
  OPDELTA_ASSERT_OK(Apply(b1, 2));

  // Fully-applied batch redelivered: dropped.
  EXPECT_EQ(Admit(b1, 2).decision, Decision::kDuplicate);

  // Next batch applied only through txn 1 of 3 (crash mid-batch): the
  // redelivery resumes past the applied prefix instead of repeating it.
  const extract::BatchId b2 = Bid("s1", 1, 2);
  OPDELTA_ASSERT_OK(Apply(b2, 1));
  ApplyLedger::Admission a = Admit(b2, 3);
  EXPECT_EQ(a.decision, Decision::kResume);
  EXPECT_EQ(a.skip_txns, 1u);

  // Anything at or below the watermark is a duplicate; above it is fresh.
  EXPECT_EQ(Admit(b1, 2).decision, Decision::kDuplicate);
  EXPECT_EQ(Admit(Bid("s1", 1, 3), 1).decision, Decision::kFresh);
  EXPECT_EQ(Admit(Bid("s1", 2, 1), 1).decision, Decision::kFresh);
  // Other sources are independent.
  EXPECT_EQ(Admit(Bid("s2", 1, 1), 1).decision, Decision::kFresh);
}

TEST_F(ApplyLedgerTest, RolledBackAdvanceLeavesNoProgress) {
  const extract::BatchId id = Bid("s1", 1, 1);
  Status st = wh_->WithTransaction([&](txn::Transaction* txn) -> Status {
    OPDELTA_RETURN_IF_ERROR(ledger_->Advance(txn, id, 5));
    return Status::IOError("simulated apply failure after Advance");
  });
  EXPECT_FALSE(st.ok());
  Result<ApplyLedger::Watermark> w = ledger_->Get("s1");
  OPDELTA_ASSERT_OK(w.status());
  EXPECT_FALSE(w.value().exists);
  EXPECT_EQ(Admit(id, 5).decision, Decision::kFresh);
}

TEST_F(ApplyLedgerTest, HoleAdmitsOperatorReplayBelowWatermark) {
  // Batch 2 is dead-lettered past after 1 of its 3 txns; batch 3 applies.
  const extract::BatchId b2 = Bid("s1", 1, 2);
  OPDELTA_ASSERT_OK(Apply(b2, 1));
  OPDELTA_ASSERT_OK(ledger_->RecordSkip(b2));
  OPDELTA_ASSERT_OK(Apply(Bid("s1", 1, 3), 2));

  // An operator replay of b2 lands below the watermark but is admitted,
  // resuming past the prefix captured in the hole.
  ApplyLedger::Admission a = Admit(b2, 3);
  EXPECT_EQ(a.decision, Decision::kResume);
  EXPECT_EQ(a.skip_txns, 1u);

  // Completing the replay clears the hole: a second replay is a duplicate.
  OPDELTA_ASSERT_OK(Apply(b2, 3));
  EXPECT_EQ(Admit(b2, 3).decision, Decision::kDuplicate);
  // A batch never skipped stays a duplicate below the watermark.
  EXPECT_EQ(Admit(Bid("s1", 1, 1), 1).decision, Decision::kDuplicate);
}

TEST_F(ApplyLedgerTest, CompactPrunesSupersededRowsOnly) {
  for (uint64_t seq = 1; seq <= 5; ++seq) {
    OPDELTA_ASSERT_OK(Apply(Bid("s1", 1, seq), 1));
  }
  OPDELTA_ASSERT_OK(Apply(Bid("s2", 1, 1), 1));
  const extract::BatchId skipped = Bid("s2", 1, 2);
  OPDELTA_ASSERT_OK(ledger_->RecordSkip(skipped));
  OPDELTA_ASSERT_OK(Apply(Bid("s2", 1, 3), 1));

  uint64_t removed = 0;
  OPDELTA_ASSERT_OK(ledger_->Compact(&removed));
  // s1 had 4 superseded watermarks, s2 had 1; the hole is never compacted.
  EXPECT_EQ(removed, 5u);
  EXPECT_EQ(CountRows(wh_.get(), ledger_->table()), 3u);

  Result<ApplyLedger::Watermark> w1 = ledger_->Get("s1");
  OPDELTA_ASSERT_OK(w1.status());
  EXPECT_TRUE(w1.value().exists);
  EXPECT_EQ(w1.value().seq, 5u);
  EXPECT_EQ(Admit(Bid("s1", 1, 5), 1).decision, Decision::kDuplicate);
  // The s2 hole still admits its replay after compaction.
  EXPECT_EQ(Admit(skipped, 1).decision, Decision::kResume);

  // Compacting a compacted ledger removes nothing.
  OPDELTA_ASSERT_OK(ledger_->Compact(&removed));
  EXPECT_EQ(removed, 0u);
}

TEST_F(ApplyLedgerTest, InvalidIdentityBypassesDeduplication) {
  extract::BatchId anon;  // legacy frame: no identity stamped
  ASSERT_FALSE(anon.valid());
  EXPECT_EQ(Admit(anon, 1).decision, Decision::kFresh);
  OPDELTA_ASSERT_OK(Apply(anon, 1));
  // No watermark row is written for identity-less batches...
  EXPECT_EQ(CountRows(wh_.get(), ledger_->table()), 0u);
  // ...so a redelivery is (by design) applied again.
  EXPECT_EQ(Admit(anon, 1).decision, Decision::kFresh);
}

}  // namespace
}  // namespace opdelta::warehouse
