// Randomized model checking for the engine: a reference std::map mirrors
// every committed change, aborted transactions must leave no trace, and
// the table must equal the model after every step — with and without a
// secondary index (exercising both access paths).
#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "engine/database.h"
#include "workload/workload.h"
#include "tests/test_util.h"

namespace opdelta::engine {
namespace {

using catalog::Row;
using catalog::Value;
using opdelta::testing::OpenDb;
using opdelta::testing::TempDir;

struct ModelParams {
  uint64_t seed;
  bool with_index;
  int steps;
};

class EngineModelTest : public ::testing::TestWithParam<ModelParams> {};

TEST_P(EngineModelTest, MatchesReferenceModel) {
  const ModelParams params = GetParam();
  TempDir dir;
  engine::DatabaseOptions options;
  options.auto_timestamp = false;  // keep rows deterministic
  auto db = OpenDb(dir, "db", options);
  workload::PartsWorkload wl(
      workload::PartsWorkload::Options{100, params.seed});
  OPDELTA_ASSERT_OK(wl.CreateTable(db.get(), "parts"));
  if (params.with_index) {
    OPDELTA_ASSERT_OK(db->CreateIndex("parts", "id"));
  }

  Rng rng(params.seed);
  std::map<int64_t, Row> model;
  int64_t next_id = 0;

  auto check = [&]() {
    auto contents = opdelta::testing::TableContents(db.get(), "parts");
    ASSERT_EQ(contents.size(), model.size());
    for (const auto& [id, row] : model) {
      auto it = contents.find(Value::Int64(id));
      ASSERT_NE(it, contents.end()) << "missing id " << id;
      ASSERT_EQ(catalog::CompareRows(row, it->second), 0) << "id " << id;
    }
  };

  for (int step = 0; step < params.steps; ++step) {
    const bool abort = rng.OneIn(5);
    auto txn = db->Begin();
    // Stage model mutations; only merge them on commit.
    std::map<int64_t, Row> staged = model;
    Status st;

    switch (rng.Uniform(3)) {
      case 0: {  // insert a few fresh rows
        const size_t n = 1 + rng.Uniform(8);
        for (size_t i = 0; i < n && st.ok(); ++i) {
          Row row = wl.MakeRow(next_id);
          st = db->Insert(txn.get(), "parts", row);
          staged[next_id] = row;
          ++next_id;
        }
        break;
      }
      case 1: {  // ranged update of status
        const int64_t lo = rng.Uniform(std::max<int64_t>(next_id, 1));
        const int64_t hi = lo + 1 + rng.Uniform(12);
        const std::string status = "s" + std::to_string(step);
        st = db->UpdateWhere(
                   txn.get(), "parts",
                   Predicate::Where("id", CompareOp::kGe, Value::Int64(lo))
                       .And("id", CompareOp::kLt, Value::Int64(hi)),
                   {Assignment{"status", Value::String(status)}})
                 .status();
        for (auto& [id, row] : staged) {
          if (id >= lo && id < hi) row[1] = Value::String(status);
        }
        break;
      }
      default: {  // ranged delete
        const int64_t lo = rng.Uniform(std::max<int64_t>(next_id, 1));
        const int64_t hi = lo + 1 + rng.Uniform(6);
        st = db->DeleteWhere(
                   txn.get(), "parts",
                   Predicate::Where("id", CompareOp::kGe, Value::Int64(lo))
                       .And("id", CompareOp::kLt, Value::Int64(hi)))
                 .status();
        for (auto it = staged.lower_bound(lo);
             it != staged.end() && it->first < hi;) {
          it = staged.erase(it);
        }
        break;
      }
    }
    ASSERT_TRUE(st.ok()) << st.ToString();

    if (abort) {
      OPDELTA_ASSERT_OK(db->Abort(txn.get()));
      // Model unchanged; the engine must have rolled everything back.
    } else {
      OPDELTA_ASSERT_OK(db->Commit(txn.get()));
      model = std::move(staged);
    }
    ASSERT_NO_FATAL_FAILURE(check()) << "step " << step
                                     << (abort ? " (aborted)" : "");
  }

  // Closing + reopening must preserve the final state exactly.
  OPDELTA_ASSERT_OK(db->Close());
  auto reopened = OpenDb(dir, "db", options);
  auto contents = opdelta::testing::TableContents(reopened.get(), "parts");
  EXPECT_EQ(contents.size(), model.size());
}

INSTANTIATE_TEST_SUITE_P(
    Runs, EngineModelTest,
    ::testing::Values(ModelParams{101, false, 120},
                      ModelParams{102, true, 120},
                      ModelParams{103, false, 300},
                      ModelParams{104, true, 300}),
    [](const ::testing::TestParamInfo<ModelParams>& param_info) {
      return "seed" + std::to_string(param_info.param.seed) +
             (param_info.param.with_index ? "_indexed" : "_scan") + "_" +
             std::to_string(param_info.param.steps) + "steps";
    });

}  // namespace
}  // namespace opdelta::engine
