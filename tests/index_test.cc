#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/random.h"
#include "index/bplus_tree.h"
#include "tests/test_util.h"

namespace opdelta::index {
namespace {

using storage::Rid;

Rid MakeRid(uint32_t n) { return Rid{n, static_cast<uint16_t>(n % 7)}; }

TEST(BPlusTreeTest, EmptyTree) {
  BPlusTree tree;
  EXPECT_EQ(tree.size(), 0u);
  int visits = 0;
  tree.ScanAll([&](int64_t, const Rid&) {
    ++visits;
    return true;
  });
  EXPECT_EQ(visits, 0);
  OPDELTA_ASSERT_OK(tree.CheckInvariants());
}

TEST(BPlusTreeTest, InsertAndScanSorted) {
  BPlusTree tree;
  for (int64_t k : {5, 3, 9, 1, 7}) tree.Insert(k, MakeRid(k));
  std::vector<int64_t> keys;
  tree.ScanAll([&](int64_t k, const Rid&) {
    keys.push_back(k);
    return true;
  });
  EXPECT_EQ(keys, (std::vector<int64_t>{1, 3, 5, 7, 9}));
  OPDELTA_ASSERT_OK(tree.CheckInvariants());
}

TEST(BPlusTreeTest, RangeScanInclusive) {
  BPlusTree tree;
  for (int64_t k = 0; k < 100; ++k) tree.Insert(k, MakeRid(k));
  std::vector<int64_t> keys;
  tree.ScanRange(10, 20, [&](int64_t k, const Rid&) {
    keys.push_back(k);
    return true;
  });
  ASSERT_EQ(keys.size(), 11u);
  EXPECT_EQ(keys.front(), 10);
  EXPECT_EQ(keys.back(), 20);
}

TEST(BPlusTreeTest, RangeScanEmptyInterval) {
  BPlusTree tree;
  for (int64_t k = 0; k < 50; k += 10) tree.Insert(k, MakeRid(k));
  int visits = 0;
  tree.ScanRange(11, 19, [&](int64_t, const Rid&) {
    ++visits;
    return true;
  });
  EXPECT_EQ(visits, 0);
}

TEST(BPlusTreeTest, EarlyStopScan) {
  BPlusTree tree;
  for (int64_t k = 0; k < 100; ++k) tree.Insert(k, MakeRid(k));
  int visits = 0;
  tree.ScanAll([&](int64_t, const Rid&) { return ++visits < 5; });
  EXPECT_EQ(visits, 5);
}

TEST(BPlusTreeTest, DuplicateKeysAllRetained) {
  BPlusTree tree;
  for (uint32_t i = 0; i < 10; ++i) tree.Insert(42, MakeRid(i));
  int visits = 0;
  tree.ScanRange(42, 42, [&](int64_t, const Rid&) {
    ++visits;
    return true;
  });
  EXPECT_EQ(visits, 10);
  OPDELTA_ASSERT_OK(tree.CheckInvariants());
}

TEST(BPlusTreeTest, EraseExactPair) {
  BPlusTree tree;
  tree.Insert(1, MakeRid(10));
  tree.Insert(1, MakeRid(20));
  EXPECT_TRUE(tree.Erase(1, MakeRid(10)));
  EXPECT_FALSE(tree.Erase(1, MakeRid(10)));  // already gone
  EXPECT_FALSE(tree.Erase(2, MakeRid(20)));  // wrong key
  EXPECT_EQ(tree.size(), 1u);
  int visits = 0;
  tree.ScanRange(1, 1, [&](int64_t, const Rid& rid) {
    EXPECT_TRUE(rid == MakeRid(20));
    ++visits;
    return true;
  });
  EXPECT_EQ(visits, 1);
}

TEST(BPlusTreeTest, SplitsGrowHeight) {
  BPlusTree tree;
  EXPECT_EQ(tree.height(), 1u);
  for (int64_t k = 0; k < 10000; ++k) tree.Insert(k, MakeRid(k));
  EXPECT_GT(tree.height(), 1u);
  EXPECT_EQ(tree.size(), 10000u);
  OPDELTA_ASSERT_OK(tree.CheckInvariants());
}

TEST(BPlusTreeTest, DescendingInsertion) {
  BPlusTree tree;
  for (int64_t k = 5000; k > 0; --k) tree.Insert(k, MakeRid(k));
  OPDELTA_ASSERT_OK(tree.CheckInvariants());
  int64_t prev = -1;
  tree.ScanAll([&](int64_t k, const Rid&) {
    EXPECT_GT(k, prev);
    prev = k;
    return true;
  });
  EXPECT_EQ(prev, 5000);
}

TEST(BPlusTreeTest, NegativeAndExtremeKeys) {
  BPlusTree tree;
  const int64_t keys[] = {INT64_MIN, -1, 0, 1, INT64_MAX};
  for (int64_t k : keys) tree.Insert(k, MakeRid(1));
  std::vector<int64_t> seen;
  tree.ScanAll([&](int64_t k, const Rid&) {
    seen.push_back(k);
    return true;
  });
  EXPECT_EQ(seen, std::vector<int64_t>(std::begin(keys), std::end(keys)));
}

// Property test: random operations mirrored against std::multimap.
class BPlusTreePropertyTest
    : public ::testing::TestWithParam<std::pair<uint64_t, int>> {};

TEST_P(BPlusTreePropertyTest, MatchesReferenceModel) {
  const auto [seed, ops] = GetParam();
  Rng rng(seed);
  BPlusTree tree;
  std::multimap<int64_t, Rid> model;

  for (int i = 0; i < ops; ++i) {
    const uint64_t action = rng.Uniform(10);
    if (action < 7 || model.empty()) {
      int64_t key = static_cast<int64_t>(rng.Uniform(1000));
      Rid rid = MakeRid(static_cast<uint32_t>(rng.Uniform(100000)));
      tree.Insert(key, rid);
      model.emplace(key, rid);
    } else {
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      EXPECT_TRUE(tree.Erase(it->first, it->second));
      model.erase(it);
    }
  }

  EXPECT_EQ(tree.size(), model.size());
  OPDELTA_ASSERT_OK(tree.CheckInvariants());

  // Full-scan contents must match the model as multisets of (key, rid).
  using Entry = std::tuple<int64_t, uint32_t, uint16_t>;
  std::vector<Entry> got, want;
  tree.ScanAll([&](int64_t k, const Rid& rid) {
    got.emplace_back(k, rid.page_id, rid.slot);
    return true;
  });
  for (const auto& [k, rid] : model) {
    want.emplace_back(k, rid.page_id, rid.slot);
  }
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);

  // Random range scans must agree too.
  for (int trial = 0; trial < 20; ++trial) {
    int64_t lo = static_cast<int64_t>(rng.Uniform(1000));
    int64_t hi = lo + static_cast<int64_t>(rng.Uniform(200));
    size_t tree_count = 0;
    tree.ScanRange(lo, hi, [&](int64_t, const Rid&) {
      ++tree_count;
      return true;
    });
    size_t model_count = 0;
    for (auto it = model.lower_bound(lo);
         it != model.end() && it->first <= hi; ++it) {
      ++model_count;
    }
    EXPECT_EQ(tree_count, model_count) << "range [" << lo << "," << hi << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomOps, BPlusTreePropertyTest,
    ::testing::Values(std::make_pair(1ull, 500), std::make_pair(2ull, 2000),
                      std::make_pair(3ull, 8000), std::make_pair(4ull, 20000),
                      std::make_pair(5ull, 5000)));

}  // namespace
}  // namespace opdelta::index
