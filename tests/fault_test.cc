#include "common/fault_env.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "common/env.h"
#include "hub/delta_hub.h"
#include "pipeline/source_leg.h"
#include "sql/executor.h"
#include "storage/file_manager.h"
#include "storage/page.h"
#include "transport/persistent_queue.h"
#include "workload/workload.h"
#include "tests/test_util.h"

namespace opdelta {
namespace {

using opdelta::testing::OpenDb;
using opdelta::testing::TablesEqual;
using opdelta::testing::TempDir;
using OpKind = FaultInjectionEnv::OpKind;

engine::DatabaseOptions NoTimestampOptions() {
  engine::DatabaseOptions options;
  options.auto_timestamp = false;
  return options;
}

using opdelta::testing::CountRows;
using opdelta::testing::ScopedEnvOverride;

/// Randomized suites read their seed from OPDELTA_FAULT_SEED so CI can run
/// the same tests under a seed matrix; unset, they use the fixed default.
uint64_t FaultSeedFromEnv(uint64_t fallback) {
  const char* text = std::getenv("OPDELTA_FAULT_SEED");
  if (text == nullptr || *text == '\0') return fallback;
  return std::strtoull(text, nullptr, 10);
}

uint64_t FileSize(const std::string& path) {
  uint64_t size = 0;
  Status st = Env::Default()->GetFileSize(path, &size);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return size;
}

// ----------------------------------------------------- FaultInjectionEnv

TEST(FaultInjectionEnvTest, WriteFaultFailsCleanlyByDefault) {
  TempDir dir;
  FaultInjectionEnv fenv(Env::Default());
  fenv.SetErrorProbability(OpKind::kWrite, 1.0);

  std::unique_ptr<WritableFile> file;
  OPDELTA_ASSERT_OK(fenv.NewWritableFile(dir.Sub("f"), &file));
  Status st = file->Append(Slice("payload"));
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_NE(st.message().find("injected write fault"), std::string::npos);
  OPDELTA_ASSERT_OK(file->Close());
  // Clean failure: nothing reached the file.
  EXPECT_EQ(FileSize(dir.Sub("f")), 0u);
  EXPECT_GE(fenv.faults_injected(), 1u);
}

TEST(FaultInjectionEnvTest, ShortWritePersistsStrictPrefix) {
  TempDir dir;
  FaultInjectionEnv fenv(Env::Default(), /*seed=*/3);
  fenv.SetErrorProbability(OpKind::kWrite, 1.0);
  fenv.SetShortWriteProbability(1.0);

  std::unique_ptr<WritableFile> file;
  OPDELTA_ASSERT_OK(fenv.NewWritableFile(dir.Sub("f"), &file));
  const std::string payload(1000, 'a');
  EXPECT_FALSE(file->Append(Slice(payload)).ok());
  OPDELTA_ASSERT_OK(file->Close());
  // A torn append persists a strict prefix, never the whole payload.
  EXPECT_LT(FileSize(dir.Sub("f")), payload.size());
}

TEST(FaultInjectionEnvTest, SyncAndRenameAndOpenFaultsInjected) {
  TempDir dir;
  FaultInjectionEnv fenv(Env::Default());

  fenv.SetErrorProbability(OpKind::kSync, 1.0);
  std::unique_ptr<WritableFile> file;
  OPDELTA_ASSERT_OK(fenv.NewWritableFile(dir.Sub("f"), &file));
  OPDELTA_ASSERT_OK(file->Append(Slice("x")));
  EXPECT_TRUE(file->Sync().IsIOError());
  OPDELTA_ASSERT_OK(file->Close());
  fenv.ClearFaults();

  fenv.SetErrorProbability(OpKind::kRename, 1.0);
  EXPECT_TRUE(fenv.RenameFile(dir.Sub("f"), dir.Sub("g")).IsIOError());
  EXPECT_TRUE(fenv.FileExists(dir.Sub("f")));  // rename had no effect
  fenv.ClearFaults();

  fenv.SetErrorProbability(OpKind::kOpen, 1.0);
  std::unique_ptr<WritableFile> blocked;
  EXPECT_TRUE(fenv.NewWritableFile(dir.Sub("h"), &blocked).IsIOError());
}

TEST(FaultInjectionEnvTest, ScopeConfinesFaults) {
  TempDir dir;
  OPDELTA_ASSERT_OK(Env::Default()->CreateDir(dir.Sub("scoped")));
  FaultInjectionEnv fenv(Env::Default());
  fenv.SetScope(dir.Sub("scoped"));
  fenv.SetErrorProbability(OpKind::kWrite, 1.0);

  std::unique_ptr<WritableFile> outside;
  OPDELTA_ASSERT_OK(fenv.NewWritableFile(dir.Sub("outside"), &outside));
  OPDELTA_ASSERT_OK(outside->Append(Slice("ok")));  // out of scope: clean
  OPDELTA_ASSERT_OK(outside->Close());

  std::unique_ptr<WritableFile> inside;
  OPDELTA_ASSERT_OK(fenv.NewWritableFile(dir.Sub("scoped") + "/f", &inside));
  EXPECT_TRUE(inside->Append(Slice("boom")).IsIOError());
  OPDELTA_ASSERT_OK(inside->Close());
}

TEST(FaultInjectionEnvTest, FailAllOpsAfterActsLikeADeadDisk) {
  TempDir dir;
  FaultInjectionEnv fenv(Env::Default());
  fenv.FailAllOpsAfter(2);  // open + first append succeed

  std::unique_ptr<WritableFile> file;
  OPDELTA_ASSERT_OK(fenv.NewWritableFile(dir.Sub("f"), &file));  // 1st op
  OPDELTA_ASSERT_OK(file->Append(Slice("first")));               // 2nd op
  EXPECT_FALSE(file->Append(Slice("second")).ok());              // crossed
  EXPECT_FALSE(file->Sync().ok());
  OPDELTA_ASSERT_OK(file->Close());
  EXPECT_FALSE(fenv.RenameFile(dir.Sub("f"), dir.Sub("g")).ok());
  EXPECT_EQ(fenv.mutations(), 5u);
  EXPECT_EQ(FileSize(dir.Sub("f")), 5u);  // only "first" landed
}

TEST(FaultInjectionEnvTest, CrashDropsExactlyTheUnsyncedBytes) {
  TempDir dir;
  FaultInjectionEnv fenv(Env::Default());

  std::unique_ptr<WritableFile> file;
  OPDELTA_ASSERT_OK(fenv.NewWritableFile(dir.Sub("f"), &file));
  OPDELTA_ASSERT_OK(file->Append(Slice(std::string(100, 's'))));
  OPDELTA_ASSERT_OK(file->Sync());
  OPDELTA_ASSERT_OK(file->Append(Slice(std::string(60, 'u'))));
  OPDELTA_ASSERT_OK(file->Close());
  ASSERT_EQ(FileSize(dir.Sub("f")), 160u);

  OPDELTA_ASSERT_OK(fenv.CrashAndDropUnsynced(/*torn_tails=*/false));
  EXPECT_EQ(FileSize(dir.Sub("f")), 100u);  // synced bytes survive exactly
}

TEST(FaultInjectionEnvTest, CrashWithTornTailsKeepsPrefixOfUnsynced) {
  TempDir dir;
  FaultInjectionEnv fenv(Env::Default(), /*seed=*/11);

  std::unique_ptr<WritableFile> file;
  OPDELTA_ASSERT_OK(fenv.NewWritableFile(dir.Sub("f"), &file));
  OPDELTA_ASSERT_OK(file->Append(Slice(std::string(100, 's'))));
  OPDELTA_ASSERT_OK(file->Sync());
  OPDELTA_ASSERT_OK(file->Append(Slice(std::string(60, 'u'))));
  OPDELTA_ASSERT_OK(file->Close());

  OPDELTA_ASSERT_OK(fenv.CrashAndDropUnsynced(/*torn_tails=*/true));
  const uint64_t size = FileSize(dir.Sub("f"));
  EXPECT_GE(size, 100u);  // durable bytes always survive
  EXPECT_LE(size, 160u);  // plus at most the unsynced tail
}

// ------------------------------------------------- FileManager page I/O

TEST(FileManagerFaultTest, PageIoRoutesThroughEnv) {
  TempDir dir;
  FaultInjectionEnv fenv(Env::Default());
  ScopedEnvOverride scoped(&fenv);

  storage::FileManager fm;
  OPDELTA_ASSERT_OK(fm.Open(dir.Sub("pages.db")));
  storage::PageId id = 0;
  OPDELTA_ASSERT_OK(fm.AllocatePage(&id));
  char page[storage::kPageSize];
  std::memset(page, 'A', sizeof(page));
  OPDELTA_ASSERT_OK(fm.WritePage(id, page));
  OPDELTA_ASSERT_OK(fm.Sync());
  EXPECT_GT(fenv.mutations(), 0u);  // the env saw the page traffic

  fenv.SetErrorProbability(OpKind::kRead, 1.0);
  char out[storage::kPageSize];
  EXPECT_TRUE(fm.ReadPage(id, out).IsIOError());
  fenv.ClearFaults();
  OPDELTA_ASSERT_OK(fm.ReadPage(id, out));
  EXPECT_EQ(out[0], 'A');
  EXPECT_EQ(out[storage::kPageSize - 1], 'A');
  OPDELTA_ASSERT_OK(fm.Close());
}

TEST(FileManagerFaultTest, DeadDiskMidPageWriteLeavesTornPage) {
  TempDir dir;
  FaultInjectionEnv fenv(Env::Default(), /*seed=*/FaultSeedFromEnv(23));
  fenv.SetShortWriteProbability(1.0);
  ScopedEnvOverride scoped(&fenv);

  storage::FileManager fm;
  OPDELTA_ASSERT_OK(fm.Open(dir.Sub("pages.db")));
  storage::PageId id = 0;
  OPDELTA_ASSERT_OK(fm.AllocatePage(&id));
  char page[storage::kPageSize];
  std::memset(page, 'A', sizeof(page));
  OPDELTA_ASSERT_OK(fm.WritePage(id, page));
  OPDELTA_ASSERT_OK(fm.Sync());

  // The disk dies during the next page write: overwriting with 'B' tears
  // mid-page, and every operation after the crash point fails outright.
  fenv.FailAllOpsAfter(0);
  std::memset(page, 'B', sizeof(page));
  EXPECT_TRUE(fm.WritePage(id, page).IsIOError());
  EXPECT_FALSE(fm.Sync().ok());
  storage::PageId id2 = 0;
  EXPECT_FALSE(fm.AllocatePage(&id2).ok());
  OPDELTA_ASSERT_OK(fm.Close());

  // Recovery sees the torn page: some prefix of 'B' bytes (possibly empty,
  // never the whole page) followed by the old 'A' bytes — and no change in
  // the page count, because the failed AllocatePage never extended the file.
  fenv.ClearFaults();
  storage::FileManager reopened;
  OPDELTA_ASSERT_OK(reopened.Open(dir.Sub("pages.db")));
  EXPECT_EQ(reopened.num_pages(), 1u);
  char out[storage::kPageSize];
  OPDELTA_ASSERT_OK(reopened.ReadPage(id, out));
  size_t flip = 0;
  while (flip < storage::kPageSize && out[flip] == 'B') ++flip;
  EXPECT_LT(flip, storage::kPageSize);  // a torn write is a strict prefix
  for (size_t i = flip; i < storage::kPageSize; ++i) {
    ASSERT_EQ(out[i], 'A') << "mixed bytes after the torn prefix at " << i;
  }
  OPDELTA_ASSERT_OK(reopened.Close());
}

// -------------------------------------------------------- WriteFileAtomic

TEST(WriteFileAtomicTest, ContentsSurviveACrashRightAfterTheWrite) {
  // Regression for the missing temp-file Sync: rename orders the directory
  // entry, not the data, so an unsynced temp could surface as a torn file
  // after a crash even though the rename "committed" it.
  TempDir dir;
  FaultInjectionEnv fenv(Env::Default(), /*seed=*/5);
  const std::string path = dir.Sub("state");

  OPDELTA_ASSERT_OK(WriteFileAtomic(&fenv, path, Slice("generation-1")));
  OPDELTA_ASSERT_OK(fenv.CrashAndDropUnsynced(/*torn_tails=*/true));
  std::string data;
  OPDELTA_ASSERT_OK(Env::Default()->ReadFileToString(path, &data));
  EXPECT_EQ(data, "generation-1");
}

TEST(WriteFileAtomicTest, FailedRewriteLeavesOldContentsIntact) {
  TempDir dir;
  FaultInjectionEnv fenv(Env::Default());
  const std::string path = dir.Sub("state");
  OPDELTA_ASSERT_OK(WriteFileAtomic(&fenv, path, Slice("generation-1")));

  // Whichever op fails — write, sync, or rename — the visible file must
  // still hold the previous generation.
  for (OpKind kind : {OpKind::kWrite, OpKind::kSync, OpKind::kRename}) {
    fenv.ClearFaults();
    fenv.SetErrorProbability(kind, 1.0);
    EXPECT_FALSE(WriteFileAtomic(&fenv, path, Slice("generation-2")).ok());
    std::string data;
    OPDELTA_ASSERT_OK(Env::Default()->ReadFileToString(path, &data));
    EXPECT_EQ(data, "generation-1");
  }
}

// ----------------------------------------------------------- kTruncate site

TEST(FaultInjectionEnvTest, TruncateFaultSurfacesDuringTornTailRepair) {
  // Torn-tail repair at queue open is itself a Truncate; when the repair
  // write fails too, the open must surface the error instead of serving a
  // queue with a corrupt tail.
  TempDir dir;
  OPDELTA_ASSERT_OK(Env::Default()->CreateDir(dir.Sub("q")));
  {
    transport::PersistentQueue queue;
    OPDELTA_ASSERT_OK(queue.Open(dir.Sub("q")));
    OPDELTA_ASSERT_OK(queue.Enqueue(Slice("whole message"), /*durable=*/true));
    OPDELTA_ASSERT_OK(queue.Close());
  }
  {  // Tear the tail, as a crash mid-append would.
    std::unique_ptr<WritableFile> log;
    OPDELTA_ASSERT_OK(
        Env::Default()->NewAppendableFile(dir.Sub("q") + "/queue.log", &log));
    const std::string torn("\x40\x00\x00\x00torn", 8);  // len=64, no payload
    OPDELTA_ASSERT_OK(log->Append(Slice(torn)));
    OPDELTA_ASSERT_OK(log->Close());
  }

  FaultInjectionEnv fenv(Env::Default());
  fenv.SetErrorProbability(OpKind::kTruncate, 1.0);
  ScopedEnvOverride guard(&fenv);
  {
    transport::PersistentQueue queue;
    Status st = queue.Open(dir.Sub("q"));
    EXPECT_TRUE(st.IsIOError()) << st.ToString();
    EXPECT_NE(st.message().find("injected truncate fault"),
              std::string::npos)
        << st.ToString();
  }

  // Regression: Truncate used to roll the kDelete dice, so delete faults
  // broke the repair path. They must not any more.
  fenv.ClearFaults();
  fenv.SetErrorProbability(OpKind::kDelete, 1.0);
  transport::PersistentQueue queue;
  OPDELTA_ASSERT_OK(queue.Open(dir.Sub("q")));
  Result<uint64_t> backlog = queue.Backlog();
  ASSERT_TRUE(backlog.ok());
  EXPECT_EQ(*backlog, 1u);  // the whole frame survived the repair
  std::string message;
  OPDELTA_ASSERT_OK(queue.Peek(&message));
  EXPECT_EQ(message, "whole message");
  OPDELTA_ASSERT_OK(queue.Close());
}

// -------------------------------------------------------- hub self-healing

/// Three independent kLog sources feeding three warehouse tables; the
/// "bad" source's hub-side files can be failed via a scoped fault env.
class SelfHealingHubTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* name : {"good1", "good2", "bad"}) {
      dbs_[name] = OpenDb(dir_, name, NoTimestampOptions());
      OPDELTA_ASSERT_OK(wl_.CreateTable(dbs_[name].get(), "parts"));
    }
    wh_ = OpenDb(dir_, "wh", NoTimestampOptions());
    for (const char* table : {"parts_good1", "parts_good2", "parts_bad"}) {
      OPDELTA_ASSERT_OK(
          wh_->CreateTable(table, workload::PartsWorkload::Schema()));
    }
  }

  Result<std::unique_ptr<hub::DeltaHub>> MakeHub(hub::HubOptions options) {
    options.work_dir = WorkDir();
    OPDELTA_ASSIGN_OR_RETURN(std::unique_ptr<hub::DeltaHub> hub,
                             hub::DeltaHub::Create(wh_.get(), options));
    for (const char* name : {"good1", "good2", "bad"}) {
      hub::SourceSpec spec;
      spec.name = name;
      spec.source = dbs_[name].get();
      spec.method = pipeline::Method::kLog;
      spec.source_table = "parts";
      spec.warehouse_table = std::string("parts_") + name;
      OPDELTA_RETURN_IF_ERROR(hub->AddSource(spec));
    }
    OPDELTA_RETURN_IF_ERROR(hub->Setup());
    return hub;
  }

  std::string WorkDir() const { return dir_.Sub("hubw"); }

  void Insert(const std::string& name, int64_t base, int64_t n) {
    sql::Executor exec(dbs_[name].get());
    Status st =
        exec.ExecuteSql(wl_.MakeInsert("parts", base, n).ToSql()).status();
    OPDELTA_ASSERT_OK(st);
  }

  const hub::SourceStats& StatsFor(const hub::HubStats& stats,
                                   const std::string& name) {
    for (const hub::SourceStats& s : stats.sources) {
      if (s.name == name) return s;
    }
    ADD_FAILURE() << "no stats for " << name;
    static hub::SourceStats empty;
    return empty;
  }

  TempDir dir_;
  workload::PartsWorkload wl_;
  std::map<std::string, std::unique_ptr<engine::Database>> dbs_;
  std::unique_ptr<engine::Database> wh_;
};

TEST_F(SelfHealingHubTest, FailingSourceIsQuarantinedWhileOthersFlow) {
  FaultInjectionEnv fenv(Env::Default());
  fenv.SetScope(WorkDir() + "/bad");  // only the bad source's hub files
  fenv.SetErrorProbability(OpKind::kWrite, 1.0);
  ScopedEnvOverride guard(&fenv);

  hub::HubOptions options;
  options.produce_attempts = 2;
  options.backoff_initial = std::chrono::milliseconds(1);
  options.backoff_max = std::chrono::milliseconds(8);
  options.quarantine_after = 2;
  Result<std::unique_ptr<hub::DeltaHub>> hub = MakeHub(options);
  ASSERT_TRUE(hub.ok()) << hub.status().ToString();

  constexpr int kRounds = 5;
  for (int round = 0; round < kRounds; ++round) {
    for (const char* name : {"good1", "good2", "bad"}) {
      Insert(name, round * 10, 10);
    }
    // Failing rounds report the bad source's error; after quarantine the
    // source is skipped and the round is clean.
    (void)(*hub)->RunRound();
  }

  hub::HubStats stats = (*hub)->Stats();
  const hub::SourceStats& bad = StatsFor(stats, "bad");
  EXPECT_TRUE(bad.quarantined);
  EXPECT_GT(bad.errors, 0u);
  EXPECT_GT(bad.retries, 0u);
  EXPECT_EQ(bad.batches_applied, 0u);
  EXPECT_NE(bad.last_error.find("injected write fault"), std::string::npos)
      << bad.last_error;
  for (const char* name : {"good1", "good2"}) {
    const hub::SourceStats& good = StatsFor(stats, name);
    EXPECT_EQ(good.batches_applied, static_cast<uint64_t>(kRounds)) << name;
    EXPECT_EQ(good.errors, 0u) << name;
    EXPECT_FALSE(good.quarantined) << name;
    EXPECT_TRUE(TablesEqual(dbs_[name].get(), "parts", wh_.get(),
                            std::string("parts_") + name));
  }

  // Heal the "disk": the next successful probe lifts the quarantine and the
  // retained batch (plus everything extracted since) converges.
  fenv.ClearFaults();
  bool recovered = false;
  for (int i = 0; i < 1000 && !recovered; ++i) {
    (void)(*hub)->RunRound();
    stats = (*hub)->Stats();
    recovered = !StatsFor(stats, "bad").quarantined &&
                TablesEqual(dbs_["bad"].get(), "parts", wh_.get(),
                            "parts_bad");
    if (!recovered) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(recovered);
  EXPECT_TRUE(
      TablesEqual(dbs_["bad"].get(), "parts", wh_.get(), "parts_bad"));
  // Recovery must not have lost or duplicated the goods either.
  for (const char* name : {"good1", "good2"}) {
    EXPECT_TRUE(TablesEqual(dbs_[name].get(), "parts", wh_.get(),
                            std::string("parts_") + name));
  }
  OPDELTA_EXPECT_OK((*hub)->Stop());
}

TEST_F(SelfHealingHubTest, RunRoundAndStopReportEveryFailingSource) {
  // Fault every source's hub-side files: one round produces one error per
  // group, and both RunRound and Stop must surface them all (joined), not
  // just the first.
  FaultInjectionEnv fenv(Env::Default());
  fenv.SetScope(WorkDir());
  fenv.SetErrorProbability(OpKind::kWrite, 1.0);
  ScopedEnvOverride guard(&fenv);

  hub::HubOptions options;
  options.produce_attempts = 1;
  options.quarantine_after = 0;  // keep failing loudly, never quarantine
  options.poll_interval = std::chrono::milliseconds(1);
  Result<std::unique_ptr<hub::DeltaHub>> hub = MakeHub(options);
  ASSERT_TRUE(hub.ok()) << hub.status().ToString();

  for (const char* name : {"good1", "good2", "bad"}) Insert(name, 0, 10);
  Status round = (*hub)->RunRound();
  EXPECT_TRUE(round.IsIOError()) << round.ToString();
  for (const char* name : {"good1", "good2", "bad"}) {
    EXPECT_NE(round.message().find(name), std::string::npos)
        << "missing " << name << " in: " << round.ToString();
  }

  // The Start() driver is a supervisor: failed rounds are retained, the
  // loop keeps driving instead of halting after the first error.
  OPDELTA_ASSERT_OK((*hub)->Start());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Status stop = (*hub)->Stop();
  EXPECT_FALSE(stop.ok());
  EXPECT_NE(stop.message().find("injected write fault"), std::string::npos)
      << stop.ToString();
  EXPECT_GT((*hub)->Stats().rounds, 2u);  // it did not fail-stop
}

TEST(HubDeadLetterTest, PoisonMessageIsDivertedAndEverythingElseApplies) {
  TempDir dir;
  auto src = OpenDb(dir, "src", NoTimestampOptions());
  auto wh = OpenDb(dir, "wh", NoTimestampOptions());
  workload::PartsWorkload wl;
  OPDELTA_ASSERT_OK(wl.CreateTable(src.get(), "parts"));
  OPDELTA_ASSERT_OK(wl.CreateTable(wh.get(), "parts"));

  // Plant a poison message at the head of the source's queue, as a buggy
  // shipper or flipped disk bits would.
  const std::string work_dir = dir.Sub("hubw");
  OPDELTA_ASSERT_OK(Env::Default()->CreateDir(work_dir));
  OPDELTA_ASSERT_OK(Env::Default()->CreateDir(work_dir + "/s1"));
  {
    transport::PersistentQueue queue;
    OPDELTA_ASSERT_OK(queue.Open(work_dir + "/s1/queue"));
    OPDELTA_ASSERT_OK(queue.Enqueue(Slice("Xgarbage"), /*durable=*/true));
    OPDELTA_ASSERT_OK(queue.Close());
  }
  OPDELTA_ASSERT_OK(
      sql::Executor(src.get())
          .ExecuteSql(wl.MakeInsert("parts", 0, 20).ToSql())
          .status());

  hub::HubOptions options;
  options.work_dir = work_dir;
  hub::SourceSpec spec;
  spec.name = "s1";
  spec.source = src.get();
  spec.method = pipeline::Method::kLog;
  spec.source_table = "parts";
  spec.warehouse_table = "parts";
  Result<std::unique_ptr<hub::DeltaHub>> hub =
      hub::DeltaHub::Create(wh.get(), options);
  ASSERT_TRUE(hub.ok());
  OPDELTA_ASSERT_OK((*hub)->AddSource(spec));
  OPDELTA_ASSERT_OK((*hub)->Setup());
  OPDELTA_ASSERT_OK((*hub)->RunRound());

  // The poison batch was diverted, the real batch applied behind it.
  EXPECT_TRUE(TablesEqual(src.get(), "parts", wh.get(), "parts"));
  const hub::HubStats stats = (*hub)->Stats();
  EXPECT_EQ(stats.dead_letters, 1u);
  ASSERT_EQ(stats.sources.size(), 1u);
  EXPECT_EQ(stats.sources[0].dead_letters, 1u);
  EXPECT_EQ(stats.sources[0].batches_applied, 1u);
  EXPECT_NE(stats.sources[0].last_error.find("unknown pipeline message"),
            std::string::npos)
      << stats.sources[0].last_error;
  // The diverted batch is preserved for inspection.
  EXPECT_TRUE(
      Env::Default()->FileExists(work_dir + "/dead_letters/parts.log"));
  OPDELTA_EXPECT_OK((*hub)->Stop());
}

// ------------------------------------------------------ crash-point suite

/// Randomized crash points across the whole extract→ship→stage→apply
/// path: every in-scope mutating I/O the hub performs is a potential
/// power-failure site. For each crash point n, the hub runs until its
/// "disk" dies at the n-th mutation, unsynced bytes are dropped (with a
/// seeded torn tail), and a fresh hub over the same work_dir must bring
/// the warehouse to exactly the source's state — nothing lost, nothing
/// applied twice.
TEST(HubCrashPointTest, WarehouseConvergesAfterEveryCrashPoint) {
  TempDir dir;
  auto src = OpenDb(dir, "src", NoTimestampOptions());
  auto wh = OpenDb(dir, "wh", NoTimestampOptions());
  workload::PartsWorkload wl;
  OPDELTA_ASSERT_OK(wl.CreateTable(src.get(), "parts"));
  OPDELTA_ASSERT_OK(wl.CreateTable(wh.get(), "parts"));
  sql::Executor exec(src.get());
  const std::string work_dir = dir.Sub("hubcrash");

  // The hub's transport state (queue, cursor, watermarks) crashes; the
  // source and warehouse databases are different machines and survive.
  FaultInjectionEnv fenv(Env::Default(), FaultSeedFromEnv(1234));
  fenv.SetScope(work_dir);
  ScopedEnvOverride guard(&fenv);

  hub::HubOptions options;
  options.work_dir = work_dir;
  options.extract_threads = 1;
  options.apply_workers = 1;
  options.produce_attempts = 1;  // retries can't help a dead disk
  options.apply_attempts = 1;
  options.quarantine_after = 0;
  auto make_hub = [&]() -> Result<std::unique_ptr<hub::DeltaHub>> {
    OPDELTA_ASSIGN_OR_RETURN(std::unique_ptr<hub::DeltaHub> hub,
                             hub::DeltaHub::Create(wh.get(), options));
    hub::SourceSpec spec;
    spec.name = "s1";
    spec.source = src.get();
    spec.method = pipeline::Method::kLog;
    spec.source_table = "parts";
    spec.warehouse_table = "parts";
    OPDELTA_RETURN_IF_ERROR(hub->AddSource(spec));
    OPDELTA_RETURN_IF_ERROR(hub->Setup());
    return hub;
  };

  constexpr int kCrashPoints = 50;
  int64_t key = 0;
  uint64_t redeliveries_dropped = 0;
  for (int crash_point = 1; crash_point <= kCrashPoints; ++crash_point) {
    // Fresh order-sensitive traffic so every iteration has something to
    // lose: inserts plus an update over previously shipped keys.
    OPDELTA_ASSERT_OK(
        exec.ExecuteSql(wl.MakeInsert("parts", key, 5).ToSql()).status());
    if (key > 0) {
      std::string tag = "c";
      tag += std::to_string(crash_point);
      OPDELTA_ASSERT_OK(
          exec.ExecuteSql(wl.MakeUpdate("parts", 0, key, tag).ToSql())
              .status());
    }
    key += 5;

    fenv.ClearFaults();
    fenv.FailAllOpsAfter(crash_point);
    {
      // The hub runs until its disk dies somewhere in Setup, extract,
      // ship, or apply — any error is part of the scenario.
      Result<std::unique_ptr<hub::DeltaHub>> crashing = make_hub();
      if (crashing.ok()) {
        (void)(*crashing)->RunRound();
        (void)(*crashing)->Stop();
      }
    }

    // Power failure: unsynced bytes vanish; a seeded prefix of the
    // unsynced tail may survive (torn tail).
    fenv.ClearFaults();
    OPDELTA_ASSERT_OK(fenv.CrashAndDropUnsynced(/*torn_tails=*/true));

    // Reboot and recover: replay the queue, re-extract past the
    // watermark, converge.
    Result<std::unique_ptr<hub::DeltaHub>> recovered = make_hub();
    ASSERT_TRUE(recovered.ok())
        << "crash point " << crash_point << ": "
        << recovered.status().ToString();
    OPDELTA_ASSERT_OK((*recovered)->RunRound());
    redeliveries_dropped +=
        (*recovered)->Stats().sources[0].duplicates_dropped;
    OPDELTA_EXPECT_OK((*recovered)->Stop());
    ASSERT_TRUE(TablesEqual(src.get(), "parts", wh.get(), "parts"))
        << "diverged after crash point " << crash_point;
  }
  EXPECT_GT(fenv.faults_injected(), 0u);
  // Some crash points land between the warehouse commit and the durable
  // ack, so the sweep must have exercised the ledger's duplicate drop.
  EXPECT_GT(redeliveries_dropped, 0u);
}

// ----------------------------------------------- warehouse-side crash points

/// The other half of the crash model: the *warehouse's* disk dies
/// mid-apply while the hub process stays up. Every interrupted warehouse
/// transaction must roll back (with its ledger row), stay queued, and
/// apply exactly once after the disk heals — including crash points inside
/// the ledger's own writes and its compaction (compact_every=1 puts a
/// compaction behind every applied batch). An op-delta source makes any
/// double apply visible as extra physical rows.
TEST(WarehouseApplyCrashTest, DeadDiskMidApplyRollsBackAndAppliesOnce) {
  TempDir dir;
  // Only the warehouse's own files fail; the hub's transport state and the
  // source database live on healthy disks. The override is installed
  // before the databases open so the warehouse's file handles route
  // through the fault env.
  FaultInjectionEnv fenv(Env::Default(), FaultSeedFromEnv(99));
  fenv.SetScope(dir.Sub("warehouse"));
  ScopedEnvOverride guard(&fenv);

  auto src = OpenDb(dir, "src", NoTimestampOptions());
  auto wh = OpenDb(dir, "warehouse", NoTimestampOptions());
  workload::PartsWorkload wl;
  OPDELTA_ASSERT_OK(wl.CreateTable(src.get(), "parts"));
  OPDELTA_ASSERT_OK(wl.CreateTable(wh.get(), "parts"));

  hub::HubOptions options;
  options.work_dir = dir.Sub("hubw");
  options.extract_threads = 1;
  options.apply_workers = 1;
  options.produce_attempts = 1;
  options.apply_attempts = 1;
  options.quarantine_after = 0;
  options.ledger_compact_every = 1;
  Result<std::unique_ptr<hub::DeltaHub>> hub =
      hub::DeltaHub::Create(wh.get(), options);
  ASSERT_TRUE(hub.ok()) << hub.status().ToString();
  hub::SourceSpec spec;
  spec.name = "s1";
  spec.source = src.get();
  spec.method = pipeline::Method::kOpDelta;
  spec.source_table = "parts";
  spec.warehouse_table = "parts";
  OPDELTA_ASSERT_OK((*hub)->AddSource(spec));
  OPDELTA_ASSERT_OK((*hub)->Setup());
  extract::OpDeltaCapture* capture = (*hub)->capture("s1");
  ASSERT_NE(capture, nullptr);

  constexpr int kCrashPoints = 30;
  int64_t key = 0;
  for (int crash_point = 1; crash_point <= kCrashPoints; ++crash_point) {
    // Two source transactions per batch, so crash points can split a
    // batch mid-way and force the ledger's partial-prefix resume.
    OPDELTA_ASSERT_OK(
        capture->RunTransaction({wl.MakeInsert("parts", key, 4)}).status());
    OPDELTA_ASSERT_OK(
        capture
            ->RunTransaction({wl.MakeUpdate(
                "parts", 0, key + 4, "c" + std::to_string(crash_point))})
            .status());
    key += 4;

    fenv.ClearFaults();
    fenv.FailAllOpsAfter(crash_point);
    // The apply may die anywhere: staging the delta rows, writing the
    // ledger row, committing, or compacting. The round's error (if any)
    // is part of the scenario; the batch stays queued.
    (void)(*hub)->RunRound();

    // The disk heals; the retained batch replays and the warehouse
    // converges without ever double-applying a transaction.
    fenv.ClearFaults();
    OPDELTA_ASSERT_OK((*hub)->RunRound());
    ASSERT_TRUE(TablesEqual(src.get(), "parts", wh.get(), "parts"))
        << "diverged after crash point " << crash_point;
    ASSERT_EQ(CountRows(wh.get(), "parts"), CountRows(src.get(), "parts"))
        << "duplicate rows after crash point " << crash_point;
  }
  EXPECT_GT(fenv.faults_injected(), 0u);
  OPDELTA_EXPECT_OK((*hub)->Stop());
}

/// Deterministic ack-after-commit window: the warehouse commit lands but
/// the queue cursor cannot be written, so the batch is redelivered. The
/// ledger must drop it — one committed apply, zero extra rows.
TEST(WarehouseApplyCrashTest, AckFailureAfterCommitDegradesToDroppedRedelivery) {
  TempDir dir;
  auto src = OpenDb(dir, "src", NoTimestampOptions());
  auto wh = OpenDb(dir, "wh", NoTimestampOptions());
  workload::PartsWorkload wl;
  OPDELTA_ASSERT_OK(wl.CreateTable(src.get(), "parts"));
  OPDELTA_ASSERT_OK(wl.CreateTable(wh.get(), "parts"));

  FaultInjectionEnv fenv(Env::Default());
  ScopedEnvOverride guard(&fenv);

  hub::HubOptions options;
  options.work_dir = dir.Sub("hubw");
  options.produce_attempts = 1;
  options.apply_attempts = 1;
  options.quarantine_after = 0;
  hub::SourceSpec spec;
  spec.name = "s1";
  spec.source = src.get();
  spec.method = pipeline::Method::kOpDelta;
  spec.source_table = "parts";
  spec.warehouse_table = "parts";
  auto make_hub = [&]() -> Result<std::unique_ptr<hub::DeltaHub>> {
    OPDELTA_ASSIGN_OR_RETURN(std::unique_ptr<hub::DeltaHub> hub,
                             hub::DeltaHub::Create(wh.get(), options));
    OPDELTA_RETURN_IF_ERROR(hub->AddSource(spec));
    OPDELTA_RETURN_IF_ERROR(hub->Setup());
    return hub;
  };

  {
    Result<std::unique_ptr<hub::DeltaHub>> hub = make_hub();
    ASSERT_TRUE(hub.ok()) << hub.status().ToString();
    extract::OpDeltaCapture* capture = (*hub)->capture("s1");
    ASSERT_NE(capture, nullptr);
    OPDELTA_ASSERT_OK(
        capture->RunTransaction({wl.MakeInsert("parts", 0, 25)}).status());

    // Fail exactly the consumer cursor: the apply commits, the ack cannot.
    fenv.SetScope("queue.cursor");
    fenv.SetErrorProbability(OpKind::kWrite, 1.0);
    Status round = (*hub)->RunRound();
    EXPECT_FALSE(round.ok()) << "ack failure must surface";
    // The batch applied (commit preceded the failed ack)...
    EXPECT_TRUE(TablesEqual(src.get(), "parts", wh.get(), "parts"));
    EXPECT_EQ((*hub)->Stats().sources[0].duplicates_dropped, 0u);
    OPDELTA_EXPECT_OK((*hub)->Stop());
  }

  // ...and after a restart — the durable cursor never advanced — the
  // redelivery on the healed disk is dropped by the ledger.
  fenv.ClearFaults();
  Result<std::unique_ptr<hub::DeltaHub>> hub = make_hub();
  ASSERT_TRUE(hub.ok()) << hub.status().ToString();
  OPDELTA_ASSERT_OK((*hub)->RunRound());
  EXPECT_EQ(CountRows(wh.get(), "parts"), 25u);  // no double-applied INSERTs
  EXPECT_TRUE(TablesEqual(src.get(), "parts", wh.get(), "parts"));
  EXPECT_EQ((*hub)->Stats().sources[0].duplicates_dropped, 1u);
  OPDELTA_EXPECT_OK((*hub)->Stop());
}

}  // namespace
}  // namespace opdelta
