#include "backfill/backfiller.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <random>
#include <thread>

#include "backfill/chunk_ledger.h"
#include "common/fault_env.h"
#include "hub/delta_hub.h"
#include "pipeline/source_leg.h"
#include "sql/executor.h"
#include "warehouse/apply_ledger.h"
#include "workload/workload.h"
#include "tests/test_util.h"

namespace opdelta::backfill {
namespace {

using opdelta::testing::CountRows;
using opdelta::testing::OpenDb;
using opdelta::testing::ScopedEnvOverride;
using opdelta::testing::TablesEqual;
using opdelta::testing::TempDir;

engine::DatabaseOptions NoTimestampOptions() {
  engine::DatabaseOptions options;
  options.auto_timestamp = false;
  return options;
}

/// Randomized suites read their seed from OPDELTA_FAULT_SEED so CI can run
/// the same tests under a seed matrix; unset, they use the fixed default.
uint64_t FaultSeedFromEnv(uint64_t fallback) {
  const char* text = std::getenv("OPDELTA_FAULT_SEED");
  if (text == nullptr || *text == '\0') return fallback;
  return std::strtoull(text, nullptr, 10);
}

bool Transient(const Status& st) {
  return st.IsConflict() || st.code() == StatusCode::kBusy ||
         st.code() == StatusCode::kAborted;
}

/// Retries a statement through transient lock conflicts, as an OLTP client
/// racing the backfill's chunk reads and capture drains would.
template <typename Fn>
Status Retry(Fn&& fn) {
  Status st;
  for (int attempt = 0; attempt < 500; ++attempt) {
    st = fn();
    if (!Transient(st)) return st;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return st;
}

// ------------------------------------------------------- transport framing

TEST(SnapshotFrameTest, RoundTripsSnapshotMarker) {
  workload::PartsWorkload wl;
  extract::DeltaBatch batch;
  batch.table = "parts";
  batch.schema = workload::PartsWorkload::Schema();
  extract::DeltaRecord rec;
  rec.op = extract::DeltaOp::kUpsert;
  rec.seq = 1;
  rec.image = wl.MakeRow(7);
  batch.records.push_back(rec);
  std::string inner;
  pipeline::EncodeValueDeltaMessage(batch, &inner);

  extract::BatchId id{"s1", 7, 42, /*snapshot=*/true};
  std::string message;
  pipeline::EncodeBatchFrame(id, inner, &message);
  ASSERT_FALSE(message.empty());
  // Versioned frame; the snapshot identity ('C') travels as the kind byte
  // behind the version/feature preamble.
  EXPECT_EQ(message[0], 'F');
  EXPECT_EQ(id.ToString(), "s1@7:42+snap");

  extract::BatchId decoded;
  std::string payload;
  OPDELTA_ASSERT_OK(pipeline::DecodeBatchFrame(message, &decoded, &payload));
  EXPECT_TRUE(decoded.snapshot);
  EXPECT_EQ(decoded.source_id, "s1");
  EXPECT_EQ(decoded.epoch, 7u);
  EXPECT_EQ(decoded.seq, 42u);
  EXPECT_EQ(payload, inner);

  extract::BatchId header;
  OPDELTA_ASSERT_OK(pipeline::DecodeBatchHeader(Slice(message), &header));
  EXPECT_TRUE(header.snapshot);
  EXPECT_TRUE(header == decoded);

  // A live batch still rides the 'B' frame with the marker clear.
  extract::BatchId live{"s1", 7, 43, /*snapshot=*/false};
  std::string live_message;
  pipeline::EncodeBatchFrame(live, inner, &live_message);
  EXPECT_EQ(live_message[0], 'F');
  OPDELTA_ASSERT_OK(
      pipeline::DecodeBatchFrame(live_message, &decoded, &payload));
  EXPECT_FALSE(decoded.snapshot);
  EXPECT_EQ(live.ToString(), "s1@7:43");
}

// ----------------------------------------------------------- chunk ledger

TEST(ChunkLedgerTest, AdvanceResumeCompactAndDone) {
  TempDir dir;
  auto db = OpenDb(dir, "src", NoTimestampOptions());
  ChunkLedger ledger(db.get());
  OPDELTA_ASSERT_OK(ledger.Setup());
  OPDELTA_ASSERT_OK(ledger.Setup());  // idempotent

  Result<ChunkLedger::Progress> p = ledger.Get("parts");
  OPDELTA_ASSERT_OK(p.status());
  EXPECT_FALSE(p->exists);

  OPDELTA_ASSERT_OK(ledger.Advance("parts", 1, 15, 16));
  OPDELTA_ASSERT_OK(ledger.Advance("parts", 2, 31, 32));
  OPDELTA_ASSERT_OK(ledger.Advance("other", 5, 99, 80));
  p = ledger.Get("parts");
  OPDELTA_ASSERT_OK(p.status());
  EXPECT_TRUE(p->exists);
  EXPECT_FALSE(p->done);
  EXPECT_EQ(p->chunks_done, 2u);
  EXPECT_EQ(p->cursor, 31);
  EXPECT_EQ(p->rows_shipped, 32u);

  // Compaction keeps only the newest cursor row per table.
  uint64_t removed = 0;
  OPDELTA_ASSERT_OK(ledger.Compact(&removed));
  EXPECT_EQ(removed, 1u);  // parts chunk 1; "other" has a single row
  p = ledger.Get("parts");
  OPDELTA_ASSERT_OK(p.status());
  EXPECT_EQ(p->chunks_done, 2u);
  EXPECT_EQ(p->cursor, 31);

  OPDELTA_ASSERT_OK(ledger.MarkDone("parts", 3, 40));
  p = ledger.Get("parts");
  OPDELTA_ASSERT_OK(p.status());
  EXPECT_TRUE(p->done);
  EXPECT_EQ(p->chunks_done, 3u);
  EXPECT_EQ(p->rows_shipped, 40u);

  // Done markers survive compaction; the other table is untouched.
  OPDELTA_ASSERT_OK(ledger.Compact(&removed));
  p = ledger.Get("parts");
  OPDELTA_ASSERT_OK(p.status());
  EXPECT_TRUE(p->done);
  Result<ChunkLedger::Progress> other = ledger.Get("other");
  OPDELTA_ASSERT_OK(other.status());
  EXPECT_TRUE(other->exists);
  EXPECT_FALSE(other->done);
  EXPECT_EQ(other->chunks_done, 5u);
}

// ------------------------------------------------- standalone backfiller

struct LegFixture {
  explicit LegFixture(const TempDir& dir,
                      pipeline::Method method = pipeline::Method::kOpDelta,
                      engine::DatabaseOptions options = NoTimestampOptions())
      : src(OpenDb(dir, "src", options)), wh(OpenDb(dir, "wh", options)) {
    workload::PartsWorkload wl;
    OPDELTA_EXPECT_OK(wl.CreateTable(src.get(), "parts"));
    OPDELTA_EXPECT_OK(wl.CreateTable(wh.get(), "parts"));
    OPDELTA_EXPECT_OK(Backfiller::EnsureSignalTable(wh.get()));
    pipeline::PipelineOptions po;
    po.method = method;
    po.source_table = "parts";
    po.warehouse_table = "parts";
    po.source_id = "s1";
    po.work_dir = dir.Sub("leg");
    Result<std::unique_ptr<pipeline::SourceLeg>> made =
        pipeline::SourceLeg::Create(src.get(), std::move(po));
    OPDELTA_EXPECT_OK(made.status());
    leg = std::move(*made);
    OPDELTA_EXPECT_OK(leg->Setup());
  }

  /// Applies every shipped batch to the warehouse, in ship order.
  Status IntegrateAll() {
    while (true) {
      std::string message;
      Status st = leg->PeekShipped(&message);
      if (st.IsNotFound()) return Status::OK();
      OPDELTA_RETURN_IF_ERROR(st);
      OPDELTA_RETURN_IF_ERROR(leg->Integrate(wh.get(), message, nullptr));
      OPDELTA_RETURN_IF_ERROR(leg->AckShipped());
    }
  }

  std::unique_ptr<engine::Database> src;
  std::unique_ptr<engine::Database> wh;
  std::unique_ptr<pipeline::SourceLeg> leg;
};

TEST(BackfillerTest, RequiresInt64KeyColumn) {
  TempDir dir;
  auto src = OpenDb(dir, "src", NoTimestampOptions());
  OPDELTA_ASSERT_OK(src->CreateTable(
      "named", catalog::Schema({catalog::Column{"name",
                                               catalog::ValueType::kString}})));
  pipeline::PipelineOptions po;
  po.method = pipeline::Method::kOpDelta;
  po.source_table = "named";
  po.warehouse_table = "named";
  po.work_dir = dir.Sub("leg");
  Result<std::unique_ptr<pipeline::SourceLeg>> leg =
      pipeline::SourceLeg::Create(src.get(), std::move(po));
  OPDELTA_ASSERT_OK(leg.status());
  OPDELTA_ASSERT_OK((*leg)->Setup());
  Result<std::unique_ptr<Backfiller>> bf =
      Backfiller::Create(leg->get(), BackfillOptions());
  EXPECT_EQ(bf.status().code(), StatusCode::kNotSupported);
}

TEST(BackfillerTest, EmptyTableCompletesImmediately) {
  TempDir dir;
  LegFixture fx(dir);
  Result<std::unique_ptr<Backfiller>> bf =
      Backfiller::Create(fx.leg.get(), BackfillOptions());
  ASSERT_TRUE(bf.ok()) << bf.status().ToString();
  OPDELTA_ASSERT_OK((*bf)->Setup());
  bool done = false;
  OPDELTA_ASSERT_OK((*bf)->Step(&done));
  EXPECT_TRUE(done);
  EXPECT_TRUE((*bf)->stats().done);
  EXPECT_EQ((*bf)->stats().rows_backfilled, 0u);
  OPDELTA_ASSERT_OK(fx.IntegrateAll());
  EXPECT_EQ(CountRows(fx.wh.get(), "parts"), 0u);
}

/// The dedup rule: capture events pending when a chunk is selected drain
/// inside the chunk's watermark window, and the delta must win — touched
/// chunk rows re-read (post-delta state ships), deleted rows dropped.
TEST(BackfillerTest, PendingDeltaWinsOverChunkRows) {
  TempDir dir;
  LegFixture fx(dir);
  workload::PartsWorkload wl;
  // Bootstrap gap: these rows predate capture, so only backfill can ship
  // them.
  OPDELTA_ASSERT_OK(wl.Populate(fx.src.get(), "parts", 40));

  // In-window events overlapping the first chunk (keys 0..15): an update
  // over [0,10) and a delete of {10, 11}.
  extract::OpDeltaCapture* capture = fx.leg->capture();
  ASSERT_NE(capture, nullptr);
  OPDELTA_ASSERT_OK(
      capture->RunTransaction({wl.MakeUpdate("parts", 0, 10, "inwindow")})
          .status());
  OPDELTA_ASSERT_OK(
      capture->RunTransaction({wl.MakeDelete("parts", 10, 12)}).status());

  BackfillOptions options;
  options.chunk_rows = 16;
  Result<std::unique_ptr<Backfiller>> bf =
      Backfiller::Create(fx.leg.get(), options);
  ASSERT_TRUE(bf.ok()) << bf.status().ToString();
  OPDELTA_ASSERT_OK((*bf)->Setup());
  bool done = false;
  while (!done) OPDELTA_ASSERT_OK((*bf)->Step(&done));

  const BackfillStats& stats = (*bf)->stats();
  EXPECT_TRUE(stats.done);
  EXPECT_EQ(stats.chunks_done, 3u);          // 16 + 16 + tail
  EXPECT_EQ(stats.rows_backfilled, 38u);     // 40 - 2 deleted in window
  // Keys 10/11 died before chunk select, so only the 10 updated rows are
  // chunk candidates the in-window delta won over.
  EXPECT_EQ(stats.rows_deduped, 10u);

  OPDELTA_ASSERT_OK(fx.IntegrateAll());
  EXPECT_TRUE(TablesEqual(fx.src.get(), "parts", fx.wh.get(), "parts"));
  EXPECT_EQ(CountRows(fx.wh.get(), "parts"), 38u);
}

/// A mid-chunk read error (here: a lock timeout against a concurrent
/// writer) must abort the chunk transaction, releasing the row locks it
/// already holds — a leaked S lock would block writers until process
/// death.
TEST(BackfillerTest, ChunkReaderReleasesLocksOnMidChunkError) {
  TempDir dir;
  engine::DatabaseOptions options = NoTimestampOptions();
  options.lock_timeout = std::chrono::milliseconds(50);
  LegFixture fx(dir, pipeline::Method::kOpDelta, options);
  workload::PartsWorkload wl;
  OPDELTA_ASSERT_OK(wl.Populate(fx.src.get(), "parts", 20));

  BackfillOptions bf_options;
  bf_options.chunk_rows = 16;
  Result<std::unique_ptr<Backfiller>> bf =
      Backfiller::Create(fx.leg.get(), bf_options);
  ASSERT_TRUE(bf.ok()) << bf.status().ToString();
  OPDELTA_ASSERT_OK((*bf)->Setup());

  // A writer holds an X lock on key 5, mid-chunk. The reader's committed
  // read blocks on it and times out after taking S locks on keys 0..4.
  auto writer = fx.src->Begin();
  Result<size_t> updated = fx.src->UpdateWhere(
      writer.get(), "parts",
      engine::Predicate::Where("id", engine::CompareOp::kEq,
                               catalog::Value::Int64(5)),
      {{"status", catalog::Value::String("held")}});
  OPDELTA_ASSERT_OK(updated.status());
  ASSERT_EQ(*updated, 1u);

  Status st = (*bf)->Step();
  EXPECT_TRUE(st.IsConflict()) << st.ToString();

  // The failed chunk read must not have leaked its S locks: the writer
  // can immediately upgrade key 0 to X (a leaked S lock would stall this
  // into another timeout).
  updated = fx.src->UpdateWhere(
      writer.get(), "parts",
      engine::Predicate::Where("id", engine::CompareOp::kEq,
                               catalog::Value::Int64(0)),
      {{"status", catalog::Value::String("held")}});
  OPDELTA_ASSERT_OK(updated.status());
  EXPECT_EQ(*updated, 1u);
  OPDELTA_ASSERT_OK(fx.src->Commit(writer.get()));

  // The chunk re-runs cleanly from the durable cursor.
  bool done = false;
  while (!done) OPDELTA_ASSERT_OK((*bf)->Step(&done));
  OPDELTA_ASSERT_OK(fx.IntegrateAll());
  EXPECT_TRUE(TablesEqual(fx.src.get(), "parts", fx.wh.get(), "parts"));
}

// ------------------------------------------------------- hub integration

struct HubFixture {
  HubFixture(const TempDir& dir, pipeline::Method method,
             uint64_t chunk_rows) {
    src = OpenDb(dir, "src", NoTimestampOptions());
    wh = OpenDb(dir, "wh", NoTimestampOptions());
    workload::PartsWorkload wl;
    OPDELTA_EXPECT_OK(wl.CreateTable(src.get(), "parts"));
    OPDELTA_EXPECT_OK(wl.CreateTable(wh.get(), "parts"));
    options.work_dir = dir.Sub("hub");
    options.extract_threads = 1;
    options.apply_workers = 1;
    options.quarantine_after = 0;  // conflicts retry, never quarantine
    spec.name = "bf";
    spec.method = method;
    spec.source_table = "parts";
    spec.warehouse_table = "parts";
    spec.backfill = true;
    spec.backfill_chunk_rows = chunk_rows;
  }

  Result<std::unique_ptr<hub::DeltaHub>> MakeHub() {
    OPDELTA_ASSIGN_OR_RETURN(std::unique_ptr<hub::DeltaHub> hub,
                             hub::DeltaHub::Create(wh.get(), options));
    spec.source = src.get();
    OPDELTA_RETURN_IF_ERROR(hub->AddSource(spec));
    OPDELTA_RETURN_IF_ERROR(hub->Setup());
    return hub;
  }

  std::unique_ptr<engine::Database> src;
  std::unique_ptr<engine::Database> wh;
  hub::HubOptions options;
  hub::SourceSpec spec;
};

/// Drives rounds until the source's backfill reports done; one chunk
/// ships per round.
void RunUntilBackfillDone(hub::DeltaHub* hub, int max_rounds = 200) {
  for (int round = 0; round < max_rounds; ++round) {
    OPDELTA_ASSERT_OK(hub->RunRound());
    if (hub->Stats().sources[0].backfill_done) return;
  }
  FAIL() << "backfill did not finish in " << max_rounds << " rounds";
}

TEST(BackfillHubTest, QuietSourceBootstrapConverges) {
  TempDir dir;
  HubFixture fx(dir, pipeline::Method::kOpDelta, /*chunk_rows=*/16);
  workload::PartsWorkload wl;
  OPDELTA_ASSERT_OK(wl.Populate(fx.src.get(), "parts", 100));

  Result<std::unique_ptr<hub::DeltaHub>> hub = fx.MakeHub();
  ASSERT_TRUE(hub.ok()) << hub.status().ToString();
  RunUntilBackfillDone(hub->get());

  const hub::SourceStats stats = (*hub)->Stats().sources[0];
  EXPECT_TRUE(stats.backfill_done);
  EXPECT_EQ(stats.chunks_done, 7u);  // ceil(100 / 16)
  EXPECT_EQ(stats.chunks_total, 7u);
  EXPECT_EQ(stats.rows_backfilled, 100u);
  EXPECT_EQ(stats.rows_deduped, 0u);  // nothing wrote during the windows
  OPDELTA_EXPECT_OK((*hub)->Stop());
  EXPECT_TRUE(TablesEqual(fx.src.get(), "parts", fx.wh.get(), "parts"));
  EXPECT_EQ(CountRows(fx.wh.get(), "parts"), 100u);
}

TEST(BackfillHubTest, ResumesFromChunkLedgerAcrossRestart) {
  TempDir dir;
  HubFixture fx(dir, pipeline::Method::kOpDelta, /*chunk_rows=*/16);
  workload::PartsWorkload wl;
  OPDELTA_ASSERT_OK(wl.Populate(fx.src.get(), "parts", 100));

  {
    Result<std::unique_ptr<hub::DeltaHub>> hub = fx.MakeHub();
    ASSERT_TRUE(hub.ok()) << hub.status().ToString();
    for (int round = 0; round < 3; ++round) {
      OPDELTA_ASSERT_OK((*hub)->RunRound());
    }
    const hub::SourceStats stats = (*hub)->Stats().sources[0];
    EXPECT_EQ(stats.chunks_done, 3u);
    EXPECT_FALSE(stats.backfill_done);
    OPDELTA_EXPECT_OK((*hub)->Stop());
  }

  // A fresh hub over the same state directories resumes at chunk 4 — the
  // already-shipped rows are not re-read.
  Result<std::unique_ptr<hub::DeltaHub>> hub = fx.MakeHub();
  ASSERT_TRUE(hub.ok()) << hub.status().ToString();
  EXPECT_EQ(hub->get()->Stats().sources[0].chunks_done, 0u);  // not refreshed yet
  RunUntilBackfillDone(hub->get());
  const hub::SourceStats stats = (*hub)->Stats().sources[0];
  EXPECT_EQ(stats.chunks_done, 7u);
  EXPECT_EQ(stats.rows_backfilled, 100u);
  OPDELTA_EXPECT_OK((*hub)->Stop());
  EXPECT_TRUE(TablesEqual(fx.src.get(), "parts", fx.wh.get(), "parts"));
  EXPECT_EQ(CountRows(fx.wh.get(), "parts"), 100u);
}

TEST(BackfillHubTest, TriggerSourceBackfillsWithLiveWrites) {
  TempDir dir;
  HubFixture fx(dir, pipeline::Method::kTrigger, /*chunk_rows=*/16);
  workload::PartsWorkload wl;
  // Pre-capture rows: the trigger is not installed yet, so only the
  // backfill can ship these.
  OPDELTA_ASSERT_OK(wl.Populate(fx.src.get(), "parts", 80));

  Result<std::unique_ptr<hub::DeltaHub>> hub = fx.MakeHub();
  ASSERT_TRUE(hub.ok()) << hub.status().ToString();
  sql::Executor exec(fx.src.get());
  int64_t key = 1000;
  for (int round = 0; round < 100; ++round) {
    // Live trigger-captured traffic interleaved with the chunk stream.
    OPDELTA_ASSERT_OK(Retry([&] {
      return exec.ExecuteSql(wl.MakeInsert("parts", key, 2).ToSql()).status();
    }));
    OPDELTA_ASSERT_OK(Retry([&] {
      return exec
          .ExecuteSql(wl.MakeUpdate("parts", 0, 40, "r" + std::to_string(round))
                          .ToSql())
          .status();
    }));
    key += 2;
    OPDELTA_ASSERT_OK((*hub)->RunRound());
    if ((*hub)->Stats().sources[0].backfill_done) break;
  }
  ASSERT_TRUE((*hub)->Stats().sources[0].backfill_done);
  // Drain whatever the last writes left behind.
  OPDELTA_ASSERT_OK((*hub)->RunRound());
  OPDELTA_EXPECT_OK((*hub)->Stop());
  EXPECT_TRUE(TablesEqual(fx.src.get(), "parts", fx.wh.get(), "parts"));
}

/// Acceptance scenario: backfill starts under sustained randomized
/// concurrent writes — inserts, updates and deletes over the chunk range
/// racing the watermark windows — and the warehouse must byte-equal the
/// source once the backfill and the live stream drain, across seeds.
TEST(BackfillHubTest, RandomizedConcurrentWritesConverge) {
  constexpr uint64_t kSeeds[] = {1, 2, 3, 4, 5};
  uint64_t total_deduped = 0;
  for (const uint64_t seed : kSeeds) {
    TempDir dir;
    HubFixture fx(dir, pipeline::Method::kOpDelta, /*chunk_rows=*/16);
    fx.options.produce_attempts = 5;
    workload::PartsWorkload wl;
    OPDELTA_ASSERT_OK(wl.Populate(fx.src.get(), "parts", 240));

    Result<std::unique_ptr<hub::DeltaHub>> hub = fx.MakeHub();
    ASSERT_TRUE(hub.ok()) << hub.status().ToString();
    extract::OpDeltaCapture* capture = (*hub)->capture("bf");
    ASSERT_NE(capture, nullptr);

    std::thread writer([&, seed] {
      std::mt19937_64 rng(seed);
      int64_t next_key = 1000;
      for (int i = 0; i < 120; ++i) {
        sql::Statement stmt;
        switch (rng() % 3) {
          case 0:
            stmt = wl.MakeInsert("parts", next_key, 2);
            next_key += 2;
            break;
          case 1: {
            const int64_t lo = static_cast<int64_t>(rng() % 260);
            stmt = wl.MakeUpdate("parts", lo,
                                 lo + 1 + static_cast<int64_t>(rng() % 15),
                                 "w" + std::to_string(i));
            break;
          }
          default: {
            const int64_t lo = static_cast<int64_t>(rng() % 260);
            stmt = wl.MakeDelete("parts", lo,
                                 lo + 1 + static_cast<int64_t>(rng() % 2));
            break;
          }
        }
        OPDELTA_EXPECT_OK(Retry(
            [&] { return capture->RunTransaction({stmt}).status(); }));
      }
    });

    // Drive rounds until the backfill completes; writer conflicts make
    // individual rounds fail transiently, which is part of the scenario.
    bool done = false;
    for (int round = 0; round < 500 && !done; ++round) {
      (void)(*hub)->RunRound();
      done = (*hub)->Stats().sources[0].backfill_done;
    }
    ASSERT_TRUE(done) << "seed " << seed;
    writer.join();
    // Drain the tail of the live stream.
    OPDELTA_ASSERT_OK((*hub)->RunRound());
    OPDELTA_ASSERT_OK((*hub)->RunRound());
    total_deduped += (*hub)->Stats().sources[0].rows_deduped;
    OPDELTA_EXPECT_OK((*hub)->Stop());
    ASSERT_TRUE(TablesEqual(fx.src.get(), "parts", fx.wh.get(), "parts"))
        << "diverged at seed " << seed;
  }
  // Across five seeds of sustained writes, at least one chunk window must
  // have seen a concurrent touch (each seed races 120 transactions
  // against 15 windows).
  EXPECT_GT(total_deduped, 0u);
}

// -------------------------------------------------- apply-ledger racing

/// Satellite regression: ApplyLedger::Compact holds its own transaction
/// while apply workers advance watermarks — racing them must never lose a
/// watermark or mis-admit a redelivery, only surface retryable conflicts.
TEST(ApplyLedgerRaceTest, CompactRacingAdvanceKeepsWatermarks) {
  TempDir dir;
  engine::DatabaseOptions options = NoTimestampOptions();
  options.lock_timeout = std::chrono::milliseconds(50);
  auto wh = OpenDb(dir, "wh", options);
  warehouse::ApplyLedger ledger(wh.get());
  OPDELTA_ASSERT_OK(ledger.Setup());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> compactions{0};
  std::thread compactor([&] {
    while (!stop.load()) {
      Status st = ledger.Compact();
      EXPECT_TRUE(st.ok() || Transient(st)) << st.ToString();
      if (st.ok()) compactions.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  constexpr uint64_t kBatches = 150;
  for (uint64_t seq = 1; seq <= kBatches; ++seq) {
    const extract::BatchId id{"s1", 1, seq, false};
    Result<warehouse::ApplyLedger::Admission> adm = ledger.Admit(id, 1);
    OPDELTA_ASSERT_OK(adm.status());
    EXPECT_EQ(adm->decision, warehouse::ApplyLedger::Decision::kFresh);
    OPDELTA_ASSERT_OK(Retry([&] {
      return wh->WithTransaction(
          [&](txn::Transaction* txn) { return ledger.Advance(txn, id, 1); });
    }));
  }
  // Let the compactor land at least one clean pass once the advance storm
  // quiets; under full contention every attempt may conflict.
  for (int i = 0; i < 2000 && compactions.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true);
  compactor.join();
  EXPECT_GT(compactions.load(), 0u);

  Result<warehouse::ApplyLedger::Watermark> wm = ledger.Get("s1");
  OPDELTA_ASSERT_OK(wm.status());
  ASSERT_TRUE(wm->exists);
  EXPECT_EQ(wm->seq, kBatches);

  // Redeliveries anywhere below the watermark drop as duplicates.
  for (const uint64_t seq : {uint64_t{1}, kBatches / 2, kBatches}) {
    Result<warehouse::ApplyLedger::Admission> adm =
        ledger.Admit(extract::BatchId{"s1", 1, seq, false}, 1);
    OPDELTA_ASSERT_OK(adm.status());
    EXPECT_EQ(adm->decision, warehouse::ApplyLedger::Decision::kDuplicate)
        << "seq " << seq;
  }
  OPDELTA_ASSERT_OK(ledger.Compact());
  wm = ledger.Get("s1");
  OPDELTA_ASSERT_OK(wm.status());
  EXPECT_EQ(wm->seq, kBatches);
}

// ------------------------------------------------------- crash recovery

/// Dead-disk-mid-chunk sweep: the hub's transport state dies at the n-th
/// mutating I/O while a backfill is in flight, unsynced bytes vanish
/// (torn tails included), and a rebooted hub must finish the backfill
/// from the durable chunk cursor — warehouse byte-equal to the source,
/// nothing lost to the crash, nothing double-applied.
TEST(BackfillCrashTest, ResumesAndConvergesAfterEveryCrashPoint) {
  TempDir dir;
  constexpr int kCrashPoints = 16;
  for (int crash_point = 1; crash_point <= kCrashPoints; ++crash_point) {
    const std::string tag = std::to_string(crash_point);
    const std::string work_dir = dir.Sub("hub" + tag);
    FaultInjectionEnv fenv(Env::Default(),
                           FaultSeedFromEnv(7000 + crash_point));
    fenv.SetScope(work_dir);
    ScopedEnvOverride guard(&fenv);

    // Source and warehouse live on healthy disks; only the hub's queue,
    // cursor and watermark files crash.
    auto src = OpenDb(dir, "src" + tag, NoTimestampOptions());
    auto wh = OpenDb(dir, "wh" + tag, NoTimestampOptions());
    workload::PartsWorkload wl;
    OPDELTA_ASSERT_OK(wl.CreateTable(src.get(), "parts"));
    OPDELTA_ASSERT_OK(wl.CreateTable(wh.get(), "parts"));
    OPDELTA_ASSERT_OK(wl.Populate(src.get(), "parts", 60));

    hub::HubOptions options;
    options.work_dir = work_dir;
    options.extract_threads = 1;
    options.apply_workers = 1;
    options.produce_attempts = 1;  // retries can't help a dead disk
    options.apply_attempts = 1;
    options.quarantine_after = 0;
    auto make_hub = [&]() -> Result<std::unique_ptr<hub::DeltaHub>> {
      OPDELTA_ASSIGN_OR_RETURN(std::unique_ptr<hub::DeltaHub> hub,
                               hub::DeltaHub::Create(wh.get(), options));
      hub::SourceSpec spec;
      spec.name = "bf";
      spec.source = src.get();
      spec.method = pipeline::Method::kLog;
      spec.source_table = "parts";
      spec.warehouse_table = "parts";
      spec.backfill = true;
      spec.backfill_chunk_rows = 9;
      OPDELTA_RETURN_IF_ERROR(hub->AddSource(spec));
      OPDELTA_RETURN_IF_ERROR(hub->Setup());
      return hub;
    };

    fenv.ClearFaults();
    fenv.FailAllOpsAfter(crash_point);
    {
      // Run toward completion with live writes interleaved until the
      // disk dies somewhere mid-backfill; any error is the scenario.
      Result<std::unique_ptr<hub::DeltaHub>> crashing = make_hub();
      if (crashing.ok()) {
        sql::Executor exec(src.get());
        int64_t key = 1000;
        for (int round = 0; round < 12; ++round) {
          (void)exec.ExecuteSql(wl.MakeInsert("parts", key, 2).ToSql());
          (void)exec.ExecuteSql(
              wl.MakeUpdate("parts", 0, 30, "c" + tag).ToSql());
          key += 2;
          if (!(*crashing)->RunRound().ok()) break;
          if ((*crashing)->Stats().sources[0].backfill_done) break;
        }
        (void)(*crashing)->Stop();
      }
    }

    // Power failure: unsynced bytes vanish, a seeded prefix of the
    // unsynced tail may survive.
    fenv.ClearFaults();
    OPDELTA_ASSERT_OK(fenv.CrashAndDropUnsynced(/*torn_tails=*/true));

    Result<std::unique_ptr<hub::DeltaHub>> recovered = make_hub();
    ASSERT_TRUE(recovered.ok()) << "crash point " << crash_point << ": "
                                << recovered.status().ToString();
    bool done = false;
    for (int round = 0; round < 40 && !done; ++round) {
      OPDELTA_ASSERT_OK((*recovered)->RunRound());
      done = (*recovered)->Stats().sources[0].backfill_done;
    }
    ASSERT_TRUE(done) << "crash point " << crash_point;
    OPDELTA_ASSERT_OK((*recovered)->RunRound());
    OPDELTA_EXPECT_OK((*recovered)->Stop());
    ASSERT_TRUE(TablesEqual(src.get(), "parts", wh.get(), "parts"))
        << "diverged after crash point " << crash_point;
  }
}

}  // namespace
}  // namespace opdelta::backfill
