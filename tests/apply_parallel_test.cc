// Conflict-aware parallel apply (warehouse/apply_scheduler.h) and the
// prepared-statement cache (sql/statement_cache.h).
//
// The load-bearing property is convergence: for any op-delta batch, the
// parallel scheduler must produce byte-for-byte the warehouse state and
// ledger semantics of the serial OpDeltaIntegrator — same final rows,
// same committed prefix on failure, same duplicate/resume decisions.
// The randomized suites drive that with seeded workloads, both disjoint
// (everything runs concurrently) and conflicting (barriers force source
// order).
#include "warehouse/apply_scheduler.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/digest.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "engine/trigger.h"
#include "hub/delta_hub.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "sql/statement_cache.h"
#include "warehouse/apply_ledger.h"
#include "warehouse/integrator.h"
#include "workload/workload.h"
#include "tests/test_util.h"

namespace opdelta::warehouse {
namespace {

using opdelta::testing::CountRows;
using opdelta::testing::OpenDb;
using opdelta::testing::TablesEqual;
using opdelta::testing::TempDir;

engine::DatabaseOptions NoTimestampOptions() {
  engine::DatabaseOptions options;
  options.auto_timestamp = false;  // deterministic rows for digest equality
  return options;
}

extract::OpDeltaRecord Op(uint64_t seq, std::string sql) {
  return extract::OpDeltaRecord{0, seq, std::move(sql), false, {}, nullptr};
}

extract::OpDeltaTxn Txn(txn::TxnId id, std::vector<std::string> sqls) {
  extract::OpDeltaTxn txn;
  txn.id = id;
  uint64_t seq = 1;
  for (std::string& s : sqls) txn.ops.push_back(Op(seq++, std::move(s)));
  return txn;
}

extract::BatchId Batch(uint64_t seq) {
  extract::BatchId id;
  id.source_id = "src";
  id.epoch = 1;
  id.seq = seq;
  return id;
}

/// Order-independent digest of every cell of every row — unlike
/// testing::TableContents this tolerates duplicate key values, which the
/// randomized workloads can legitimately produce.
SetDigest DigestTable(engine::Database* db, const std::string& table) {
  SetDigest digest;
  Status st = db->Scan(nullptr, table, engine::Predicate::True(),
                       [&](const storage::Rid&, const catalog::Row& row) {
                         std::string encoded;
                         for (const catalog::Value& v : row) {
                           encoded += v.ToSqlLiteral();
                           encoded += '|';
                         }
                         digest.Add(encoded);
                         return true;
                       });
  EXPECT_TRUE(st.ok()) << st.ToString();
  return digest;
}

// ------------------------------------------------------ statement cache

TEST(StatementCacheTest, MatchesParserAcrossLiteralEdgeCases) {
  // Cache + rebind must reproduce a full parse on every normalizable
  // shape: multi-row inserts, negatives, floats, doubled quotes, NULL and
  // timestamp literals, compound WHERE clauses.
  const std::vector<std::string> statements = {
      "INSERT INTO parts VALUES (1, 'new', 'p-1', TS:5)",
      "INSERT INTO parts VALUES (9, 'it''s', 'p', TS:1)",
      "INSERT INTO parts VALUES (-2, 'a', 'x', TS:0), (3, 'c', NULL, TS:7)",
      "INSERT INTO metrics VALUES (1.5, -2.25)",
      "UPDATE parts SET status = 'u' WHERE id = -4",
      "UPDATE parts SET status = NULL, payload = 'q' "
      "WHERE id = 7 AND status = 's'",
      "DELETE FROM parts WHERE id = 12",
  };
  sql::StatementCache cache;
  for (int pass = 0; pass < 2; ++pass) {
    for (const std::string& s : statements) {
      Result<sql::Statement> direct = sql::Parser::Parse(s);
      ASSERT_TRUE(direct.ok()) << s << ": " << direct.status().ToString();
      Result<sql::Statement> cached = cache.Parse(s);
      ASSERT_TRUE(cached.ok()) << s << ": " << cached.status().ToString();
      EXPECT_EQ(cached.value().ToSql(), direct.value().ToSql())
          << "pass " << pass << ": " << s;
    }
  }
  const sql::StatementCacheStats stats = cache.stats();
  EXPECT_EQ(stats.bypasses, 0u);
  EXPECT_EQ(stats.hits + stats.misses, 2 * statements.size());
  // The second pass is all hits; the first may add more via shared shapes.
  EXPECT_GE(stats.hits, statements.size());
}

TEST(StatementCacheTest, SharedShapeHitsWithRebinding) {
  sql::StatementCache cache;
  Result<sql::Statement> a = cache.Parse("INSERT INTO t VALUES (1, 'a')");
  Result<sql::Statement> b = cache.Parse("INSERT INTO t VALUES (2, 'b')");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().entries, 1u);
  // The hit is rebound with its own literals, not the skeleton's.
  EXPECT_EQ(b.value().ToSql(),
            sql::Parser::Parse("INSERT INTO t VALUES (2, 'b')")
                .value()
                .ToSql());
  EXPECT_NE(a.value().ToSql(), b.value().ToSql());
}

TEST(StatementCacheTest, NonDmlBypassesTheCache) {
  sql::StatementCache cache;
  for (const char* s :
       {"SELECT * FROM parts",
        "ALTER TABLE parts ADD COLUMN qty INT64 DEFAULT 7"}) {
    Result<sql::Statement> direct = sql::Parser::Parse(s);
    Result<sql::Statement> cached = cache.Parse(s);
    ASSERT_EQ(cached.ok(), direct.ok()) << s;
    if (direct.ok()) {
      EXPECT_EQ(cached.value().ToSql(), direct.value().ToSql());
    }
  }
  EXPECT_EQ(cache.stats().bypasses, 2u);
  EXPECT_EQ(cache.stats().hits + cache.stats().misses, 0u);
  // Parse errors surface unchanged through the cache path.
  EXPECT_FALSE(cache.Parse("INSERT INTO").ok());
}

TEST(StatementCacheTest, SchemaEpochInvalidatesEntries) {
  // Entries are keyed by (shape, ddl_epoch): a migration can never be
  // served a skeleton parsed under the previous schema.
  const std::string sql = "INSERT INTO parts VALUES (1, 'a', 'b', TS:1)";
  sql::StatementCache cache;
  OPDELTA_ASSERT_OK(cache.Parse(sql, 1).status());
  OPDELTA_ASSERT_OK(cache.Parse(sql, 1).status());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);

  OPDELTA_ASSERT_OK(cache.Parse(sql, 2).status());  // post-DDL: re-parse
  EXPECT_EQ(cache.stats().misses, 2u);
  OPDELTA_ASSERT_OK(cache.Parse(sql, 2).status());
  EXPECT_EQ(cache.stats().hits, 2u);
  // The old epoch's entry survives until evicted, still keyed apart.
  OPDELTA_ASSERT_OK(cache.Parse(sql, 1).status());
  EXPECT_EQ(cache.stats().hits, 3u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(StatementCacheTest, LruBoundEvictsOldestShape) {
  sql::StatementCache cache(2);
  OPDELTA_ASSERT_OK(cache.Parse("DELETE FROM a WHERE id = 1").status());
  OPDELTA_ASSERT_OK(cache.Parse("DELETE FROM b WHERE id = 1").status());
  OPDELTA_ASSERT_OK(cache.Parse("DELETE FROM c WHERE id = 1").status());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
  // Shape `a` was the LRU victim: parsing it again is a miss.
  OPDELTA_ASSERT_OK(cache.Parse("DELETE FROM a WHERE id = 2").status());
  EXPECT_EQ(cache.stats().misses, 4u);

  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  OPDELTA_ASSERT_OK(cache.Parse("DELETE FROM a WHERE id = 3").status());
  EXPECT_EQ(cache.stats().misses, 5u);
}

// ------------------------------------------------------------ footprints

class FootprintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = OpenDb(dir_, "db", NoTimestampOptions());
    OPDELTA_ASSERT_OK(
        db_->CreateTable("parts", workload::PartsWorkload::Schema()));
  }

  /// Parses `sql` and folds it into `fp`; returns StatementFootprint's
  /// verdict.
  bool Fold(const std::string& sql, TxnFootprint* fp) {
    Result<sql::Statement> parsed = sql::Parser::Parse(sql);
    EXPECT_TRUE(parsed.ok()) << sql << ": " << parsed.status().ToString();
    return StatementFootprint(db_.get(), parsed.value(), fp);
  }

  static std::string Key(int64_t v) {
    return catalog::Value::Int64(v).ToSqlLiteral();
  }

  TempDir dir_;
  std::unique_ptr<engine::Database> db_;
};

TEST_F(FootprintTest, InsertClaimsEachRowKey) {
  TxnFootprint fp;
  ASSERT_TRUE(
      Fold("INSERT INTO parts VALUES (1, 'a', 'p', TS:0), (2, 'b', 'p', TS:0)",
           &fp));
  ASSERT_EQ(fp.count("parts"), 1u);
  EXPECT_FALSE(fp["parts"].whole_table);
  EXPECT_EQ(fp["parts"].keys, (std::vector<std::string>{Key(1), Key(2)}));
}

TEST_F(FootprintTest, UpdateClaimsWhereKeyAndAssignedKey) {
  TxnFootprint fp;
  // SET id = 9 renames the row: both the old and new identity are claimed
  // so later statements on either key order after this one.
  ASSERT_TRUE(Fold("UPDATE parts SET id = 9, status = 's' WHERE id = 4", &fp));
  EXPECT_FALSE(fp["parts"].whole_table);
  EXPECT_EQ(fp["parts"].keys, (std::vector<std::string>{Key(4), Key(9)}));
}

TEST_F(FootprintTest, NonKeyPredicateWidensToWholeTable) {
  TxnFootprint update_fp;
  ASSERT_TRUE(
      Fold("UPDATE parts SET payload = 'x' WHERE status = 'new'", &update_fp));
  EXPECT_TRUE(update_fp["parts"].whole_table);

  TxnFootprint range_fp;
  ASSERT_TRUE(Fold("DELETE FROM parts WHERE id < 10", &range_fp));
  EXPECT_TRUE(range_fp["parts"].whole_table);

  // A key-equality conjunct bounds the row set even with extra conjuncts.
  TxnFootprint eq_fp;
  ASSERT_TRUE(
      Fold("DELETE FROM parts WHERE id = 3 AND status = 'old'", &eq_fp));
  EXPECT_FALSE(eq_fp["parts"].whole_table);
  EXPECT_EQ(eq_fp["parts"].keys, (std::vector<std::string>{Key(3)}));
}

TEST_F(FootprintTest, KeyEncodingMatchesExecutorCoercion) {
  // The executor coerces TS:7 to 7 in an INT64 key column; the footprint
  // must agree or the two statements would claim disjoint keys and race.
  TxnFootprint a, b;
  ASSERT_TRUE(Fold("INSERT INTO parts VALUES (7, 's', 'p', TS:0)", &a));
  ASSERT_TRUE(Fold("DELETE FROM parts WHERE id = TS:7", &b));
  EXPECT_EQ(a["parts"].keys, b["parts"].keys);
}

TEST_F(FootprintTest, UnfootprintableStatementsForceSerialFallback) {
  TxnFootprint fp;
  EXPECT_FALSE(Fold("DELETE FROM ghost WHERE id = 1", &fp));  // unknown table
  EXPECT_FALSE(Fold("SELECT * FROM parts", &fp));             // non-DML

  // Trigger bodies write rows the statement text never mentions.
  class NullSink : public engine::TriggerSink {
   public:
    Status Write(engine::Database*, txn::Transaction*, engine::TriggerEvents,
                 const catalog::Row&, const catalog::Row&) override {
      return Status::OK();
    }
  };
  OPDELTA_ASSERT_OK(db_->CreateTrigger(
      "parts",
      engine::TriggerDef{"t", engine::kOnAll, std::make_shared<NullSink>()}));
  EXPECT_FALSE(Fold("INSERT INTO parts VALUES (1, 'a', 'p', TS:0)", &fp));
}

// --------------------------------------------------------------- barriers

TxnFootprint KeyClaims(const std::string& table, std::vector<int64_t> keys) {
  TxnFootprint fp;
  for (int64_t k : keys) {
    fp[table].keys.push_back(catalog::Value::Int64(k).ToSqlLiteral());
  }
  return fp;
}

TxnFootprint WholeTable(const std::string& table) {
  TxnFootprint fp;
  fp[table].whole_table = true;
  return fp;
}

TEST(ConflictBarrierTest, DisjointFootprintsHaveNoBarriers) {
  const std::vector<TxnFootprint> fps = {
      KeyClaims("a", {1, 2}), KeyClaims("a", {3, 4}), KeyClaims("b", {1}),
      KeyClaims("c", {})};
  EXPECT_EQ(ComputeConflictBarriers(fps),
            (std::vector<int64_t>{-1, -1, -1, -1}));
}

TEST(ConflictBarrierTest, SharedKeysChainToNewestWriter) {
  const std::vector<TxnFootprint> fps = {
      KeyClaims("a", {1}),     // 0
      KeyClaims("a", {2}),     // 1
      KeyClaims("a", {1}),     // 2: conflicts with 0
      KeyClaims("a", {1, 2}),  // 3: newest writers are 2 (key 1), 1 (key 2)
  };
  EXPECT_EQ(ComputeConflictBarriers(fps),
            (std::vector<int64_t>{-1, -1, 0, 2}));
}

TEST(ConflictBarrierTest, WholeTableClaimsBarrierBothDirections) {
  const std::vector<TxnFootprint> fps = {
      KeyClaims("a", {1}),  // 0
      WholeTable("a"),      // 1: must wait for 0
      KeyClaims("a", {9}),  // 2: must wait for the whole-table writer
      KeyClaims("b", {1}),  // 3: different table, free
  };
  EXPECT_EQ(ComputeConflictBarriers(fps),
            (std::vector<int64_t>{-1, 0, 1, -1}));
}

TEST(ConflictBarrierTest, RepeatedKeyWithinOneTxnIsNotASelfConflict) {
  // An INSERT + UPDATE of the same key inside one transaction must not
  // produce barrier == own index (which could never be dispatched).
  const std::vector<TxnFootprint> fps = {KeyClaims("a", {5, 5, 5})};
  EXPECT_EQ(ComputeConflictBarriers(fps), (std::vector<int64_t>{-1}));
}

// ---------------------------------------------------- scheduler semantics

/// Applies `txns` through the parallel scheduler in `batch` -sized ledger
/// batches, accumulating stats.
Status ApplyAll(engine::Database* wh, ApplyLedger* ledger,
                const std::vector<extract::OpDeltaTxn>& txns, size_t threads,
                size_t batch, IntegrationStats* total) {
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  sql::StatementCache cache;
  ParallelApplyScheduler::Options options;
  options.pool = pool.get();
  options.max_inflight = threads;
  options.cache = &cache;
  ParallelApplyScheduler scheduler(wh, options);
  uint64_t seq = 1;
  for (size_t off = 0; off < txns.size(); off += batch) {
    const size_t n = std::min(batch, txns.size() - off);
    std::vector<extract::OpDeltaTxn> slice(txns.begin() + off,
                                           txns.begin() + off + n);
    IntegrationStats stats;
    OPDELTA_RETURN_IF_ERROR(
        scheduler.Apply(slice, Batch(seq++), ledger, &stats));
    total->statements_executed += stats.statements_executed;
    total->transactions += stats.transactions;
    total->txns_parallel += stats.txns_parallel;
    total->duplicate_txns += stats.duplicate_txns;
    total->duplicate_batches += stats.duplicate_batches;
  }
  return Status::OK();
}

/// A seeded op-delta workload over the parts table. Disjoint mode gives
/// every transaction its own key range (empty conflict DAG); conflicting
/// mode draws all keys from a 16-row hot set and sprinkles non-key
/// predicates, so barriers — including whole-table ones — are exercised.
std::vector<extract::OpDeltaTxn> RandomWorkload(uint64_t seed,
                                                bool conflicting,
                                                size_t txn_count) {
  Rng rng(seed);
  std::vector<extract::OpDeltaTxn> txns;
  txns.reserve(txn_count);
  for (size_t t = 0; t < txn_count; ++t) {
    const size_t ops = 1 + rng.Uniform(3);
    std::vector<std::string> sqls;
    for (size_t o = 0; o < ops; ++o) {
      const int64_t key = conflicting
                              ? static_cast<int64_t>(rng.Uniform(16))
                              : static_cast<int64_t>(t * 8 + rng.Uniform(8));
      const uint64_t r = rng.Next();
      const std::string k = std::to_string(key);
      const std::string tag = std::to_string(r % 1000);
      switch (r % 4) {
        case 0:
        case 1:
          sqls.push_back("INSERT INTO parts VALUES (" + k + ", 's" + tag +
                         "', 'p" + tag + "', TS:" + tag + ")");
          break;
        case 2:
          if (conflicting && r % 16 == 2) {
            // Non-key predicate: a whole-table claim in the middle of the
            // batch, serializing everything across it.
            sqls.push_back("UPDATE parts SET payload = 'w" + tag +
                           "' WHERE status = 's" + std::to_string(r % 7) +
                           "'");
          } else {
            sqls.push_back("UPDATE parts SET status = 'u" + tag +
                           "' WHERE id = " + k);
          }
          break;
        default:
          sqls.push_back("DELETE FROM parts WHERE id = " + k);
          break;
      }
    }
    txns.push_back(Txn(static_cast<txn::TxnId>(t + 1), std::move(sqls)));
  }
  return txns;
}

class ConvergenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConvergenceTest, ParallelEqualsSerialOnSeededWorkloads) {
  // The acceptance property: for the same batch stream, the parallel
  // scheduler and the serial integrator converge to identical warehouse
  // states — disjoint and conflicting workloads alike.
  for (const bool conflicting : {false, true}) {
    const std::vector<extract::OpDeltaTxn> txns =
        RandomWorkload(GetParam(), conflicting, 48);
    TempDir dir;
    auto serial_wh = OpenDb(dir, "serial", NoTimestampOptions());
    auto parallel_wh = OpenDb(dir, "parallel", NoTimestampOptions());
    for (engine::Database* db : {serial_wh.get(), parallel_wh.get()}) {
      OPDELTA_ASSERT_OK(
          db->CreateTable("parts", workload::PartsWorkload::Schema()));
      OPDELTA_ASSERT_OK(db->CreateIndex("parts", "id"));
    }
    ApplyLedger serial_ledger(serial_wh.get());
    ApplyLedger parallel_ledger(parallel_wh.get());
    OPDELTA_ASSERT_OK(serial_ledger.Setup());
    OPDELTA_ASSERT_OK(parallel_ledger.Setup());

    IntegrationStats serial_stats, parallel_stats;
    OPDELTA_ASSERT_OK(ApplyAll(serial_wh.get(), &serial_ledger, txns,
                               /*threads=*/1, /*batch=*/12, &serial_stats));
    OPDELTA_ASSERT_OK(ApplyAll(parallel_wh.get(), &parallel_ledger, txns,
                               /*threads=*/4, /*batch=*/12,
                               &parallel_stats));

    EXPECT_EQ(serial_stats.transactions, txns.size());
    EXPECT_EQ(parallel_stats.transactions, txns.size());
    EXPECT_EQ(serial_stats.txns_parallel, 0u);
    EXPECT_GT(parallel_stats.txns_parallel, 0u);
    EXPECT_EQ(parallel_stats.statements_executed,
              serial_stats.statements_executed);
    const SetDigest serial_digest = DigestTable(serial_wh.get(), "parts");
    const SetDigest parallel_digest = DigestTable(parallel_wh.get(), "parts");
    // Digest, not TableContents: the workload can insert duplicate key
    // values, and a map keyed by the key column would arbitrarily keep
    // whichever duplicate the scan visits last — physical placement, not
    // semantics. The multiset digest compares full contents exactly.
    EXPECT_TRUE(serial_digest == parallel_digest)
        << "seed " << GetParam() << (conflicting ? " conflicting" : " disjoint")
        << ": " << serial_digest.ToString() << " vs "
        << parallel_digest.ToString();
    EXPECT_EQ(CountRows(serial_wh.get(), "parts"),
              CountRows(parallel_wh.get(), "parts"));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvergenceTest,
                         ::testing::Values(1u, 7u, 1234u, 90210u, 424242u));

TEST(ParallelApplyTest, ConflictingUpdatesKeepSourceCommitOrder) {
  // Every transaction rewrites the same hot row; barriers must force the
  // source serial order, so the last writer's value survives.
  TempDir dir;
  auto wh = OpenDb(dir, "wh", NoTimestampOptions());
  OPDELTA_ASSERT_OK(
      wh->CreateTable("parts", workload::PartsWorkload::Schema()));
  ApplyLedger ledger(wh.get());
  OPDELTA_ASSERT_OK(ledger.Setup());

  std::vector<extract::OpDeltaTxn> txns;
  txns.push_back(Txn(1, {"INSERT INTO parts VALUES (0, 'v0', 'p', TS:0)"}));
  for (int t = 1; t < 24; ++t) {
    txns.push_back(Txn(t + 1, {"UPDATE parts SET status = 'v" +
                               std::to_string(t) + "' WHERE id = 0"}));
  }
  IntegrationStats stats;
  OPDELTA_ASSERT_OK(ApplyAll(wh.get(), &ledger, txns, /*threads=*/4,
                             /*batch=*/24, &stats));
  EXPECT_EQ(stats.txns_parallel, txns.size());
  const auto contents = testing::TableContents(wh.get(), "parts");
  ASSERT_EQ(contents.size(), 1u);
  EXPECT_EQ(contents.begin()->second[1].AsString(), "v23");
}

TEST(ParallelApplyTest, DuplicateBatchIsDroppedWhole) {
  TempDir dir;
  auto wh = OpenDb(dir, "wh", NoTimestampOptions());
  OPDELTA_ASSERT_OK(
      wh->CreateTable("parts", workload::PartsWorkload::Schema()));
  ApplyLedger ledger(wh.get());
  OPDELTA_ASSERT_OK(ledger.Setup());

  std::vector<extract::OpDeltaTxn> txns;
  for (int t = 0; t < 8; ++t) {
    txns.push_back(Txn(t + 1, {"INSERT INTO parts VALUES (" +
                               std::to_string(t) + ", 's', 'p', TS:0)"}));
  }
  ThreadPool pool(4);
  sql::StatementCache cache;
  ParallelApplyScheduler::Options options;
  options.pool = &pool;
  options.max_inflight = 4;
  options.cache = &cache;
  ParallelApplyScheduler scheduler(wh.get(), options);

  IntegrationStats first;
  OPDELTA_ASSERT_OK(scheduler.Apply(txns, Batch(1), &ledger, &first));
  EXPECT_EQ(first.transactions, 8u);
  EXPECT_EQ(CountRows(wh.get(), "parts"), 8u);

  // Redelivery: op-delta INSERTs applied twice would add physical rows.
  IntegrationStats second;
  OPDELTA_ASSERT_OK(scheduler.Apply(txns, Batch(1), &ledger, &second));
  EXPECT_EQ(second.duplicate_batches, 1u);
  EXPECT_EQ(second.transactions, 0u);
  EXPECT_EQ(CountRows(wh.get(), "parts"), 8u);
}

TEST(ParallelApplyTest, FailureCommitsExactPrefixAndResumes) {
  // A transaction that fails mid-batch must leave exactly the serial
  // outcome: every transaction before it committed and ledgered, nothing
  // at or after it applied — then redelivery resumes at the failure point.
  TempDir dir;
  auto wh = OpenDb(dir, "wh", NoTimestampOptions());
  OPDELTA_ASSERT_OK(
      wh->CreateTable("parts", workload::PartsWorkload::Schema()));
  ApplyLedger ledger(wh.get());
  OPDELTA_ASSERT_OK(ledger.Setup());

  constexpr size_t kPoison = 5;
  std::vector<extract::OpDeltaTxn> txns;
  for (int t = 0; t < 8; ++t) {
    txns.push_back(Txn(t + 1, {"INSERT INTO parts VALUES (" +
                               std::to_string(t) + ", 's', 'p', TS:0)"}));
  }
  // Footprintable (key-equality UPDATE) but fails at execution: the
  // parallel path, not the planner fallback, must produce the prefix.
  txns[kPoison] =
      Txn(kPoison + 1, {"UPDATE parts SET nosuch = 'x' WHERE id = 5"});

  ThreadPool pool(4);
  ParallelApplyScheduler::Options options;
  options.pool = &pool;
  options.max_inflight = 4;
  ParallelApplyScheduler scheduler(wh.get(), options);

  EXPECT_FALSE(scheduler.Apply(txns, Batch(1), &ledger, nullptr).ok());
  EXPECT_EQ(CountRows(wh.get(), "parts"), kPoison);
  Result<ApplyLedger::Watermark> mark = ledger.Get("src");
  OPDELTA_ASSERT_OK(mark.status());
  ASSERT_TRUE(mark.value().exists);
  EXPECT_EQ(mark.value().txns, kPoison);

  // The corrected redelivery (same identity) resumes past the prefix.
  txns[kPoison] = Txn(kPoison + 1, {"INSERT INTO parts VALUES (5, 's', 'p', "
                                    "TS:0)"});
  IntegrationStats stats;
  OPDELTA_ASSERT_OK(scheduler.Apply(txns, Batch(1), &ledger, &stats));
  EXPECT_EQ(stats.duplicate_txns, kPoison);
  EXPECT_EQ(stats.transactions, txns.size() - kPoison);
  EXPECT_EQ(CountRows(wh.get(), "parts"), 8u);
}

TEST(ParallelApplyTest, SerialFallbacksMatchParallelResults) {
  // No pool, single inflight, and unfootprintable batches all take the
  // serial integrator path — and land the same warehouse state.
  const std::vector<extract::OpDeltaTxn> txns =
      RandomWorkload(31337, /*conflicting=*/true, 24);
  TempDir dir;
  SetDigest reference;
  for (const size_t threads : {1, 4}) {
    auto wh = OpenDb(dir, "wh" + std::to_string(threads),
                     NoTimestampOptions());
    OPDELTA_ASSERT_OK(
        wh->CreateTable("parts", workload::PartsWorkload::Schema()));
    ApplyLedger ledger(wh.get());
    OPDELTA_ASSERT_OK(ledger.Setup());
    IntegrationStats stats;
    OPDELTA_ASSERT_OK(
        ApplyAll(wh.get(), &ledger, txns, threads, /*batch=*/8, &stats));
    EXPECT_EQ(stats.transactions, txns.size());
    if (threads == 1) {
      EXPECT_EQ(stats.txns_parallel, 0u);
      reference = DigestTable(wh.get(), "parts");
    } else {
      EXPECT_TRUE(reference == DigestTable(wh.get(), "parts"));
    }
  }
}

TEST(ParallelApplyTest, UnfootprintableBatchFallsBackToSerialApply) {
  // A batch the planner cannot prove safe routes through the serial
  // integrator, whose error and committed prefix become the batch's.
  TempDir dir;
  auto wh = OpenDb(dir, "wh", NoTimestampOptions());
  OPDELTA_ASSERT_OK(
      wh->CreateTable("parts", workload::PartsWorkload::Schema()));
  ApplyLedger ledger(wh.get());
  OPDELTA_ASSERT_OK(ledger.Setup());

  std::vector<extract::OpDeltaTxn> txns;
  txns.push_back(Txn(1, {"INSERT INTO parts VALUES (1, 's', 'p', TS:0)"}));
  txns.push_back(Txn(2, {"DELETE FROM ghost WHERE id = 1"}));  // no footprint
  txns.push_back(Txn(3, {"INSERT INTO parts VALUES (2, 's', 'p', TS:0)"}));

  ThreadPool pool(4);
  ParallelApplyScheduler::Options options;
  options.pool = &pool;
  options.max_inflight = 4;
  ParallelApplyScheduler scheduler(wh.get(), options);
  IntegrationStats stats;
  // The unfootprintable statement fails in both paths; what matters is
  // that the error and prefix are the serial integrator's.
  const Status st = scheduler.Apply(txns, Batch(1), &ledger, &stats);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(CountRows(wh.get(), "parts"), 1u);
  Result<ApplyLedger::Watermark> mark = ledger.Get("src");
  OPDELTA_ASSERT_OK(mark.status());
  EXPECT_EQ(mark.value().txns, 1u);
}

// ------------------------------------------------------------- hub e2e

TEST(HubParallelApplyTest, OpDeltaSourceAppliesInParallelEndToEnd) {
  // apply_threads on a SourceSpec turns the hub's op-delta lane parallel;
  // the warehouse must still converge to the source and the stats must
  // show scheduler commits and statement-cache hits.
  TempDir dir;
  auto src = OpenDb(dir, "src", NoTimestampOptions());
  auto wh = OpenDb(dir, "wh", NoTimestampOptions());
  workload::PartsWorkload wl;
  OPDELTA_ASSERT_OK(wl.CreateTable(src.get(), "parts"));
  OPDELTA_ASSERT_OK(wl.CreateTable(wh.get(), "parts"));

  hub::HubOptions options;
  options.work_dir = dir.Sub("hubw");
  Result<std::unique_ptr<hub::DeltaHub>> hub =
      hub::DeltaHub::Create(wh.get(), options);
  OPDELTA_ASSERT_OK(hub.status());
  hub::SourceSpec spec;
  spec.name = "s1";
  spec.source = src.get();
  spec.method = pipeline::Method::kOpDelta;
  spec.source_table = "parts";
  spec.warehouse_table = "parts";
  spec.apply_threads = 4;
  OPDELTA_ASSERT_OK((*hub)->AddSource(spec));
  OPDELTA_ASSERT_OK((*hub)->Setup());

  extract::OpDeltaCapture* capture = (*hub)->capture("s1");
  ASSERT_NE(capture, nullptr);
  for (int round = 0; round < 3; ++round) {
    // Several disjoint transactions per round: one batch, empty conflict
    // DAG, so the scheduler genuinely runs them through the pool.
    for (int t = 0; t < 4; ++t) {
      const int64_t base = round * 80 + t * 20;
      OPDELTA_ASSERT_OK(
          capture->RunTransaction({wl.MakeInsert("parts", base, 20)})
              .status());
    }
    OPDELTA_ASSERT_OK((*hub)->RunRound());
  }

  EXPECT_TRUE(TablesEqual(src.get(), "parts", wh.get(), "parts"));
  const hub::HubStats stats = (*hub)->Stats();
  ASSERT_EQ(stats.sources.size(), 1u);
  EXPECT_EQ(stats.sources[0].apply_threads, 4u);
  EXPECT_GT(stats.txns_parallel, 0u);
  EXPECT_EQ(stats.sources[0].txns_parallel, stats.txns_parallel);
  // Twelve single-shape transactions: the cache misses once per epoch
  // shape and hits for the rest.
  EXPECT_GT(stats.stmt_cache_hits, 0u);
  OPDELTA_ASSERT_OK((*hub)->Stop());
}

}  // namespace
}  // namespace opdelta::warehouse
