#include <gtest/gtest.h>

#include "common/random.h"
#include "extract/op_delta.h"
#include "sql/executor.h"
#include "warehouse/join_view.h"
#include "workload/workload.h"
#include "tests/test_util.h"

namespace opdelta::warehouse {
namespace {

using catalog::Column;
using catalog::Row;
using catalog::Value;
using catalog::ValueType;
using engine::CompareOp;
using engine::Predicate;
using extract::OpDeltaTxn;
using opdelta::testing::OpenDb;
using opdelta::testing::TempDir;

/// Orders: order_id, supplier_id (fk), status, qty.
catalog::Schema OrdersSchema() {
  return catalog::Schema({Column{"order_id", ValueType::kInt64},
                          Column{"supplier_id", ValueType::kInt64},
                          Column{"status", ValueType::kString},
                          Column{"qty", ValueType::kInt64}});
}

/// Suppliers: supplier_id, name, region.
catalog::Schema SuppliersSchema() {
  return catalog::Schema({Column{"supplier_id", ValueType::kInt64},
                          Column{"name", ValueType::kString},
                          Column{"region", ValueType::kString}});
}

class JoinViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine::DatabaseOptions options;
    options.auto_timestamp = false;
    src_ = OpenDb(dir_, "src", options);
    wh_ = OpenDb(dir_, "wh", options);
    OPDELTA_ASSERT_OK(src_->CreateTable("orders", OrdersSchema()));
    OPDELTA_ASSERT_OK(src_->CreateTable("suppliers", SuppliersSchema()));

    def_.view_table = "orders_by_supplier";
    def_.fact_table = "orders";
    def_.dim_table = "suppliers";
    def_.fact_fk_column = "supplier_id";
    def_.fact_projection = {{"order_id", "order_id"},
                            {"supplier_id", "supplier_id"},
                            {"qty", "qty"}};
    def_.dim_projection = {{"name", "supplier_name"},
                           {"region", "supplier_region"}};
    def_.fact_selection =
        Predicate::Where("status", CompareOp::kNe, Value::String("void"));

    Result<std::unique_ptr<JoinViewMaintainer>> jm =
        JoinViewMaintainer::CreateTables(wh_.get(), def_, OrdersSchema(),
                                         SuppliersSchema());
    ASSERT_TRUE(jm.ok()) << jm.status().ToString();
    maintainer_ = std::move(*jm);

    exec_ = std::make_unique<sql::Executor>(src_.get());
    Result<std::unique_ptr<extract::OpDeltaFileSink>> sink =
        extract::OpDeltaFileSink::Create(dir_.Sub("ops.log"));
    ASSERT_TRUE(sink.ok());
    extract::OpDeltaCapture::Options copt;
    copt.hybrid_before_images = true;
    capture_ = std::make_unique<extract::OpDeltaCapture>(
        exec_.get(), std::shared_ptr<extract::OpDeltaSink>(std::move(*sink)),
        copt);
  }

  sql::Statement InsertSupplier(int64_t id, const std::string& name,
                                const std::string& region) {
    sql::InsertStmt s;
    s.table = "suppliers";
    s.rows.push_back(
        {Value::Int64(id), Value::String(name), Value::String(region)});
    return sql::Statement(std::move(s));
  }

  sql::Statement InsertOrder(int64_t id, int64_t supplier,
                             const std::string& status, int64_t qty) {
    sql::InsertStmt s;
    s.table = "orders";
    s.rows.push_back({Value::Int64(id), Value::Int64(supplier),
                      Value::String(status), Value::Int64(qty)});
    return sql::Statement(std::move(s));
  }

  /// Runs stmts as one captured txn and applies the newest txn to the view.
  Status RunAndMaintain(const std::vector<sql::Statement>& stmts) {
    OPDELTA_RETURN_IF_ERROR(capture_->RunTransaction(stmts).status());
    std::vector<OpDeltaTxn> txns;
    const extract::SchemaMap schemas = {{"orders", OrdersSchema()},
                                        {"suppliers", SuppliersSchema()}};
    OPDELTA_RETURN_IF_ERROR(extract::OpDeltaLogReader::ReadFile(
        dir_.Sub("ops.log"), schemas, &txns));
    return maintainer_->ApplyTxn(txns.back());
  }

  ::testing::AssertionResult ViewMatchesRecompute() {
    Result<std::vector<Row>> expected =
        JoinViewMaintainer::ComputeFromSource(src_.get(), def_);
    if (!expected.ok()) {
      return ::testing::AssertionFailure() << expected.status().ToString();
    }
    Result<std::vector<Row>> actual = maintainer_->Materialized();
    if (!actual.ok()) {
      return ::testing::AssertionFailure() << actual.status().ToString();
    }
    if (expected->size() != actual->size()) {
      return ::testing::AssertionFailure()
             << "view " << actual->size() << " rows vs recompute "
             << expected->size();
    }
    for (size_t i = 0; i < expected->size(); ++i) {
      if (catalog::CompareRows((*expected)[i], (*actual)[i]) != 0) {
        return ::testing::AssertionFailure() << "row " << i << " differs";
      }
    }
    return ::testing::AssertionSuccess();
  }

  TempDir dir_;
  std::unique_ptr<engine::Database> src_, wh_;
  JoinViewDef def_;
  std::unique_ptr<JoinViewMaintainer> maintainer_;
  std::unique_ptr<sql::Executor> exec_;
  std::unique_ptr<extract::OpDeltaCapture> capture_;
};

TEST_F(JoinViewTest, SchemaCombinesBothSides) {
  engine::Table* vt = wh_->GetTable("orders_by_supplier");
  ASSERT_NE(vt, nullptr);
  EXPECT_EQ(vt->schema().num_columns(), 5u);
  EXPECT_EQ(vt->schema().column(3).name, "supplier_name");
  // Aux copy mirrors the dimension exactly.
  engine::Table* aux = wh_->GetTable(maintainer_->aux_table());
  ASSERT_NE(aux, nullptr);
  EXPECT_TRUE(aux->schema() == SuppliersSchema());
}

TEST_F(JoinViewTest, FactInsertJoinsAgainstAuxCopy) {
  OPDELTA_ASSERT_OK(RunAndMaintain({InsertSupplier(1, "Acme", "west"),
                                    InsertSupplier(2, "Bolt", "east")}));
  OPDELTA_ASSERT_OK(RunAndMaintain({InsertOrder(100, 1, "open", 5),
                                    InsertOrder(101, 2, "open", 7),
                                    InsertOrder(102, 1, "void", 9)}));
  Result<std::vector<Row>> rows = maintainer_->Materialized();
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);  // void order filtered by the selection
  EXPECT_EQ((*rows)[0][3].AsString(), "Acme");
  EXPECT_EQ((*rows)[1][3].AsString(), "Bolt");
  EXPECT_TRUE(ViewMatchesRecompute());
}

TEST_F(JoinViewTest, FactInsertWithDanglingFkFails) {
  Status st = RunAndMaintain({InsertOrder(1, 999, "open", 1)});
  EXPECT_TRUE(st.IsNotFound()) << st.ToString();
}

TEST_F(JoinViewTest, DimensionUpdatePropagatesToViewRows) {
  OPDELTA_ASSERT_OK(RunAndMaintain({InsertSupplier(1, "Acme", "west")}));
  OPDELTA_ASSERT_OK(RunAndMaintain({InsertOrder(100, 1, "open", 5),
                                    InsertOrder(101, 1, "open", 6)}));
  // Rename the supplier at the source.
  sql::UpdateStmt u;
  u.table = "suppliers";
  u.sets = {engine::Assignment{"name", Value::String("AcmeCorp")}};
  u.where = Predicate::Where("supplier_id", CompareOp::kEq, Value::Int64(1));
  OPDELTA_ASSERT_OK(RunAndMaintain({sql::Statement(u)}));

  Result<std::vector<Row>> rows = maintainer_->Materialized();
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][3].AsString(), "AcmeCorp");
  EXPECT_EQ((*rows)[1][3].AsString(), "AcmeCorp");
  EXPECT_TRUE(ViewMatchesRecompute());
}

TEST_F(JoinViewTest, FactUpdateChangingFkRejoins) {
  OPDELTA_ASSERT_OK(RunAndMaintain({InsertSupplier(1, "Acme", "west"),
                                    InsertSupplier(2, "Bolt", "east")}));
  OPDELTA_ASSERT_OK(RunAndMaintain({InsertOrder(100, 1, "open", 5)}));
  // Reassign the order to supplier 2 (fk touch -> before-image path).
  sql::UpdateStmt u;
  u.table = "orders";
  u.sets = {engine::Assignment{"supplier_id", Value::Int64(2)}};
  u.where = Predicate::Where("order_id", CompareOp::kEq, Value::Int64(100));
  OPDELTA_ASSERT_OK(RunAndMaintain({sql::Statement(u)}));

  Result<std::vector<Row>> rows = maintainer_->Materialized();
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][3].AsString(), "Bolt");
  EXPECT_TRUE(ViewMatchesRecompute());
}

TEST_F(JoinViewTest, SelectionTransitionsViaBeforeImages) {
  OPDELTA_ASSERT_OK(RunAndMaintain({InsertSupplier(1, "Acme", "west")}));
  OPDELTA_ASSERT_OK(RunAndMaintain({InsertOrder(100, 1, "open", 5)}));
  // Void the order: it leaves the view.
  sql::UpdateStmt u;
  u.table = "orders";
  u.sets = {engine::Assignment{"status", Value::String("void")}};
  u.where = Predicate::Where("order_id", CompareOp::kEq, Value::Int64(100));
  OPDELTA_ASSERT_OK(RunAndMaintain({sql::Statement(u)}));
  Result<std::vector<Row>> rows = maintainer_->Materialized();
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
  EXPECT_TRUE(ViewMatchesRecompute());
}

TEST_F(JoinViewTest, OpOnlyFactUpdateAndDelete) {
  OPDELTA_ASSERT_OK(RunAndMaintain({InsertSupplier(1, "Acme", "west")}));
  OPDELTA_ASSERT_OK(RunAndMaintain({InsertOrder(100, 1, "open", 5),
                                    InsertOrder(101, 1, "open", 6)}));
  // qty is projected and not a selection/fk column: op-only update.
  sql::UpdateStmt u;
  u.table = "orders";
  u.sets = {engine::Assignment{"qty", Value::Int64(50)}};
  u.where = Predicate::Where("order_id", CompareOp::kEq, Value::Int64(100));
  OPDELTA_ASSERT_OK(RunAndMaintain({sql::Statement(u)}));
  EXPECT_TRUE(ViewMatchesRecompute());

  // order_id is projected: op-only delete.
  sql::DeleteStmt d;
  d.table = "orders";
  d.where = Predicate::Where("order_id", CompareOp::kEq, Value::Int64(101));
  OPDELTA_ASSERT_OK(RunAndMaintain({sql::Statement(d)}));
  EXPECT_TRUE(ViewMatchesRecompute());
  Result<std::vector<Row>> rows = maintainer_->Materialized();
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][2].AsInt64(), 50);
}

TEST_F(JoinViewTest, DimensionDeleteGuardedByIntegrity) {
  OPDELTA_ASSERT_OK(RunAndMaintain({InsertSupplier(1, "Acme", "west")}));
  OPDELTA_ASSERT_OK(RunAndMaintain({InsertOrder(100, 1, "open", 5)}));
  // Source-side integrity is the application's job; the maintainer rejects
  // the dangling delete when it arrives.
  sql::DeleteStmt d;
  d.table = "suppliers";
  d.where = Predicate::Where("supplier_id", CompareOp::kEq, Value::Int64(1));
  OPDELTA_ASSERT_OK(exec_->ExecuteSql(sql::Statement(d).ToSql()).status());
  OpDeltaTxn txn{99, {extract::OpDeltaRecord{
                         99, 1, sql::Statement(d).ToSql(), false, {}}}};
  Status st = maintainer_->ApplyTxn(txn);
  EXPECT_FALSE(st.ok());

  // After the referencing order goes away, the delete is fine.
  sql::DeleteStmt d2;
  d2.table = "orders";
  d2.where = Predicate::Where("order_id", CompareOp::kEq, Value::Int64(100));
  OpDeltaTxn t2{100, {extract::OpDeltaRecord{
                         100, 2, sql::Statement(d2).ToSql(), false, {}}}};
  OPDELTA_ASSERT_OK(maintainer_->ApplyTxn(t2));
  OPDELTA_ASSERT_OK(maintainer_->ApplyTxn(txn));
  EXPECT_EQ(opdelta::testing::CountRows(wh_.get(), maintainer_->aux_table()),
            0u);
}

TEST_F(JoinViewTest, RandomizedMaintenanceMatchesRecompute) {
  Rng rng(123);
  // Seed dimensions.
  std::vector<sql::Statement> suppliers;
  const char* regions[] = {"west", "east", "north"};
  for (int64_t s = 1; s <= 5; ++s) {
    suppliers.push_back(
        InsertSupplier(s, "S" + std::to_string(s), regions[s % 3]));
  }
  OPDELTA_ASSERT_OK(RunAndMaintain(suppliers));

  int64_t next_order = 0;
  const char* statuses[] = {"open", "void", "closed"};
  for (int step = 0; step < 40; ++step) {
    std::vector<sql::Statement> stmts;
    switch (rng.Uniform(4)) {
      case 0: {  // insert 1-5 orders
        const size_t n = 1 + rng.Uniform(5);
        for (size_t i = 0; i < n; ++i) {
          stmts.push_back(InsertOrder(next_order++,
                                      1 + rng.Uniform(5),
                                      statuses[rng.Uniform(3)],
                                      rng.Uniform(100)));
        }
        break;
      }
      case 1: {  // update order status / qty / fk
        sql::UpdateStmt u;
        u.table = "orders";
        switch (rng.Uniform(3)) {
          case 0:
            u.sets = {engine::Assignment{
                "status", Value::String(statuses[rng.Uniform(3)])}};
            break;
          case 1:
            u.sets = {engine::Assignment{
                "qty", Value::Int64(static_cast<int64_t>(rng.Uniform(500)))}};
            break;
          default:
            u.sets = {engine::Assignment{
                "supplier_id",
                Value::Int64(1 + static_cast<int64_t>(rng.Uniform(5)))}};
            break;
        }
        int64_t lo = rng.Uniform(std::max<int64_t>(next_order, 1));
        u.where =
            Predicate::Where("order_id", CompareOp::kGe, Value::Int64(lo))
                .And("order_id", CompareOp::kLt,
                     Value::Int64(lo + 1 + rng.Uniform(6)));
        stmts.push_back(sql::Statement(std::move(u)));
        break;
      }
      case 2: {  // delete orders
        sql::DeleteStmt d;
        d.table = "orders";
        int64_t lo = rng.Uniform(std::max<int64_t>(next_order, 1));
        d.where =
            Predicate::Where("order_id", CompareOp::kGe, Value::Int64(lo))
                .And("order_id", CompareOp::kLt,
                     Value::Int64(lo + 1 + rng.Uniform(4)));
        stmts.push_back(sql::Statement(std::move(d)));
        break;
      }
      default: {  // rename a supplier
        sql::UpdateStmt u;
        u.table = "suppliers";
        u.sets = {engine::Assignment{
            "name", Value::String("S" + std::to_string(rng.Uniform(1000)))}};
        u.where = Predicate::Where(
            "supplier_id", CompareOp::kEq,
            Value::Int64(1 + static_cast<int64_t>(rng.Uniform(5))));
        stmts.push_back(sql::Statement(std::move(u)));
        break;
      }
    }
    OPDELTA_ASSERT_OK(RunAndMaintain(stmts));
    ASSERT_TRUE(ViewMatchesRecompute()) << "after step " << step;
  }
}

TEST(JoinViewValidationTest, RequiresFkProjection) {
  TempDir dir;
  engine::DatabaseOptions options;
  auto wh = OpenDb(dir, "wh", options);
  JoinViewDef def;
  def.view_table = "v";
  def.fact_table = "orders";
  def.dim_table = "suppliers";
  def.fact_fk_column = "supplier_id";
  def.fact_projection = {{"order_id", "order_id"}};  // fk missing
  def.dim_projection = {{"name", "name"}};
  EXPECT_FALSE(JoinViewMaintainer::CreateTables(
                   wh.get(), def, OrdersSchema(), SuppliersSchema())
                   .ok());
}

TEST(JoinViewValidationTest, RequiresFactKeyFirst) {
  TempDir dir;
  auto wh = OpenDb(dir, "wh");
  JoinViewDef def;
  def.view_table = "v";
  def.fact_table = "orders";
  def.dim_table = "suppliers";
  def.fact_fk_column = "supplier_id";
  def.fact_projection = {{"supplier_id", "sid"}, {"order_id", "oid"}};
  def.dim_projection = {{"name", "name"}};
  EXPECT_FALSE(JoinViewMaintainer::CreateTables(
                   wh.get(), def, OrdersSchema(), SuppliersSchema())
                   .ok());
}

}  // namespace
}  // namespace opdelta::warehouse
