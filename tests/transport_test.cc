#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>

#include "transport/file_transport.h"
#include "transport/network_simulator.h"
#include "transport/persistent_queue.h"
#include "tests/test_util.h"

namespace opdelta::transport {
namespace {

using opdelta::testing::TempDir;

// -------------------------------------------------------- NetworkSimulator

TEST(NetworkSimulatorTest, LoopbackIsFree) {
  NetworkSimulator net(NetworkSimulator::Loopback());
  Stopwatch sw;
  for (int i = 0; i < 100; ++i) net.RoundTrip(1000);
  EXPECT_LT(sw.ElapsedMicros(), 50000);
  EXPECT_EQ(net.round_trips(), 100u);
  EXPECT_EQ(net.bytes_transferred(), 100000u);
  EXPECT_EQ(net.simulated_micros(), 0);
}

TEST(NetworkSimulatorTest, RoundTripCostsWallTime) {
  NetworkSimulator::Profile profile{2000, 0.0, 0};
  NetworkSimulator net(profile);
  Stopwatch sw;
  net.RoundTrip(0);
  EXPECT_GE(sw.ElapsedMicros(), 2000);
  EXPECT_EQ(net.simulated_micros(), 2000);
}

TEST(NetworkSimulatorTest, BandwidthScalesWithPayload) {
  NetworkSimulator::Profile profile{0, 1.0, 0};  // 1 us per byte
  NetworkSimulator net(profile);
  Stopwatch sw;
  net.Transfer(5000);
  EXPECT_GE(sw.ElapsedMicros(), 5000);
}

TEST(NetworkSimulatorTest, ConnectPaidOnce) {
  NetworkSimulator::Profile profile{0, 0.0, 3000};
  NetworkSimulator net(profile);
  Stopwatch sw;
  net.Connect();
  EXPECT_GE(sw.ElapsedMicros(), 3000);
}

TEST(NetworkSimulatorTest, ProfilesOrdered) {
  // The same-machine IPC profile must be cheaper than the LAN profile,
  // matching the paper's one-vs-two orders of magnitude observation.
  auto ipc = NetworkSimulator::SameMachineIpc();
  auto lan = NetworkSimulator::SwitchedLan10Mbps();
  EXPECT_LT(ipc.round_trip_micros, lan.round_trip_micros);
  EXPECT_LT(ipc.micros_per_byte, lan.micros_per_byte);
}

// ----------------------------------------------------------- FileTransport

TEST(FileTransportTest, ShipsFileAndCounts) {
  TempDir dir;
  Env* env = Env::Default();
  const std::string src = dir.Sub("delta.csv");
  OPDELTA_ASSERT_OK(env->WriteStringToFile(src, Slice("1,2,3\n4,5,6\n")));
  NetworkSimulator net(NetworkSimulator::Loopback());
  FileTransport transport(&net);
  const std::string dst = dir.Sub("shipped.csv");
  OPDELTA_ASSERT_OK(transport.Ship(src, dst));
  std::string data;
  OPDELTA_ASSERT_OK(env->ReadFileToString(dst, &data));
  EXPECT_EQ(data, "1,2,3\n4,5,6\n");
  EXPECT_EQ(transport.files_shipped(), 1u);
  EXPECT_EQ(transport.bytes_shipped(), 12u);
  EXPECT_EQ(net.bytes_transferred(), 12u);
}

TEST(FileTransportTest, MissingSourceErrors) {
  TempDir dir;
  NetworkSimulator net(NetworkSimulator::Loopback());
  FileTransport transport(&net);
  EXPECT_FALSE(transport.Ship(dir.Sub("nope"), dir.Sub("out")).ok());
}

// --------------------------------------------------------- PersistentQueue

TEST(PersistentQueueTest, FifoOrder) {
  TempDir dir;
  PersistentQueue q;
  OPDELTA_ASSERT_OK(q.Open(dir.Sub("q")));
  OPDELTA_ASSERT_OK(q.Enqueue(Slice("first")));
  OPDELTA_ASSERT_OK(q.Enqueue(Slice("second")));
  OPDELTA_ASSERT_OK(q.Enqueue(Slice("third")));

  std::string msg;
  OPDELTA_ASSERT_OK(q.Peek(&msg));
  EXPECT_EQ(msg, "first");
  OPDELTA_ASSERT_OK(q.Ack());
  OPDELTA_ASSERT_OK(q.Peek(&msg));
  EXPECT_EQ(msg, "second");
  OPDELTA_ASSERT_OK(q.Ack());
  OPDELTA_ASSERT_OK(q.Peek(&msg));
  EXPECT_EQ(msg, "third");
  OPDELTA_ASSERT_OK(q.Ack());
  EXPECT_TRUE(q.Peek(&msg).IsNotFound());
}

TEST(PersistentQueueTest, PeekWithoutAckRedelivers) {
  TempDir dir;
  PersistentQueue q;
  OPDELTA_ASSERT_OK(q.Open(dir.Sub("q")));
  OPDELTA_ASSERT_OK(q.Enqueue(Slice("msg")));
  std::string a, b;
  OPDELTA_ASSERT_OK(q.Peek(&a));
  OPDELTA_ASSERT_OK(q.Peek(&b));  // at-least-once: same message again
  EXPECT_EQ(a, b);
}

TEST(PersistentQueueTest, AckWithoutPeekRejected) {
  TempDir dir;
  PersistentQueue q;
  OPDELTA_ASSERT_OK(q.Open(dir.Sub("q")));
  EXPECT_FALSE(q.Ack().ok());
}

TEST(PersistentQueueTest, SurvivesReopen) {
  TempDir dir;
  {
    PersistentQueue q;
    OPDELTA_ASSERT_OK(q.Open(dir.Sub("q")));
    OPDELTA_ASSERT_OK(q.Enqueue(Slice("a"), /*durable=*/true));
    OPDELTA_ASSERT_OK(q.Enqueue(Slice("b"), /*durable=*/true));
    std::string msg;
    OPDELTA_ASSERT_OK(q.Peek(&msg));
    OPDELTA_ASSERT_OK(q.Ack());  // consume "a"
    OPDELTA_ASSERT_OK(q.Close());
  }
  PersistentQueue q;
  OPDELTA_ASSERT_OK(q.Open(dir.Sub("q")));
  std::string msg;
  OPDELTA_ASSERT_OK(q.Peek(&msg));
  EXPECT_EQ(msg, "b");  // cursor survived; "a" stays consumed
}

TEST(PersistentQueueTest, BacklogCountsUnconsumed) {
  TempDir dir;
  PersistentQueue q;
  OPDELTA_ASSERT_OK(q.Open(dir.Sub("q")));
  for (int i = 0; i < 5; ++i) {
    OPDELTA_ASSERT_OK(q.Enqueue(Slice("m" + std::to_string(i))));
  }
  Result<uint64_t> backlog = q.Backlog();
  ASSERT_TRUE(backlog.ok());
  EXPECT_EQ(*backlog, 5u);
  std::string msg;
  OPDELTA_ASSERT_OK(q.Peek(&msg));
  OPDELTA_ASSERT_OK(q.Ack());
  backlog = q.Backlog();
  EXPECT_EQ(*backlog, 4u);
}

TEST(PersistentQueueTest, LargeAndBinaryMessages) {
  TempDir dir;
  PersistentQueue q;
  OPDELTA_ASSERT_OK(q.Open(dir.Sub("q")));
  std::string binary(10000, '\0');
  for (size_t i = 0; i < binary.size(); ++i) {
    binary[i] = static_cast<char>(i % 256);
  }
  OPDELTA_ASSERT_OK(q.Enqueue(Slice(binary)));
  std::string msg;
  OPDELTA_ASSERT_OK(q.Peek(&msg));
  EXPECT_EQ(msg, binary);
}

TEST(PersistentQueueTest, ConcurrentProducerSingleConsumer) {
  TempDir dir;
  PersistentQueue q;
  OPDELTA_ASSERT_OK(q.Open(dir.Sub("q")));

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  std::vector<std::thread> producers;
  std::atomic<int> enqueue_failures{0};
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p]() {
      for (int i = 0; i < kPerProducer; ++i) {
        std::string msg =
            std::to_string(p) + ":" + std::to_string(i);
        if (!q.Enqueue(Slice(msg)).ok()) enqueue_failures++;
      }
    });
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(enqueue_failures.load(), 0);

  // Drain: every message exactly once, and per-producer order preserved
  // (the log is append-ordered; interleaving across producers is free).
  std::map<int, int> next_expected;
  int total = 0;
  while (true) {
    std::string msg;
    Status st = q.Peek(&msg);
    if (st.IsNotFound()) break;
    OPDELTA_ASSERT_OK(st);
    const int producer = std::stoi(msg.substr(0, msg.find(':')));
    const int seq = std::stoi(msg.substr(msg.find(':') + 1));
    EXPECT_EQ(seq, next_expected[producer]) << "producer " << producer;
    next_expected[producer] = seq + 1;
    ++total;
    OPDELTA_ASSERT_OK(q.Ack());
  }
  EXPECT_EQ(total, kProducers * kPerProducer);
}

TEST(PersistentQueueTest, ConcurrentProducersWithLiveConsumer) {
  // The hub's shape: several producers enqueueing while a consumer
  // Peek/Acks concurrently and other threads read enqueued()/Backlog().
  // Counts must come out exact — this is the test that catches the
  // formerly-unsynchronized enqueued_ counter under TSan.
  TempDir dir;
  PersistentQueue q;
  OPDELTA_ASSERT_OK(q.Open(dir.Sub("q")));

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  constexpr int kTotal = kProducers * kPerProducer;

  std::atomic<int> enqueue_failures{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p]() {
      for (int i = 0; i < kPerProducer; ++i) {
        std::string msg = std::to_string(p) + ":" + std::to_string(i);
        if (!q.Enqueue(Slice(msg)).ok()) enqueue_failures++;
      }
    });
  }

  // Consumer drains concurrently until it has seen every message.
  std::map<int, int> next_expected;
  int consumed = 0;
  std::thread consumer([&]() {
    while (consumed < kTotal) {
      std::string msg;
      Status st = q.Peek(&msg);
      if (st.IsNotFound()) continue;  // producers still catching up
      OPDELTA_ASSERT_OK(st);
      const int producer = std::stoi(msg.substr(0, msg.find(':')));
      const int seq = std::stoi(msg.substr(msg.find(':') + 1));
      EXPECT_EQ(seq, next_expected[producer]) << "producer " << producer;
      next_expected[producer] = seq + 1;
      ++consumed;
      OPDELTA_ASSERT_OK(q.Ack());
    }
  });

  // Monitor thread exercising the lock-free enqueued() reader.
  std::atomic<bool> stop_monitor{false};
  std::thread monitor([&]() {
    uint64_t last = 0;
    while (!stop_monitor.load()) {
      const uint64_t now = q.enqueued();
      EXPECT_GE(now, last);  // monotone
      EXPECT_LE(now, static_cast<uint64_t>(kTotal));
      last = now;
    }
  });

  for (auto& t : producers) t.join();
  consumer.join();
  stop_monitor.store(true);
  monitor.join();

  EXPECT_EQ(enqueue_failures.load(), 0);
  EXPECT_EQ(consumed, kTotal);
  EXPECT_EQ(q.enqueued(), static_cast<uint64_t>(kTotal));
  Result<uint64_t> backlog = q.Backlog();
  ASSERT_TRUE(backlog.ok());
  EXPECT_EQ(*backlog, 0u);  // fully drained: backlog exact
}

TEST(PersistentQueueTest, CorruptMessageDetected) {
  TempDir dir;
  PersistentQueue q;
  OPDELTA_ASSERT_OK(q.Open(dir.Sub("q")));
  OPDELTA_ASSERT_OK(q.Enqueue(Slice("important payload"), true));
  OPDELTA_ASSERT_OK(q.Close());

  // Corrupt the log body: a complete frame with a bad CRC is real damage,
  // so recovery refuses the queue outright at Open.
  const std::string log = dir.Sub("q") + "/queue.log";
  std::string data;
  OPDELTA_ASSERT_OK(Env::Default()->ReadFileToString(log, &data));
  data[10] ^= 0xFF;
  OPDELTA_ASSERT_OK(Env::Default()->WriteStringToFile(log, Slice(data)));

  PersistentQueue reopened;
  Status st = reopened.Open(dir.Sub("q"));
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
}

TEST(PersistentQueueTest, TornTailTruncatedAndQueueContinues) {
  TempDir dir;
  PersistentQueue q;
  OPDELTA_ASSERT_OK(q.Open(dir.Sub("q")));
  OPDELTA_ASSERT_OK(q.Enqueue(Slice("alpha"), true));
  OPDELTA_ASSERT_OK(q.Enqueue(Slice("beta"), true));
  std::string msg;
  OPDELTA_ASSERT_OK(q.Peek(&msg));
  OPDELTA_ASSERT_OK(q.Ack());  // cursor advanced past "alpha"
  OPDELTA_ASSERT_OK(q.Close());

  // A crash mid-append leaves a torn frame at the tail: a header claiming
  // more body bytes than exist. Recovery truncates it and continues.
  const std::string log = dir.Sub("q") + "/queue.log";
  std::string data;
  OPDELTA_ASSERT_OK(Env::Default()->ReadFileToString(log, &data));
  const uint64_t intact_size = data.size();
  data.append("\x80\x00\x00\x00\xde\xad\xbe\xef", 8);  // len=128, no body
  data.append("torn", 4);
  OPDELTA_ASSERT_OK(Env::Default()->WriteStringToFile(log, Slice(data)));

  PersistentQueue reopened;
  OPDELTA_ASSERT_OK(reopened.Open(dir.Sub("q")));
  uint64_t size = 0;
  OPDELTA_ASSERT_OK(Env::Default()->GetFileSize(log, &size));
  EXPECT_EQ(size, intact_size);  // torn tail gone, intact frames kept

  // The surviving backlog replays and the queue accepts new appends
  // starting at a clean frame boundary.
  OPDELTA_ASSERT_OK(reopened.Peek(&msg));
  EXPECT_EQ(msg, "beta");
  OPDELTA_ASSERT_OK(reopened.Ack());
  OPDELTA_ASSERT_OK(reopened.Enqueue(Slice("gamma"), true));
  OPDELTA_ASSERT_OK(reopened.Peek(&msg));
  EXPECT_EQ(msg, "gamma");
}

TEST(PersistentQueueTest, ForEachMessageVisitorMayReenterQueue) {
  // Regression: the visitor used to run under the queue mutex, so any
  // callback touching the queue self-deadlocked. It now runs over a prefix
  // snapshot without the lock; re-entrant Enqueue must work, and the
  // messages it appends land past the snapshot and are not visited.
  TempDir dir;
  PersistentQueue q;
  OPDELTA_ASSERT_OK(q.Open(dir.Sub("q")));
  OPDELTA_ASSERT_OK(q.Enqueue(Slice("a"), true));
  OPDELTA_ASSERT_OK(q.Enqueue(Slice("b"), true));

  int visited = 0;
  OPDELTA_ASSERT_OK(q.ForEachMessage([&](Slice message) {
    ++visited;
    Status echo = q.Enqueue(Slice("echo-" + message.ToString()), true);
    EXPECT_TRUE(echo.ok()) << echo.ToString();
    return true;
  }));
  EXPECT_EQ(visited, 2);  // the snapshot excludes the re-entrant appends

  std::map<std::string, int> seen;
  OPDELTA_ASSERT_OK(q.ForEachMessage([&](Slice message) {
    seen[message.ToString()]++;
    return true;
  }));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen["echo-a"], 1);
  EXPECT_EQ(seen["echo-b"], 1);
}

// ----------------------------------------------------------- backlog bound

TEST(PersistentQueueTest, BoundedBacklogSurfacesBackpressure) {
  TempDir dir;
  PersistentQueue q;
  // Each 10-byte message frames to 18 bytes (4-byte length + 4-byte CRC).
  OPDELTA_ASSERT_OK(q.Open(dir.Sub("q"), /*max_backlog_bytes=*/40));
  OPDELTA_ASSERT_OK(q.Enqueue(Slice("0123456789")));
  OPDELTA_ASSERT_OK(q.Enqueue(Slice("abcdefghij")));
  Status st = q.Enqueue(Slice("KLMNOPQRST"));
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();

  // Backpressure, not loss: nothing was appended, FIFO order holds, and a
  // drain re-admits the retained message.
  std::string msg;
  OPDELTA_ASSERT_OK(q.Peek(&msg));
  EXPECT_EQ(msg, "0123456789");
  OPDELTA_ASSERT_OK(q.Ack());
  OPDELTA_ASSERT_OK(q.Enqueue(Slice("KLMNOPQRST")));
  OPDELTA_ASSERT_OK(q.Peek(&msg));
  EXPECT_EQ(msg, "abcdefghij");
  OPDELTA_ASSERT_OK(q.Ack());
  OPDELTA_ASSERT_OK(q.Peek(&msg));
  EXPECT_EQ(msg, "KLMNOPQRST");
}

TEST(PersistentQueueTest, OversizedMessageAdmittedIntoEmptyBacklog) {
  TempDir dir;
  PersistentQueue q;
  OPDELTA_ASSERT_OK(q.Open(dir.Sub("q"), /*max_backlog_bytes=*/16));
  // Larger than the bound, but the backlog is empty: admitting it is the
  // only way the queue can ever make progress on it.
  const std::string big(64, 'x');
  OPDELTA_ASSERT_OK(q.Enqueue(Slice(big)));
  // With the oversized message pending, everything else must wait...
  EXPECT_EQ(q.Enqueue(Slice("tiny")).code(), StatusCode::kResourceExhausted);
  // ...until it drains.
  std::string msg;
  OPDELTA_ASSERT_OK(q.Peek(&msg));
  EXPECT_EQ(msg, big);
  OPDELTA_ASSERT_OK(q.Ack());
  OPDELTA_ASSERT_OK(q.Enqueue(Slice("tiny")));
}

// ----------------------------------------------------------- link faults

TEST(NetworkSimulatorTest, DropFaultsReturnIOErrorAndCount) {
  NetworkSimulator net(NetworkSimulator::Loopback());
  NetworkSimulator::FaultProfile faults;
  faults.drop_probability = 1.0;
  net.SetFaults(faults);

  Status st = net.TryRoundTrip(100);
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_TRUE(net.TryTransfer(100).IsIOError());
  EXPECT_EQ(net.drops(), 2u);
  EXPECT_EQ(net.round_trips(), 0u);  // nothing got through

  // Disarming restores clean delivery.
  net.SetFaults(NetworkSimulator::FaultProfile());
  OPDELTA_ASSERT_OK(net.TryRoundTrip(100));
  EXPECT_EQ(net.round_trips(), 1u);
}

TEST(NetworkSimulatorTest, TimeoutFaultsSpinAndReturnBusy) {
  NetworkSimulator net(NetworkSimulator::Loopback());
  NetworkSimulator::FaultProfile faults;
  faults.timeout_probability = 1.0;
  faults.timeout_micros = 2000;
  net.SetFaults(faults);

  Stopwatch sw;
  Status st = net.TryRoundTrip(100);
  EXPECT_EQ(st.code(), StatusCode::kBusy) << st.ToString();
  EXPECT_GE(sw.ElapsedMicros(), 2000);  // we waited for the silent peer
  EXPECT_EQ(net.timeouts(), 1u);
}

TEST(FileTransportTest, ShipPropagatesLinkFaults) {
  TempDir dir;
  const std::string src = dir.Sub("delta.csv");
  OPDELTA_ASSERT_OK(
      Env::Default()->WriteStringToFile(src, Slice("1,2,3\n")));
  NetworkSimulator net(NetworkSimulator::Loopback());
  NetworkSimulator::FaultProfile faults;
  faults.drop_probability = 1.0;
  net.SetFaults(faults);
  FileTransport transport(&net);

  const std::string dst = dir.Sub("shipped.csv");
  EXPECT_TRUE(transport.Ship(src, dst).IsIOError());
  EXPECT_FALSE(Env::Default()->FileExists(dst));  // the send was lost
  EXPECT_EQ(transport.files_shipped(), 0u);
}

}  // namespace
}  // namespace opdelta::transport
