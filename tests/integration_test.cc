// End-to-end tests: run an OLTP workload at a source system, extract deltas
// with each of the paper's methods, transport them, and integrate them into
// a warehouse — then check the warehouse converged to the source state.
#include <gtest/gtest.h>

#include "common/random.h"
#include "dbutils/ascii_dump.h"
#include "dbutils/export.h"
#include "dbutils/loader.h"
#include "engine/snapshot.h"
#include "extract/log_extractor.h"
#include "extract/op_delta.h"
#include "extract/reconciler.h"
#include "extract/snapshot_differential.h"
#include "extract/timestamp_extractor.h"
#include "extract/trigger_extractor.h"
#include "sql/executor.h"
#include "transport/file_transport.h"
#include "transport/persistent_queue.h"
#include "warehouse/integrator.h"
#include "workload/workload.h"
#include "tests/test_util.h"

namespace opdelta {
namespace {

using catalog::Row;
using catalog::Value;
using extract::DeltaBatch;
using extract::DeltaOp;
using extract::DeltaRecord;
using opdelta::testing::CountRows;
using opdelta::testing::OpenDb;
using opdelta::testing::TablesEqual;
using opdelta::testing::TempDir;

class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine::DatabaseOptions options;
    options.auto_timestamp = false;  // keep rows byte-comparable end to end
    src_ = OpenDb(dir_, "src", options);
    wh_ = OpenDb(dir_, "wh", options);
    OPDELTA_ASSERT_OK(wl_.CreateTable(src_.get(), "parts"));
    OPDELTA_ASSERT_OK(wl_.CreateTable(wh_.get(), "parts"));
    exec_ = std::make_unique<sql::Executor>(src_.get());
  }

  /// Runs a deterministic mixed workload of `txns` transactions.
  Status RunWorkload(uint64_t seed, int txns) {
    Rng rng(seed);
    for (int i = 0; i < txns; ++i) {
      sql::Statement stmt;
      switch (rng.Uniform(3)) {
        case 0: {
          size_t n = 1 + rng.Uniform(10);
          stmt = wl_.MakeInsert("parts", next_id_, n);
          next_id_ += static_cast<int64_t>(n);
          break;
        }
        case 1: {
          int64_t lo = rng.Uniform(std::max<int64_t>(next_id_, 1));
          stmt = wl_.MakeUpdate("parts", lo, lo + 1 + rng.Uniform(10),
                                "s" + std::to_string(i));
          break;
        }
        default: {
          int64_t lo = rng.Uniform(std::max<int64_t>(next_id_, 1));
          stmt = wl_.MakeDelete("parts", lo, lo + 1 + rng.Uniform(4));
          break;
        }
      }
      OPDELTA_RETURN_IF_ERROR(exec_->ExecuteSql(stmt.ToSql()).status());
    }
    return Status::OK();
  }

  /// Applies net changes (from upsert/delete-style batches) to the
  /// warehouse — how timestamp/snapshot deltas integrate.
  Status ApplyNetChanges(const DeltaBatch& batch) {
    extract::NetChanges net;
    OPDELTA_RETURN_IF_ERROR(ComputeNetChanges(batch, &net));
    DeltaBatch upserts;
    upserts.table = "parts";
    upserts.schema = batch.schema;
    uint64_t seq = 0;
    for (const auto& [key, state] : net) {
      if (state.has_value()) {
        upserts.records.push_back(
            DeltaRecord{DeltaOp::kUpsert, 0, seq++, *state});
      } else {
        Row img(batch.schema.num_columns());
        img[0] = key;
        upserts.records.push_back(
            DeltaRecord{DeltaOp::kDelete, 0, seq++, img});
      }
    }
    warehouse::ValueDeltaIntegrator integrator(wh_.get(), "parts");
    return integrator.Apply(upserts, nullptr);
  }

  TempDir dir_;
  workload::PartsWorkload wl_;
  std::unique_ptr<engine::Database> src_, wh_;
  std::unique_ptr<sql::Executor> exec_;
  int64_t next_id_ = 0;
};

TEST_F(EndToEndTest, TriggerExtractShipIntegrate) {
  Result<std::string> delta_table =
      extract::TriggerExtractor::Install(src_.get(), "parts");
  ASSERT_TRUE(delta_table.ok());

  OPDELTA_ASSERT_OK(RunWorkload(1, 30));

  // Extract: drain the delta table; ship via persistent queue; integrate.
  Result<DeltaBatch> batch = extract::TriggerExtractor::Drain(src_.get(),
                                                              "parts");
  ASSERT_TRUE(batch.ok());

  transport::PersistentQueue queue;
  OPDELTA_ASSERT_OK(queue.Open(dir_.Sub("queue")));
  std::string encoded;
  batch->EncodeTo(&encoded);
  OPDELTA_ASSERT_OK(queue.Enqueue(Slice(encoded), /*durable=*/true));

  std::string shipped;
  OPDELTA_ASSERT_OK(queue.Peek(&shipped));
  DeltaBatch received;
  OPDELTA_ASSERT_OK(DeltaBatch::DecodeFrom(Slice(shipped), &received));
  OPDELTA_ASSERT_OK(queue.Ack());

  warehouse::ValueDeltaIntegrator integrator(wh_.get(), "parts");
  OPDELTA_ASSERT_OK(integrator.Apply(received, nullptr));
  EXPECT_TRUE(TablesEqual(src_.get(), "parts", wh_.get(), "parts"));
}

TEST_F(EndToEndTest, LogExtractShipIntegrate) {
  OPDELTA_ASSERT_OK(RunWorkload(2, 30));

  engine::Table* t = src_->GetTable("parts");
  extract::LogExtractor extractor(src_->wal()->dir());
  txn::Lsn wm = 0;
  Result<DeltaBatch> batch =
      extractor.ExtractSince(0, t->id(), "parts", t->schema(), &wm);
  ASSERT_TRUE(batch.ok());

  warehouse::ValueDeltaIntegrator integrator(wh_.get(), "parts");
  OPDELTA_ASSERT_OK(integrator.Apply(*batch, nullptr));
  EXPECT_TRUE(TablesEqual(src_.get(), "parts", wh_.get(), "parts"));
}

TEST_F(EndToEndTest, TimestampExtractConvergesLiveRows) {
  // Timestamp extraction misses deletes; run an insert/update-only workload
  // so the method can converge (its documented applicability condition).
  OPDELTA_ASSERT_OK(wl_.Populate(src_.get(), "parts", 50));
  // Give pre-existing rows a visible timestamp: populate stamped nothing
  // (auto_timestamp off), so touch every row once.
  OPDELTA_ASSERT_OK(
      exec_->ExecuteSql("UPDATE parts SET last_modified = 1").status());

  // Mirror the base state at the warehouse first (initial load).
  const std::string base_csv = dir_.Sub("base.csv");
  OPDELTA_ASSERT_OK(dbutils::AsciiDump::DumpTable(
      src_.get(), "parts", engine::Predicate::True(), base_csv));
  OPDELTA_ASSERT_OK(dbutils::Loader::Load(wh_.get(), "parts", base_csv));

  const Micros watermark = 1;
  OPDELTA_ASSERT_OK(
      exec_->ExecuteSql("UPDATE parts SET status = 'hot', "
                        "last_modified = 5 WHERE id < 10")
          .status());
  sql::Statement ins = wl_.MakeInsert("parts", 50, 5);
  // Stamp inserted rows manually (auto stamping disabled in this fixture).
  for (Row& r : ins.mutable_insert().rows) r[3] = Value::Timestamp(6);
  OPDELTA_ASSERT_OK(exec_->ExecuteSql(ins.ToSql()).status());

  extract::TimestampExtractor extractor(src_.get(), "parts",
                                        "last_modified");
  Result<DeltaBatch> batch = extractor.ExtractSince(watermark);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->records.size(), 15u);
  OPDELTA_ASSERT_OK(ApplyNetChanges(*batch));
  EXPECT_TRUE(TablesEqual(src_.get(), "parts", wh_.get(), "parts"));
}

TEST_F(EndToEndTest, SnapshotDifferentialExtractIntegrate) {
  OPDELTA_ASSERT_OK(wl_.Populate(src_.get(), "parts", 80));
  OPDELTA_ASSERT_OK(
      engine::Snapshot::Write(src_.get(), "parts", dir_.Sub("s1.snap")));

  // Initial-load the warehouse from the first snapshot.
  OPDELTA_ASSERT_OK(wh_->WithTransaction([&](txn::Transaction* txn) {
    Status st;
    return engine::Snapshot::Read(dir_.Sub("s1.snap"), nullptr,
                                  [&](const Row& row) {
                                    st = wh_->InsertRaw(txn, "parts", row);
                                    return st.ok();
                                  });
  }));

  next_id_ = 80;
  OPDELTA_ASSERT_OK(RunWorkload(3, 20));
  OPDELTA_ASSERT_OK(
      engine::Snapshot::Write(src_.get(), "parts", dir_.Sub("s2.snap")));

  // Ship both snapshots (the method's transport cost) then diff + apply.
  transport::NetworkSimulator net(transport::NetworkSimulator::Loopback());
  transport::FileTransport transport(&net);
  OPDELTA_ASSERT_OK(transport.Ship(dir_.Sub("s2.snap"), dir_.Sub("s2w.snap")));

  Result<DeltaBatch> diff = extract::SnapshotDifferential::Diff(
      dir_.Sub("s1.snap"), dir_.Sub("s2w.snap"));
  ASSERT_TRUE(diff.ok());
  OPDELTA_ASSERT_OK(
      extract::SnapshotDifferential::Apply(wh_.get(), "parts", *diff));
  EXPECT_TRUE(TablesEqual(src_.get(), "parts", wh_.get(), "parts"));
}

TEST_F(EndToEndTest, OpDeltaCaptureShipIntegrate) {
  const std::string log_path = dir_.Sub("ops.log");
  Result<std::unique_ptr<extract::OpDeltaFileSink>> sink =
      extract::OpDeltaFileSink::Create(log_path);
  ASSERT_TRUE(sink.ok());
  extract::OpDeltaCapture capture(
      exec_.get(), std::shared_ptr<extract::OpDeltaSink>(std::move(*sink)),
      extract::OpDeltaCapture::Options());

  Rng rng(4);
  for (int i = 0; i < 25; ++i) {
    std::vector<sql::Statement> stmts;
    size_t n = 1 + rng.Uniform(5);
    stmts.push_back(wl_.MakeInsert("parts", next_id_, n));
    next_id_ += static_cast<int64_t>(n);
    if (i % 3 == 1) {
      stmts.push_back(wl_.MakeUpdate("parts", 0, next_id_ / 2,
                                     "r" + std::to_string(i)));
    }
    if (i % 5 == 2) {
      stmts.push_back(
          wl_.MakeDelete("parts", rng.Uniform(next_id_), next_id_ / 3));
    }
    OPDELTA_ASSERT_OK(capture.RunTransaction(stmts).status());
  }

  // Ship the op log file, then integrate preserving txn boundaries.
  transport::NetworkSimulator net(transport::NetworkSimulator::Loopback());
  transport::FileTransport transport(&net);
  const std::string shipped = dir_.Sub("ops_at_wh.log");
  OPDELTA_ASSERT_OK(transport.Ship(log_path, shipped));

  std::vector<extract::OpDeltaTxn> txns;
  OPDELTA_ASSERT_OK(extract::OpDeltaLogReader::ReadFile(
      shipped, workload::PartsWorkload::Schema(), &txns));
  warehouse::OpDeltaIntegrator integrator(wh_.get());
  warehouse::IntegrationStats stats;
  OPDELTA_ASSERT_OK(integrator.Apply(txns, &stats));

  EXPECT_TRUE(TablesEqual(src_.get(), "parts", wh_.get(), "parts"));
  EXPECT_EQ(stats.transactions, 25u);
  EXPECT_EQ(stats.outage_micros, 0);
}

TEST_F(EndToEndTest, ReplicatedSourcesReconcileToOneAuthoritativeCopy) {
  // Two COTS instances replicate the same logical data; triggers capture
  // the "same" deltas twice. Reconciliation must collapse them before
  // warehouse integration (§2.2 / §4.1).
  engine::DatabaseOptions options;
  options.auto_timestamp = false;
  auto replica = OpenDb(dir_, "replica", options);
  OPDELTA_ASSERT_OK(wl_.CreateTable(replica.get(), "parts"));

  ASSERT_TRUE(extract::TriggerExtractor::Install(src_.get(), "parts").ok());
  ASSERT_TRUE(extract::TriggerExtractor::Install(replica.get(), "parts").ok());

  // The COTS layer applies every business transaction to both replicas.
  sql::Executor replica_exec(replica.get());
  auto run_both = [&](const sql::Statement& stmt) -> Status {
    OPDELTA_RETURN_IF_ERROR(exec_->ExecuteSql(stmt.ToSql()).status());
    return replica_exec.ExecuteSql(stmt.ToSql()).status();
  };
  OPDELTA_ASSERT_OK(run_both(wl_.MakeInsert("parts", 0, 20)));
  OPDELTA_ASSERT_OK(run_both(wl_.MakeUpdate("parts", 5, 12, "dup")));
  OPDELTA_ASSERT_OK(run_both(wl_.MakeDelete("parts", 0, 3)));

  Result<DeltaBatch> a = extract::TriggerExtractor::Drain(src_.get(), "parts");
  Result<DeltaBatch> b =
      extract::TriggerExtractor::Drain(replica.get(), "parts");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->records.size(), b->records.size());

  extract::Reconciler::Stats rstats;
  Result<DeltaBatch> merged =
      extract::Reconciler::Reconcile({&*a, &*b}, &rstats);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(rstats.duplicates_dropped, merged->records.size());

  warehouse::ValueDeltaIntegrator integrator(wh_.get(), "parts");
  OPDELTA_ASSERT_OK(integrator.Apply(*merged, nullptr));
  EXPECT_TRUE(TablesEqual(src_.get(), "parts", wh_.get(), "parts"));
}

TEST_F(EndToEndTest, ExportImportMovesDeltaTableBetweenSystems) {
  // The Table-2 "table output + Export" pipeline: extract to a local delta
  // table, Export it, ship, Import at the staging area.
  Result<std::string> delta_table =
      extract::TriggerExtractor::Install(src_.get(), "parts");
  ASSERT_TRUE(delta_table.ok());
  OPDELTA_ASSERT_OK(RunWorkload(5, 15));

  const std::string exported = dir_.Sub("delta.exp");
  OPDELTA_ASSERT_OK(dbutils::ExportUtil::Export(src_.get(), *delta_table,
                                                exported));

  transport::NetworkSimulator net(transport::NetworkSimulator::Loopback());
  transport::FileTransport transport(&net);
  const std::string shipped = dir_.Sub("delta_at_wh.exp");
  OPDELTA_ASSERT_OK(transport.Ship(exported, shipped));

  // Staging area must have the *exact* delta-table schema (the method's
  // same-product/same-schema constraint).
  OPDELTA_ASSERT_OK(wh_->CreateTable(
      "parts_delta_staged",
      extract::DeltaTableSchemaFor(workload::PartsWorkload::Schema())));
  OPDELTA_ASSERT_OK(
      dbutils::ImportUtil::Import(wh_.get(), "parts_delta_staged", shipped));
  EXPECT_EQ(CountRows(wh_.get(), "parts_delta_staged"),
            CountRows(src_.get(), *delta_table));
}

TEST_F(EndToEndTest, AllValueDeltaMethodsAgreeOnNetChanges) {
  ASSERT_TRUE(extract::TriggerExtractor::Install(src_.get(), "parts").ok());
  OPDELTA_ASSERT_OK(
      engine::Snapshot::Write(src_.get(), "parts", dir_.Sub("pre.snap")));

  OPDELTA_ASSERT_OK(RunWorkload(6, 25));

  OPDELTA_ASSERT_OK(
      engine::Snapshot::Write(src_.get(), "parts", dir_.Sub("post.snap")));

  Result<DeltaBatch> trigger_batch =
      extract::TriggerExtractor::Drain(src_.get(), "parts");
  ASSERT_TRUE(trigger_batch.ok());

  engine::Table* t = src_->GetTable("parts");
  extract::LogExtractor log_extractor(src_->wal()->dir());
  txn::Lsn wm = 0;
  Result<DeltaBatch> log_batch =
      log_extractor.ExtractSince(0, t->id(), "parts", t->schema(), &wm);
  ASSERT_TRUE(log_batch.ok());

  Result<DeltaBatch> snap_batch = extract::SnapshotDifferential::Diff(
      dir_.Sub("pre.snap"), dir_.Sub("post.snap"));
  ASSERT_TRUE(snap_batch.ok());

  extract::NetChanges trigger_net, log_net, snap_net;
  OPDELTA_ASSERT_OK(ComputeNetChanges(*trigger_batch, &trigger_net));
  OPDELTA_ASSERT_OK(ComputeNetChanges(*log_batch, &log_net));
  OPDELTA_ASSERT_OK(ComputeNetChanges(*snap_batch, &snap_net));

  // Trigger and log methods observe every change and must agree exactly.
  ASSERT_EQ(trigger_net.size(), log_net.size());
  for (const auto& [key, state] : trigger_net) {
    auto it = log_net.find(key);
    ASSERT_NE(it, log_net.end());
    ASSERT_EQ(state.has_value(), it->second.has_value());
    if (state.has_value()) {
      EXPECT_EQ(catalog::CompareRows(*state, *it->second), 0);
    }
  }
  // Snapshot diff sees only final states; every snap-net entry must match
  // the trigger net (inserted-then-deleted keys are invisible to it).
  for (const auto& [key, state] : snap_net) {
    auto it = trigger_net.find(key);
    ASSERT_NE(it, trigger_net.end()) << key.ToSqlLiteral();
    ASSERT_EQ(state.has_value(), it->second.has_value());
    if (state.has_value()) {
      EXPECT_EQ(catalog::CompareRows(*state, *it->second), 0);
    }
  }
}

}  // namespace
}  // namespace opdelta
