#include "scrub/scrubber.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <random>
#include <set>
#include <thread>
#include <vector>

#include "backfill/backfiller.h"
#include "catalog/row_codec.h"
#include "common/env.h"
#include "hub/delta_hub.h"
#include "pipeline/source_leg.h"
#include "scrub/scrub_ledger.h"
#include "storage/page.h"
#include "workload/workload.h"
#include "tests/test_util.h"

namespace opdelta::scrub {
namespace {

using opdelta::testing::CountRows;
using opdelta::testing::OpenDb;
using opdelta::testing::TablesEqual;
using opdelta::testing::TempDir;

engine::DatabaseOptions NoTimestampOptions() {
  engine::DatabaseOptions options;
  options.auto_timestamp = false;
  return options;
}

/// Randomized suites read their seed from OPDELTA_FAULT_SEED so CI can run
/// the same tests under a seed matrix; unset, they use the fixed default.
uint64_t FaultSeedFromEnv(uint64_t fallback) {
  const char* text = std::getenv("OPDELTA_FAULT_SEED");
  if (text == nullptr || *text == '\0') return fallback;
  return std::strtoull(text, nullptr, 10);
}

bool Transient(const Status& st) {
  return st.IsConflict() || st.code() == StatusCode::kBusy ||
         st.code() == StatusCode::kAborted;
}

template <typename Fn>
Status Retry(Fn&& fn) {
  Status st;
  for (int attempt = 0; attempt < 500; ++attempt) {
    st = fn();
    if (!Transient(st)) return st;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return st;
}

// ------------------------------------------------------------ scrub ledger

TEST(ScrubLedgerTest, ResumeCompactAndPassWrap) {
  TempDir dir;
  auto db = OpenDb(dir, "src", NoTimestampOptions());
  ScrubLedger ledger(db.get());
  OPDELTA_ASSERT_OK(ledger.Setup());
  OPDELTA_ASSERT_OK(ledger.Setup());  // idempotent

  Result<ScrubLedger::Progress> p = ledger.Get("parts");
  OPDELTA_ASSERT_OK(p.status());
  EXPECT_EQ(p->passes_complete, 0u);
  EXPECT_EQ(p->pass, 1u);
  EXPECT_FALSE(p->have_cursor);

  // Cursors are keys and may be negative — recency is the chunk count, not
  // the cursor value.
  OPDELTA_ASSERT_OK(ledger.Advance("parts", 1, -5, 1));
  OPDELTA_ASSERT_OK(ledger.Advance("parts", 1, -1, 2));
  OPDELTA_ASSERT_OK(ledger.Advance("other", 3, 99, 4));
  p = ledger.Get("parts");
  OPDELTA_ASSERT_OK(p.status());
  EXPECT_EQ(p->pass, 1u);
  EXPECT_TRUE(p->have_cursor);
  EXPECT_EQ(p->cursor, -1);
  EXPECT_EQ(p->chunks, 2u);

  uint64_t removed = 0;
  OPDELTA_ASSERT_OK(ledger.Compact(&removed));
  EXPECT_EQ(removed, 1u);  // the superseded parts cursor
  p = ledger.Get("parts");
  OPDELTA_ASSERT_OK(p.status());
  EXPECT_EQ(p->cursor, -1);

  // A completed pass retires its cursor: the next pass starts fresh.
  OPDELTA_ASSERT_OK(ledger.MarkPass("parts", 1, 3));
  p = ledger.Get("parts");
  OPDELTA_ASSERT_OK(p.status());
  EXPECT_EQ(p->passes_complete, 1u);
  EXPECT_EQ(p->pass, 2u);
  EXPECT_FALSE(p->have_cursor);

  // A mid-pass cursor of the NEW pass resumes; the other table's state is
  // untouched by compaction.
  OPDELTA_ASSERT_OK(ledger.Advance("parts", 2, 40, 1));
  OPDELTA_ASSERT_OK(ledger.Compact(&removed));
  p = ledger.Get("parts");
  OPDELTA_ASSERT_OK(p.status());
  EXPECT_EQ(p->pass, 2u);
  EXPECT_TRUE(p->have_cursor);
  EXPECT_EQ(p->cursor, 40);
  Result<ScrubLedger::Progress> other = ledger.Get("other");
  OPDELTA_ASSERT_OK(other.status());
  EXPECT_EQ(other->pass, 3u);
  EXPECT_EQ(other->cursor, 99);
}

// ------------------------------------------------- standalone scrubber

struct ScrubFixture {
  explicit ScrubFixture(const TempDir& dir, int64_t rows = 0,
                        pipeline::Method method = pipeline::Method::kOpDelta)
      : src(OpenDb(dir, "src", NoTimestampOptions())),
        wh(OpenDb(dir, "wh", NoTimestampOptions())) {
    // Two identically seeded workloads generate identical row sequences,
    // giving a converged source/warehouse pair without running a backfill.
    workload::PartsWorkload src_wl, wh_wl;
    OPDELTA_EXPECT_OK(src_wl.CreateTable(src.get(), "parts"));
    OPDELTA_EXPECT_OK(wh_wl.CreateTable(wh.get(), "parts"));
    OPDELTA_EXPECT_OK(backfill::Backfiller::EnsureSignalTable(wh.get()));
    if (rows > 0) {
      OPDELTA_EXPECT_OK(src_wl.Populate(src.get(), "parts", rows));
      OPDELTA_EXPECT_OK(wh_wl.Populate(wh.get(), "parts", rows));
    }
    pipeline::PipelineOptions po;
    po.method = method;
    po.source_table = "parts";
    po.warehouse_table = "parts";
    po.source_id = "s1";
    po.work_dir = dir.Sub("leg");
    Result<std::unique_ptr<pipeline::SourceLeg>> made =
        pipeline::SourceLeg::Create(src.get(), std::move(po));
    OPDELTA_EXPECT_OK(made.status());
    leg = std::move(*made);
    OPDELTA_EXPECT_OK(leg->Setup());
  }

  /// The standalone drain: applies every already-shipped batch, extracts
  /// nothing — the contract Scrubber::DrainFn documents.
  Status DrainAll() {
    while (true) {
      std::string message;
      Status st = leg->PeekShipped(&message);
      if (st.IsNotFound()) return Status::OK();
      OPDELTA_RETURN_IF_ERROR(st);
      OPDELTA_RETURN_IF_ERROR(leg->Integrate(wh.get(), message, nullptr));
      OPDELTA_RETURN_IF_ERROR(leg->AckShipped());
    }
  }

  Result<std::unique_ptr<Scrubber>> MakeScrubber(ScrubOptions options) {
    OPDELTA_ASSIGN_OR_RETURN(
        std::unique_ptr<Scrubber> scrubber,
        Scrubber::Create(leg.get(), wh.get(), [this] { return DrainAll(); },
                         options));
    OPDELTA_RETURN_IF_ERROR(scrubber->Setup());
    return scrubber;
  }

  /// Steps until the current pass completes; returns the steps spent.
  int RunOnePass(Scrubber* scrubber, int max_steps = 300) {
    for (int step = 1; step <= max_steps; ++step) {
      OPDELTA_EXPECT_OK(scrubber->Step());
      if (scrubber->pass_just_completed()) return step;
    }
    ADD_FAILURE() << "pass did not complete in " << max_steps << " steps";
    return max_steps;
  }

  std::unique_ptr<engine::Database> src;
  std::unique_ptr<engine::Database> wh;
  std::unique_ptr<pipeline::SourceLeg> leg;
};

TEST(ScrubberTest, RejectsMissingOrMismatchedWarehouseTable) {
  TempDir dir;
  ScrubFixture fx(dir, 4);
  // Missing warehouse table.
  {
    TempDir bare_dir;
    ScrubFixture bare(bare_dir);
    OPDELTA_ASSERT_OK(bare.wh->DropTable("parts"));
    Result<std::unique_ptr<Scrubber>> sc = Scrubber::Create(
        bare.leg.get(), bare.wh.get(), [] { return Status::OK(); },
        ScrubOptions());
    EXPECT_EQ(sc.status().code(), StatusCode::kNotFound);
  }
  // Invalid chunk size.
  ScrubOptions zero;
  zero.chunk_rows = 0;
  Result<std::unique_ptr<Scrubber>> sc = Scrubber::Create(
      fx.leg.get(), fx.wh.get(), [] { return Status::OK(); }, zero);
  EXPECT_EQ(sc.status().code(), StatusCode::kInvalidArgument);
}

TEST(ScrubberTest, CleanTableVerifiesWithoutMismatch) {
  TempDir dir;
  ScrubFixture fx(dir, 100);
  ScrubOptions options;
  options.chunk_rows = 16;
  Result<std::unique_ptr<Scrubber>> sc = fx.MakeScrubber(options);
  ASSERT_TRUE(sc.ok()) << sc.status().ToString();

  fx.RunOnePass(sc->get());
  const ScrubStats& stats = (*sc)->stats();
  EXPECT_EQ(stats.chunks_scrubbed, 7u);  // ceil(100 / 16)
  EXPECT_EQ(stats.chunks_mismatched, 0u);
  EXPECT_EQ(stats.chunks_repaired, 0u);
  EXPECT_EQ(stats.passes, 1u);

  // Scrubbing is continuous: the next pass wraps to the smallest key.
  fx.RunOnePass(sc->get());
  EXPECT_EQ((*sc)->stats().passes, 2u);
  EXPECT_EQ((*sc)->stats().chunks_mismatched, 0u);
}

/// Engine-level warehouse damage — flipped column values, vanished rows,
/// phantom rows — must be detected and repaired back to byte equality.
TEST(ScrubberTest, RepairsFlippedDeletedAndPhantomRows) {
  TempDir dir;
  ScrubFixture fx(dir, 100);
  OPDELTA_ASSERT_OK(fx.wh->WithTransaction([&](txn::Transaction* txn) {
    // Bit-rot stand-in: silently changed column values.
    OPDELTA_RETURN_IF_ERROR(
        fx.wh->UpdateWhere(txn, "parts",
                           engine::Predicate::Where(
                               "id", engine::CompareOp::kGe,
                               catalog::Value::Int64(10))
                               .And("id", engine::CompareOp::kLt,
                                    catalog::Value::Int64(14)),
                           {{"status", catalog::Value::String("rotten")}})
            .status());
    // Lost rows (the hole a dead-lettered batch leaves behind).
    OPDELTA_RETURN_IF_ERROR(
        fx.wh->DeleteWhere(txn, "parts",
                           engine::Predicate::Where(
                               "id", engine::CompareOp::kGe,
                               catalog::Value::Int64(40))
                               .And("id", engine::CompareOp::kLt,
                                    catalog::Value::Int64(43)))
            .status());
    // Phantom rows the source never had — including one past the source's
    // largest key, which only the open-ended tail chunk can catch.
    workload::PartsWorkload wl;
    catalog::Row phantom = wl.MakeRow(55);
    phantom[1] = catalog::Value::String("phantom");
    OPDELTA_RETURN_IF_ERROR(fx.wh->Insert(txn, "parts", phantom));
    return fx.wh->Insert(txn, "parts", wl.MakeRow(100000));
  }));
  // The in-range phantom replaced nothing; drop the real row so key 55 is
  // purely warehouse-divergent.
  OPDELTA_ASSERT_OK(fx.wh->WithTransaction([&](txn::Transaction* txn) {
    return fx.wh
        ->DeleteWhere(txn, "parts",
                      engine::Predicate::Where("id", engine::CompareOp::kEq,
                                               catalog::Value::Int64(55))
                          .And("status", engine::CompareOp::kNe,
                               catalog::Value::String("phantom")))
        .status();
  }));

  ScrubOptions options;
  options.chunk_rows = 16;
  Result<std::unique_ptr<Scrubber>> sc = fx.MakeScrubber(options);
  ASSERT_TRUE(sc.ok()) << sc.status().ToString();

  fx.RunOnePass(sc->get());
  const ScrubStats after_repair = (*sc)->stats();
  EXPECT_GT(after_repair.chunks_mismatched, 0u);
  EXPECT_EQ(after_repair.chunks_repaired, after_repair.chunks_mismatched);
  EXPECT_GT(after_repair.rows_repaired, 0u);
  EXPECT_TRUE(TablesEqual(fx.src.get(), "parts", fx.wh.get(), "parts"));

  // The next pass must verify clean — the repairs held.
  fx.RunOnePass(sc->get());
  EXPECT_EQ((*sc)->stats().chunks_mismatched, after_repair.chunks_mismatched);
}

TEST(ScrubberTest, ReportOnlyCountsWithoutRepairing) {
  TempDir dir;
  ScrubFixture fx(dir, 40);
  OPDELTA_ASSERT_OK(fx.wh->WithTransaction([&](txn::Transaction* txn) {
    return fx.wh
        ->DeleteWhere(txn, "parts",
                      engine::Predicate::Where("id", engine::CompareOp::kLt,
                                               catalog::Value::Int64(5)))
        .status();
  }));

  ScrubOptions options;
  options.chunk_rows = 16;
  options.repair = false;
  Result<std::unique_ptr<Scrubber>> sc = fx.MakeScrubber(options);
  ASSERT_TRUE(sc.ok()) << sc.status().ToString();
  fx.RunOnePass(sc->get());
  EXPECT_EQ((*sc)->stats().chunks_mismatched, 1u);
  EXPECT_EQ((*sc)->stats().chunks_repaired, 0u);
  EXPECT_EQ((*sc)->stats().rows_repaired, 0u);
  EXPECT_EQ(CountRows(fx.wh.get(), "parts"), 35u);  // untouched
}

/// A batch that shipped but never applied (acked into the dead-letter log)
/// leaves the warehouse with a consistent-looking hole; the scrubber is
/// the only component that ever looks for it.
TEST(ScrubberTest, RepairsDeadLetterHole) {
  TempDir dir;
  ScrubFixture fx(dir, 60);
  workload::PartsWorkload wl;
  extract::OpDeltaCapture* capture = fx.leg->capture();
  ASSERT_NE(capture, nullptr);
  OPDELTA_ASSERT_OK(
      capture->RunTransaction({wl.MakeUpdate("parts", 20, 30, "lost")})
          .status());
  bool shipped = true;
  while (shipped) OPDELTA_ASSERT_OK(fx.leg->ExtractAndShip(&shipped));
  // Divert the shipped batch as a dead-letter would: ack without applying.
  uint64_t dropped = 0;
  while (true) {
    std::string message;
    Status st = fx.leg->PeekShipped(&message);
    if (st.IsNotFound()) break;
    OPDELTA_ASSERT_OK(st);
    OPDELTA_ASSERT_OK(fx.leg->AckShipped());
    ++dropped;
  }
  ASSERT_GT(dropped, 0u);
  ASSERT_FALSE(TablesEqual(fx.src.get(), "parts", fx.wh.get(), "parts"));

  ScrubOptions options;
  options.chunk_rows = 16;
  Result<std::unique_ptr<Scrubber>> sc = fx.MakeScrubber(options);
  ASSERT_TRUE(sc.ok()) << sc.status().ToString();
  fx.RunOnePass(sc->get());
  EXPECT_GT((*sc)->stats().chunks_repaired, 0u);
  EXPECT_TRUE(TablesEqual(fx.src.get(), "parts", fx.wh.get(), "parts"));
}

/// In-window source writes make a chunk inconclusive — retried, never a
/// verdict — because the warehouse legitimately lags inside the window.
TEST(ScrubberTest, InFlightDeltasAreInconclusiveNotMismatched) {
  TempDir dir;
  ScrubFixture fx(dir, 40);
  workload::PartsWorkload wl;
  extract::OpDeltaCapture* capture = fx.leg->capture();
  ASSERT_NE(capture, nullptr);

  ScrubOptions options;
  options.chunk_rows = 16;
  Result<std::unique_ptr<Scrubber>> sc = fx.MakeScrubber(options);
  ASSERT_TRUE(sc.ok()) << sc.status().ToString();

  // A pending capture event lands inside the first chunk's window (the
  // window's drain ships it alongside the watermarks).
  OPDELTA_ASSERT_OK(
      capture->RunTransaction({wl.MakeUpdate("parts", 0, 4, "inflight")})
          .status());
  OPDELTA_ASSERT_OK((*sc)->Step());
  EXPECT_EQ((*sc)->stats().chunks_inconclusive, 1u);
  EXPECT_EQ((*sc)->stats().chunks_mismatched, 0u);
  EXPECT_EQ((*sc)->stats().chunks_scrubbed, 0u);

  // The retry — with the delta drained and applied — verifies clean.
  fx.RunOnePass(sc->get());
  EXPECT_EQ((*sc)->stats().chunks_mismatched, 0u);
  EXPECT_EQ((*sc)->stats().chunks_scrubbed, 3u);
  EXPECT_TRUE(TablesEqual(fx.src.get(), "parts", fx.wh.get(), "parts"));
}

TEST(ScrubberTest, ResumesCursorFromLedgerAcrossRestart) {
  TempDir dir;
  ScrubFixture fx(dir, 100);
  ScrubOptions options;
  options.chunk_rows = 16;
  {
    Result<std::unique_ptr<Scrubber>> sc = fx.MakeScrubber(options);
    ASSERT_TRUE(sc.ok()) << sc.status().ToString();
    for (int step = 0; step < 3; ++step) OPDELTA_ASSERT_OK((*sc)->Step());
    EXPECT_EQ((*sc)->stats().chunks_scrubbed, 3u);
    EXPECT_FALSE((*sc)->pass_just_completed());
  }
  // A fresh scrubber resumes mid-pass from the durable cursor: finishing
  // the pass takes only the remaining 4 chunks.
  Result<std::unique_ptr<Scrubber>> sc = fx.MakeScrubber(options);
  ASSERT_TRUE(sc.ok()) << sc.status().ToString();
  const int steps = fx.RunOnePass(sc->get());
  EXPECT_EQ(steps, 4);
  EXPECT_EQ((*sc)->stats().passes, 1u);
}

/// Damage that reappears after every repair (here: re-corrupted by the
/// test between rounds, standing in for failing hardware) must escalate
/// to a hard error instead of repairing forever.
TEST(ScrubberTest, EscalatesWhenRepairNeverConverges) {
  TempDir dir;
  ScrubFixture fx(dir, 10);
  auto corrupt = [&] {
    return fx.wh->WithTransaction([&](txn::Transaction* txn) {
      return fx.wh
          ->UpdateWhere(txn, "parts",
                        engine::Predicate::Where("id", engine::CompareOp::kEq,
                                                 catalog::Value::Int64(3)),
                        {{"status", catalog::Value::String("rot")}})
          .status();
    });
  };
  OPDELTA_ASSERT_OK(corrupt());

  ScrubOptions options;
  options.chunk_rows = 16;  // the whole table is one chunk
  options.escalate_after = 2;
  Result<std::unique_ptr<Scrubber>> sc = fx.MakeScrubber(options);
  ASSERT_TRUE(sc.ok()) << sc.status().ToString();

  Status st;
  int repairs_seen = 0;
  for (int step = 0; step < 20; ++step) {
    st = (*sc)->Step();
    if (!st.ok()) break;
    // Undo the repair as soon as it lands, like rotting media would.
    OPDELTA_ASSERT_OK(corrupt());
    repairs_seen = static_cast<int>((*sc)->stats().chunks_repaired);
  }
  EXPECT_EQ(st.code(), StatusCode::kInternal) << st.ToString();
  EXPECT_EQ(repairs_seen, 2);  // escalated on the third strike
}

// ------------------------------------------------------- hub integration

struct HubFixture {
  HubFixture(const TempDir& dir, const std::string& tag) {
    src = OpenDb(dir, "src" + tag, NoTimestampOptions());
    wh = OpenDb(dir, "wh" + tag, NoTimestampOptions());
    wh_dir = dir.Sub("wh" + tag);
    workload::PartsWorkload wl;
    OPDELTA_EXPECT_OK(wl.CreateTable(src.get(), "parts"));
    OPDELTA_EXPECT_OK(wl.CreateTable(wh.get(), "parts"));
    options.work_dir = dir.Sub("hub" + tag);
    options.extract_threads = 1;
    options.apply_workers = 1;
    options.quarantine_after = 0;  // conflicts retry, never quarantine
    spec.name = "sc";
    spec.method = pipeline::Method::kOpDelta;
    spec.source_table = "parts";
    spec.warehouse_table = "parts";
    spec.backfill = true;
    spec.backfill_chunk_rows = 32;
    spec.scrub = true;
    spec.scrub_chunk_rows = 32;
  }

  Result<std::unique_ptr<hub::DeltaHub>> MakeHub() {
    OPDELTA_ASSIGN_OR_RETURN(std::unique_ptr<hub::DeltaHub> hub,
                             hub::DeltaHub::Create(wh.get(), options));
    spec.source = src.get();
    OPDELTA_RETURN_IF_ERROR(hub->AddSource(spec));
    OPDELTA_RETURN_IF_ERROR(hub->Setup());
    return hub;
  }

  /// Closes and reopens the warehouse database (for on-disk corruption).
  void ReopenWarehouse() {
    OPDELTA_EXPECT_OK(wh->FlushAll());
    OPDELTA_EXPECT_OK(wh->Close());
    wh.reset();
    std::unique_ptr<engine::Database> reopened;
    OPDELTA_EXPECT_OK(
        engine::Database::Open(wh_dir, NoTimestampOptions(), &reopened));
    wh = std::move(reopened);
  }

  std::string wh_dir;
  std::unique_ptr<engine::Database> src;
  std::unique_ptr<engine::Database> wh;
  hub::HubOptions options;
  hub::SourceSpec spec;
};

void RunUntilBackfillDone(hub::DeltaHub* hub, int max_rounds = 200) {
  for (int round = 0; round < max_rounds; ++round) {
    OPDELTA_ASSERT_OK(hub->RunRound());
    if (hub->Stats().sources[0].backfill_done) return;
  }
  FAIL() << "backfill did not finish in " << max_rounds << " rounds";
}

/// Drives rounds until `passes` further scrub passes complete.
void RunScrubPasses(hub::DeltaHub* hub, uint64_t passes,
                    int max_rounds = 2000) {
  const uint64_t start = hub->Stats().sources[0].last_scrub_pass;
  for (int round = 0; round < max_rounds; ++round) {
    OPDELTA_ASSERT_OK(hub->RunRound());
    if (hub->Stats().sources[0].last_scrub_pass >= start + passes) return;
  }
  FAIL() << passes << " scrub passes did not finish in " << max_rounds
         << " rounds";
}

/// The heap file of the warehouse `parts` table: the lowest-numbered
/// t_<id>.db in the database directory, because `parts` is the first table
/// this fixture ever creates there.
std::string PartsHeapPath(const std::string& db_dir) {
  std::vector<std::string> names;
  OPDELTA_EXPECT_OK(Env::Default()->ListDir(db_dir, &names));
  std::string best;
  long best_id = -1;
  for (const std::string& name : names) {
    if (name.size() < 6 || name.compare(0, 2, "t_") != 0 ||
        name.compare(name.size() - 3, 3, ".db") != 0) {
      continue;
    }
    const long id = std::strtol(name.c_str() + 2, nullptr, 10);
    if (best_id < 0 || id < best_id) {
      best_id = id;
      best = name;
    }
  }
  EXPECT_GE(best_id, 0) << "no heap files under " << db_dir;
  return db_dir + "/" + best;
}

/// Flips one random bit in each of `flips` randomly chosen live heap
/// records of `path`, keeping every record decodable, its key intact, and
/// at least one non-timestamp column changed — damage the engine cannot
/// notice but a digest must. Also page-deletes `holes` further records.
void CorruptHeapFile(const std::string& path, const catalog::Schema& schema,
                     uint64_t seed, int flips, int holes, int* flipped) {
  *flipped = 0;
  std::string file;
  OPDELTA_ASSERT_OK(Env::Default()->ReadFileToString(path, &file));
  ASSERT_EQ(file.size() % storage::kPageSize, 0u);
  ASSERT_GT(file.size(), 0u);

  struct Loc {
    size_t page;
    uint16_t slot;
  };
  std::vector<Loc> live;
  const size_t num_pages = file.size() / storage::kPageSize;
  for (size_t p = 0; p < num_pages; ++p) {
    storage::SlottedPage page(&file[p * storage::kPageSize]);
    for (uint16_t s = 0; s < page.slot_count(); ++s) {
      if (page.IsLive(s)) live.push_back({p, s});
    }
  }
  ASSERT_GT(live.size(), static_cast<size_t>(flips + holes));
  std::mt19937_64 rng(seed);
  std::shuffle(live.begin(), live.end(), rng);

  const int ts_col = schema.TimestampColumnIndex();
  size_t next = 0;
  for (int f = 0; f < flips && next < live.size(); ++next) {
    const Loc loc = live[next];
    storage::SlottedPage page(&file[loc.page * storage::kPageSize]);
    Slice record;
    OPDELTA_ASSERT_OK(page.Read(loc.slot, &record));
    const size_t offset = static_cast<size_t>(record.data() - file.data());
    catalog::Row original;
    OPDELTA_ASSERT_OK(
        catalog::RowCodec::Decode(schema, record, &original));
    // Revert-and-retry: most random flips break decoding or land in the
    // skipped timestamp column; keep drawing until one sticks.
    for (int attempt = 0; attempt < 256; ++attempt) {
      const size_t bit = rng() % (record.size() * 8);
      file[offset + bit / 8] ^= static_cast<char>(1u << (bit % 8));
      catalog::Row damaged;
      Status st = catalog::RowCodec::Decode(
          schema, Slice(file.data() + offset, record.size()), &damaged);
      bool good = st.ok() && damaged.size() == original.size() &&
                  damaged[0] == original[0];
      if (good) {
        bool visible = false;
        for (size_t c = 1; c < damaged.size(); ++c) {
          if (static_cast<int>(c) == ts_col) continue;
          if (damaged[c] != original[c]) visible = true;
        }
        good = visible;
      }
      if (good) {
        ++*flipped;
        ++f;
        break;
      }
      file[offset + bit / 8] ^= static_cast<char>(1u << (bit % 8));
    }
  }
  for (int h = 0; h < holes && next < live.size(); ++h, ++next) {
    const Loc loc = live[next];
    storage::SlottedPage page(&file[loc.page * storage::kPageSize]);
    OPDELTA_ASSERT_OK(page.Delete(loc.slot));
  }
  OPDELTA_ASSERT_OK(Env::Default()->WriteStringToFile(path, Slice(file)));
}

/// Acceptance scenario, part 1: sustained concurrent writes and NO damage
/// — across seeds, the scrubber must never report (let alone repair) a
/// mismatch. In-flight deltas are inconclusive retries, nothing else.
TEST(ScrubHubTest, NoFalsePositivesUnderConcurrentWriters) {
  constexpr uint64_t kSeeds[] = {1, 2, 3, 4, 5};
  uint64_t total_inconclusive = 0;
  for (const uint64_t seed : kSeeds) {
    TempDir dir;
    HubFixture fx(dir, std::to_string(seed));
    fx.options.produce_attempts = 5;
    workload::PartsWorkload wl;
    OPDELTA_ASSERT_OK(wl.Populate(fx.src.get(), "parts", 200));

    Result<std::unique_ptr<hub::DeltaHub>> hub = fx.MakeHub();
    ASSERT_TRUE(hub.ok()) << hub.status().ToString();
    RunUntilBackfillDone(hub->get());
    extract::OpDeltaCapture* capture = (*hub)->capture("sc");
    ASSERT_NE(capture, nullptr);

    std::thread writer([&] {
      std::mt19937_64 rng(seed ^ FaultSeedFromEnv(42));
      int64_t next_key = 1000;
      for (int i = 0; i < 80; ++i) {
        sql::Statement stmt;
        switch (rng() % 3) {
          case 0:
            stmt = wl.MakeInsert("parts", next_key, 2);
            next_key += 2;
            break;
          case 1: {
            const int64_t lo = static_cast<int64_t>(rng() % 220);
            stmt = wl.MakeUpdate("parts", lo,
                                 lo + 1 + static_cast<int64_t>(rng() % 15),
                                 "w" + std::to_string(i));
            break;
          }
          default: {
            const int64_t lo = static_cast<int64_t>(rng() % 220);
            stmt = wl.MakeDelete("parts", lo,
                                 lo + 1 + static_cast<int64_t>(rng() % 2));
            break;
          }
        }
        OPDELTA_EXPECT_OK(
            Retry([&] { return capture->RunTransaction({stmt}).status(); }));
      }
    });
    // Scrub concurrently with the writer; transient conflicts are part of
    // the scenario.
    for (int round = 0; round < 120; ++round) (void)(*hub)->RunRound();
    writer.join();
    // With the source quiet again, complete a full conclusive pass.
    RunScrubPasses(hub->get(), 1);

    const hub::SourceStats stats = (*hub)->Stats().sources[0];
    EXPECT_EQ(stats.chunks_mismatched, 0u) << "seed " << seed;
    EXPECT_EQ(stats.chunks_repaired, 0u) << "seed " << seed;
    EXPECT_GT(stats.chunks_scrubbed, 0u);
    total_inconclusive += stats.chunks_inconclusive;
    OPDELTA_EXPECT_OK((*hub)->Stop());
    ASSERT_TRUE(TablesEqual(fx.src.get(), "parts", fx.wh.get(), "parts"))
        << "seed " << seed;
  }
  // Across five seeds, at least one window must have been touched by a
  // live delta — otherwise the conservatism was never exercised.
  EXPECT_GT(total_inconclusive, 0u);
}

/// Acceptance scenario, part 2: on-disk corruption — bit-flipped rows,
/// page-deleted rows and a dead-letter-style hole — plus concurrent
/// writers. Scrub repair alone must converge warehouse to source, with
/// every repair justified by real damage.
TEST(ScrubHubTest, CorruptedWarehouseConvergesUnderConcurrentWriters) {
  constexpr uint64_t kSeeds[] = {1, 2, 3, 4, 5};
  for (const uint64_t seed : kSeeds) {
    TempDir dir;
    HubFixture fx(dir, std::to_string(seed));
    fx.options.produce_attempts = 5;
    workload::PartsWorkload wl;
    OPDELTA_ASSERT_OK(wl.Populate(fx.src.get(), "parts", 200));
    {
      Result<std::unique_ptr<hub::DeltaHub>> boot = fx.MakeHub();
      ASSERT_TRUE(boot.ok()) << boot.status().ToString();
      RunUntilBackfillDone(boot->get());
      OPDELTA_EXPECT_OK((*boot)->Stop());
    }

    // Damage the cold warehouse heap: decodable bit flips + slot holes.
    fx.ReopenWarehouse();  // flush, close
    int flipped = 0;
    CorruptHeapFile(PartsHeapPath(fx.wh_dir),
                    workload::PartsWorkload::Schema(),
                    seed * 31 + FaultSeedFromEnv(7), /*flips=*/5, /*holes=*/3,
                    &flipped);
    ASSERT_GT(flipped, 0);
    fx.ReopenWarehouse();  // no-op flush; reopens over the damaged file
    // A dead-letter-style hole on top: committed source rows the pipeline
    // will never re-ship.
    OPDELTA_ASSERT_OK(fx.wh->WithTransaction([&](txn::Transaction* txn) {
      return fx.wh
          ->DeleteWhere(txn, "parts",
                        engine::Predicate::Where("id", engine::CompareOp::kGe,
                                                 catalog::Value::Int64(190))
                            .And("id", engine::CompareOp::kLt,
                                 catalog::Value::Int64(195)))
          .status();
    }));

    Result<std::unique_ptr<hub::DeltaHub>> hub = fx.MakeHub();
    ASSERT_TRUE(hub.ok()) << hub.status().ToString();
    extract::OpDeltaCapture* capture = (*hub)->capture("sc");
    ASSERT_NE(capture, nullptr);
    std::thread writer([&] {
      std::mt19937_64 rng(seed ^ FaultSeedFromEnv(42));
      int64_t next_key = 1000;
      for (int i = 0; i < 60; ++i) {
        sql::Statement stmt;
        if (rng() % 2 == 0) {
          stmt = wl.MakeInsert("parts", next_key, 2);
          next_key += 2;
        } else {
          const int64_t lo = static_cast<int64_t>(rng() % 180);
          stmt = wl.MakeUpdate("parts", lo,
                               lo + 1 + static_cast<int64_t>(rng() % 10),
                               "w" + std::to_string(i));
        }
        OPDELTA_EXPECT_OK(
            Retry([&] { return capture->RunTransaction({stmt}).status(); }));
      }
    });
    for (int round = 0; round < 120; ++round) (void)(*hub)->RunRound();
    writer.join();
    // Quiet source: one pass to finish finding/repairing, one to confirm.
    RunScrubPasses(hub->get(), 2);

    const hub::SourceStats stats = (*hub)->Stats().sources[0];
    EXPECT_GT(stats.chunks_repaired, 0u) << "seed " << seed;
    EXPECT_EQ(stats.quarantined, false);
    OPDELTA_EXPECT_OK((*hub)->Stop());
    ASSERT_TRUE(TablesEqual(fx.src.get(), "parts", fx.wh.get(), "parts"))
        << "diverged at seed " << seed;
  }
}

TEST(ScrubHubTest, ScrubDeferredUntilBackfillDone) {
  TempDir dir;
  HubFixture fx(dir, "defer");
  workload::PartsWorkload wl;
  OPDELTA_ASSERT_OK(wl.Populate(fx.src.get(), "parts", 100));
  Result<std::unique_ptr<hub::DeltaHub>> hub = fx.MakeHub();
  ASSERT_TRUE(hub.ok()) << hub.status().ToString();

  OPDELTA_ASSERT_OK((*hub)->RunRound());
  hub::SourceStats stats = (*hub)->Stats().sources[0];
  EXPECT_FALSE(stats.backfill_done);
  EXPECT_EQ(stats.chunks_scrubbed + stats.chunks_inconclusive, 0u);

  RunUntilBackfillDone(hub->get());
  RunScrubPasses(hub->get(), 1);
  stats = (*hub)->Stats().sources[0];
  EXPECT_GT(stats.chunks_scrubbed, 0u);
  EXPECT_EQ(stats.chunks_mismatched, 0u);
  EXPECT_EQ(stats.last_scrub_pass, 1u);
  OPDELTA_EXPECT_OK((*hub)->Stop());
}

TEST(ScrubHubTest, ScrubRequiresExclusiveWarehouseTable) {
  TempDir dir;
  HubFixture fx(dir, "excl");
  auto src2 = OpenDb(dir, "src2", NoTimestampOptions());
  workload::PartsWorkload wl;
  OPDELTA_ASSERT_OK(wl.CreateTable(src2.get(), "parts"));

  Result<std::unique_ptr<hub::DeltaHub>> hub =
      hub::DeltaHub::Create(fx.wh.get(), fx.options);
  ASSERT_TRUE(hub.ok()) << hub.status().ToString();
  fx.spec.source = fx.src.get();
  OPDELTA_ASSERT_OK((*hub)->AddSource(fx.spec));

  // A second source feeding the same warehouse table cannot coexist with
  // a scrubbing owner: its deltas would be "corruption" to the digest.
  hub::SourceSpec second = fx.spec;
  second.name = "sc2";
  second.source = src2.get();
  second.scrub = false;
  Status st = (*hub)->AddSource(second);
  EXPECT_EQ(st.code(), StatusCode::kNotSupported) << st.ToString();
}

}  // namespace
}  // namespace opdelta::scrub
