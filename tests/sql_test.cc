#include <gtest/gtest.h>

#include "common/random.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "sql/statement.h"
#include "workload/workload.h"
#include "tests/test_util.h"

namespace opdelta::sql {
namespace {

using catalog::Row;
using catalog::Value;
using engine::CompareOp;
using engine::Predicate;
using opdelta::testing::CountRows;
using opdelta::testing::OpenDb;
using opdelta::testing::TableContents;
using opdelta::testing::TempDir;

// -------------------------------------------------------------- Rendering

TEST(StatementTest, InsertToSql) {
  InsertStmt s;
  s.table = "parts";
  s.rows.push_back({Value::Int64(1), Value::String("it's"), Value::Null()});
  s.rows.push_back({Value::Int64(2), Value::String("b"), Value::Double(1.5)});
  Statement stmt(std::move(s));
  EXPECT_EQ(stmt.ToSql(),
            "INSERT INTO parts VALUES (1, 'it''s', NULL), (2, 'b', 1.5)");
}

TEST(StatementTest, UpdateToSql) {
  UpdateStmt s;
  s.table = "parts";
  s.sets.push_back(engine::Assignment{"status", Value::String("revised")});
  s.where = Predicate::Where("last_modified", CompareOp::kGt,
                             Value::Timestamp(942652800));
  Statement stmt(std::move(s));
  // The paper's motivating example: this text ~70 bytes, while its value
  // delta would be thousands of before/after records.
  EXPECT_EQ(stmt.ToSql(),
            "UPDATE parts SET status = 'revised' WHERE last_modified > "
            "TS:942652800");
  EXPECT_LT(stmt.ToSql().size(), 80u);
}

TEST(StatementTest, DeleteToSql) {
  DeleteStmt s;
  s.table = "parts";
  s.where = Predicate::Where("id", CompareOp::kLe, Value::Int64(10))
                .And("status", CompareOp::kNe, Value::String("keep"));
  Statement stmt(std::move(s));
  EXPECT_EQ(stmt.ToSql(),
            "DELETE FROM parts WHERE id <= 10 AND status <> 'keep'");
}

TEST(StatementTest, DeleteWithoutWhere) {
  DeleteStmt s;
  s.table = "t";
  EXPECT_EQ(Statement(std::move(s)).ToSql(), "DELETE FROM t");
}

// ---------------------------------------------------------------- Parsing

TEST(ParserTest, ParseInsert) {
  Result<Statement> r =
      Parser::Parse("INSERT INTO parts VALUES (1, 'a', 2.5, TS:99, NULL)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(r->is_insert());
  const InsertStmt& s = r->insert();
  EXPECT_EQ(s.table, "parts");
  ASSERT_EQ(s.rows.size(), 1u);
  ASSERT_EQ(s.rows[0].size(), 5u);
  EXPECT_EQ(s.rows[0][0].AsInt64(), 1);
  EXPECT_EQ(s.rows[0][1].AsString(), "a");
  EXPECT_DOUBLE_EQ(s.rows[0][2].AsDouble(), 2.5);
  EXPECT_EQ(s.rows[0][3].AsTimestamp(), 99);
  EXPECT_TRUE(s.rows[0][4].is_null());
}

TEST(ParserTest, ParseMultiRowInsert) {
  Result<Statement> r =
      Parser::Parse("insert into t values (1), (2), (3)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->insert().rows.size(), 3u);
}

TEST(ParserTest, ParseUpdateWithWhere) {
  Result<Statement> r = Parser::Parse(
      "UPDATE parts SET status = 'revised', qty = 5 WHERE id >= 10 AND id < "
      "20");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const UpdateStmt& s = r->update();
  ASSERT_EQ(s.sets.size(), 2u);
  EXPECT_EQ(s.sets[0].column, "status");
  EXPECT_EQ(s.sets[1].value.AsInt64(), 5);
  ASSERT_EQ(s.where.conjuncts().size(), 2u);
  EXPECT_EQ(s.where.conjuncts()[0].op, CompareOp::kGe);
  EXPECT_EQ(s.where.conjuncts()[1].op, CompareOp::kLt);
}

TEST(ParserTest, ParseDeleteVariants) {
  ASSERT_TRUE(Parser::Parse("DELETE FROM t").ok());
  Result<Statement> r = Parser::Parse("delete from t where x <> 'a''b'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->delete_stmt().where.conjuncts()[0].literal.AsString(), "a'b");
}

TEST(ParserTest, NegativeNumbersAndFloats) {
  Result<Statement> r =
      Parser::Parse("INSERT INTO t VALUES (-5, -2.5, 1e3)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->insert().rows[0][0].AsInt64(), -5);
  EXPECT_DOUBLE_EQ(r->insert().rows[0][1].AsDouble(), -2.5);
  EXPECT_DOUBLE_EQ(r->insert().rows[0][2].AsDouble(), 1000.0);
}

TEST(ParserTest, ParseSelect) {
  Result<Statement> star = Parser::Parse(
      "SELECT * FROM parts WHERE last_modified > TS:942652800");
  ASSERT_TRUE(star.ok()) << star.status().ToString();
  ASSERT_TRUE(star->is_select());
  EXPECT_TRUE(star->select().columns.empty());
  EXPECT_EQ(star->select().table, "parts");
  EXPECT_EQ(star->select().where.conjuncts().size(), 1u);

  Result<Statement> cols =
      Parser::Parse("select id, status from parts");
  ASSERT_TRUE(cols.ok()) << cols.status().ToString();
  EXPECT_EQ(cols->select().columns,
            (std::vector<std::string>{"id", "status"}));
  // Round trip.
  EXPECT_EQ(cols->ToSql(), "SELECT id, status FROM parts");
}

TEST(ParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(Parser::Parse("").ok());
  EXPECT_FALSE(Parser::Parse("SELECT FROM t").ok());
  EXPECT_FALSE(Parser::Parse("SELECT * t").ok());
  EXPECT_FALSE(Parser::Parse("DROP TABLE t").ok());
  EXPECT_FALSE(Parser::Parse("INSERT INTO t VALUES (1").ok());
  EXPECT_FALSE(Parser::Parse("UPDATE t SET").ok());
  EXPECT_FALSE(Parser::Parse("DELETE FROM t WHERE x ==== 1").ok());
  EXPECT_FALSE(Parser::Parse("INSERT INTO t VALUES (1) garbage").ok());
  EXPECT_FALSE(Parser::Parse("INSERT INTO t VALUES ('unterminated)").ok());
}

TEST(ParserTest, ParseScriptMultipleStatements) {
  std::vector<Statement> stmts;
  OPDELTA_ASSERT_OK(Parser::ParseScript(
      "INSERT INTO t VALUES (1); DELETE FROM t WHERE id = 1;\n"
      "UPDATE t SET x = 2",
      &stmts));
  ASSERT_EQ(stmts.size(), 3u);
  EXPECT_TRUE(stmts[0].is_insert());
  EXPECT_TRUE(stmts[1].is_delete());
  EXPECT_TRUE(stmts[2].is_update());
}

// Robustness property: arbitrary byte strings and mutated statements must
// come back as error statuses, never crashes or hangs.
class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, GarbageNeverCrashes) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    std::string input;
    const size_t len = rng.Uniform(120);
    for (size_t j = 0; j < len; ++j) {
      input.push_back(static_cast<char>(rng.Uniform(256)));
    }
    Result<Statement> r = Parser::Parse(input);  // must not crash
    if (r.ok()) {
      // Whatever parsed must round-trip through its own rendering.
      EXPECT_TRUE(Parser::Parse(r->ToSql()).ok());
    }
  }
}

TEST_P(ParserFuzzTest, MutatedValidStatementsNeverCrash) {
  Rng rng(GetParam() + 1000);
  const std::string base =
      "UPDATE parts SET status = 'revised', qty = 5 WHERE id >= 10 AND "
      "name <> 'it''s' AND ts > TS:123456";
  for (int i = 0; i < 2000; ++i) {
    std::string input = base;
    const size_t mutations = 1 + rng.Uniform(6);
    for (size_t m = 0; m < mutations; ++m) {
      switch (rng.Uniform(3)) {
        case 0:  // flip a byte
          input[rng.Uniform(input.size())] =
              static_cast<char>(rng.Uniform(256));
          break;
        case 1:  // delete a span
          input.erase(rng.Uniform(input.size()),
                      rng.Uniform(10));
          break;
        default:  // duplicate a span
          input.insert(rng.Uniform(input.size() + 1),
                       input.substr(rng.Uniform(input.size()),
                                    rng.Uniform(10)));
          break;
      }
      if (input.empty()) input = "x";
    }
    (void)Parser::Parse(input);  // outcome irrelevant; crash/hang is the failure
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest, ::testing::Values(41, 42));

// Round-trip property: ToSql -> Parse -> ToSql is a fixed point.
class SqlRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SqlRoundTripTest, RandomStatementsRoundTrip) {
  Rng rng(GetParam());
  workload::PartsWorkload wl(
      workload::PartsWorkload::Options{100, GetParam()});
  for (int i = 0; i < 200; ++i) {
    Statement stmt;
    switch (rng.Uniform(3)) {
      case 0:
        stmt = wl.MakeInsert("parts", rng.Uniform(1000),
                             1 + rng.Uniform(5));
        break;
      case 1:
        stmt = wl.MakeUpdate("parts", rng.Uniform(100),
                             100 + rng.Uniform(100),
                             "s" + std::to_string(rng.Uniform(10)));
        break;
      default:
        stmt = wl.MakeDelete("parts", rng.Uniform(100),
                             100 + rng.Uniform(100));
        break;
    }
    const std::string sql = stmt.ToSql();
    Result<Statement> parsed = Parser::Parse(sql);
    ASSERT_TRUE(parsed.ok()) << sql << " => " << parsed.status().ToString();
    EXPECT_EQ(parsed->ToSql(), sql);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlRoundTripTest,
                         ::testing::Values(11, 12, 13));

// --------------------------------------------------------------- Executor

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = OpenDb(dir_, "db");
    OPDELTA_ASSERT_OK(
        db_->CreateTable("parts", workload::PartsWorkload::Schema()));
    executor_ = std::make_unique<Executor>(db_.get());
  }
  TempDir dir_;
  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<Executor> executor_;
};

TEST_F(ExecutorTest, InsertUpdateDeleteLifecycle) {
  Result<size_t> r = executor_->ExecuteSql(
      "INSERT INTO parts VALUES (1, 'active', 'p1', NULL), "
      "(2, 'active', 'p2', NULL)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, 2u);
  EXPECT_EQ(CountRows(db_.get(), "parts"), 2u);

  r = executor_->ExecuteSql("UPDATE parts SET status = 'done' WHERE id = 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, 1u);
  auto contents = TableContents(db_.get(), "parts");
  EXPECT_EQ(contents.at(Value::Int64(1))[1].AsString(), "done");

  r = executor_->ExecuteSql("DELETE FROM parts WHERE status = 'done'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, 1u);
  EXPECT_EQ(CountRows(db_.get(), "parts"), 1u);
}

TEST_F(ExecutorTest, CoercesIntLiteralsToTimestampColumns) {
  // The timestamp column is last; an integer literal must coerce.
  OPDELTA_ASSERT_OK(executor_
                        ->ExecuteSql("INSERT INTO parts VALUES "
                                     "(1, 'a', 'p', 12345)")
                        .status());
  auto contents = TableContents(db_.get(), "parts");
  // auto_timestamp stamps over explicit nulls but InsertStmt supplied a
  // value through the normal (stamping) path, so just check the row landed.
  ASSERT_EQ(contents.size(), 1u);
}

TEST_F(ExecutorTest, WherePredicateAgainstTimestampCoerces) {
  OPDELTA_ASSERT_OK(
      executor_->ExecuteSql("INSERT INTO parts VALUES (1, 'a', 'p', NULL)")
          .status());
  // last_modified was stamped with the current clock; 0 is far in the past.
  Result<size_t> r = executor_->ExecuteSql(
      "DELETE FROM parts WHERE last_modified > 0");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, 1u);
}

TEST_F(ExecutorTest, ArityMismatchRejected) {
  EXPECT_FALSE(
      executor_->ExecuteSql("INSERT INTO parts VALUES (1, 'a')").ok());
  EXPECT_EQ(CountRows(db_.get(), "parts"), 0u);
}

TEST_F(ExecutorTest, UnknownColumnRejected) {
  EXPECT_FALSE(
      executor_->ExecuteSql("UPDATE parts SET ghost = 1 WHERE id = 1").ok());
  EXPECT_FALSE(
      executor_->ExecuteSql("DELETE FROM parts WHERE ghost = 1").ok());
}

TEST_F(ExecutorTest, UnknownTableRejected) {
  EXPECT_FALSE(executor_->ExecuteSql("INSERT INTO ghost VALUES (1)").ok());
}

TEST_F(ExecutorTest, SelectQueryReturnsProjectedRows) {
  OPDELTA_ASSERT_OK(executor_
                        ->ExecuteSql("INSERT INTO parts VALUES "
                                     "(1, 'a', 'p1', NULL), "
                                     "(2, 'b', 'p2', NULL), "
                                     "(3, 'a', 'p3', NULL)")
                        .status());
  // The paper's extraction query shape.
  Result<std::vector<catalog::Row>> all =
      executor_->ExecuteSqlQuery("SELECT * FROM parts WHERE status = 'a'");
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  EXPECT_EQ(all->size(), 2u);
  EXPECT_EQ((*all)[0].size(), 4u);

  Result<std::vector<catalog::Row>> projected = executor_->ExecuteSqlQuery(
      "SELECT payload, id FROM parts WHERE id >= 2");
  ASSERT_TRUE(projected.ok()) << projected.status().ToString();
  ASSERT_EQ(projected->size(), 2u);
  EXPECT_EQ((*projected)[0].size(), 2u);
  EXPECT_EQ((*projected)[0][0].AsString(), "p2");
  EXPECT_EQ((*projected)[0][1].AsInt64(), 2);
}

TEST_F(ExecutorTest, SelectErrors) {
  EXPECT_FALSE(executor_->ExecuteSqlQuery("SELECT * FROM ghost").ok());
  EXPECT_FALSE(
      executor_->ExecuteSqlQuery("SELECT ghost_col FROM parts").ok());
  // SELECT through the DML entry point is rejected with guidance.
  Result<Statement> stmt = Parser::Parse("SELECT * FROM parts");
  ASSERT_TRUE(stmt.ok());
  auto txn = db_->Begin();
  EXPECT_FALSE(executor_->Execute(txn.get(), *stmt).ok());
  (void)db_->Abort(txn.get());
  // And DML through the query entry point likewise.
  Result<Statement> dml = Parser::Parse("DELETE FROM parts");
  ASSERT_TRUE(dml.ok());
  EXPECT_FALSE(executor_->ExecuteQuery(nullptr, *dml).ok());
}

TEST_F(ExecutorTest, StringToIntCoercionFails) {
  EXPECT_FALSE(executor_
                   ->ExecuteSql("INSERT INTO parts VALUES "
                                "('x', 'a', 'p', NULL)")
                   .ok());
}

TEST_F(ExecutorTest, ScriptFailureAbortsThatStatementOnly) {
  Result<size_t> r = executor_->ExecuteSql(
      "INSERT INTO parts VALUES (1, 'a', 'p', NULL); "
      "INSERT INTO parts VALUES ('bad', 'a', 'p', NULL)");
  EXPECT_FALSE(r.ok());
  // First statement committed in its own transaction before the failure.
  EXPECT_EQ(CountRows(db_.get(), "parts"), 1u);
}

}  // namespace
}  // namespace opdelta::sql
