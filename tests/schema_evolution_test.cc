// Schema-evolution robustness: epoch-versioned DDL capture, online
// warehouse migration, and drift-proof parsing. Exercises the full chain —
// ALTER grammar, catalog epoch history and persistence, the engine's
// online migration, epoch-stamped transport frames, the warehouse's
// idempotent schema-event apply, quarantine of incompatible DDL, crash
// recovery at every dead-disk fault point of a migration, and a randomized
// DDL-under-concurrent-writes convergence sweep.

#include <atomic>
#include <chrono>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/coding.h"
#include "common/crc32.h"
#include "common/fault_env.h"
#include "engine/database.h"
#include "extract/op_delta.h"
#include "extract/schema_event.h"
#include "hub/delta_hub.h"
#include "pipeline/source_leg.h"
#include "common/thread_pool.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "sql/statement_cache.h"
#include "warehouse/apply_ledger.h"
#include "warehouse/apply_scheduler.h"
#include "warehouse/integrator.h"
#include "workload/workload.h"
#include "tests/test_util.h"

namespace opdelta {
namespace {

using catalog::AlterTableSpec;
using catalog::Column;
using catalog::Value;
using catalog::ValueType;
using opdelta::testing::CountRows;
using opdelta::testing::OpenDb;
using opdelta::testing::ScopedEnvOverride;
using opdelta::testing::TablesEqual;
using opdelta::testing::TempDir;

engine::DatabaseOptions NoTimestampOptions() {
  engine::DatabaseOptions options;
  options.auto_timestamp = false;
  return options;
}

// ------------------------------------------------------------ SQL layer

TEST(AlterParserTest, AddColumnWithDefaultRoundTrips) {
  Result<sql::Statement> stmt =
      sql::Parser::Parse("ALTER TABLE parts ADD COLUMN qty INT64 DEFAULT 7");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_TRUE(stmt->is_alter());
  const sql::AlterStmt& a = stmt->alter();
  EXPECT_EQ(a.table, "parts");
  EXPECT_EQ(a.spec.kind, AlterTableSpec::Kind::kAddColumn);
  EXPECT_EQ(a.spec.column.name, "qty");
  EXPECT_EQ(a.spec.column.type, ValueType::kInt64);
  ASSERT_TRUE(a.spec.column.has_default());
  EXPECT_EQ(a.spec.column.default_value.AsInt64(), 7);

  // Canonical text re-parses to the same statement.
  Result<sql::Statement> again = sql::Parser::Parse(stmt->ToSql());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->alter().spec.ToString(), a.spec.ToString());
}

TEST(AlterParserTest, DropAndAlterColumnForms) {
  Result<sql::Statement> drop =
      sql::Parser::Parse("ALTER TABLE parts DROP COLUMN payload");
  ASSERT_TRUE(drop.ok()) << drop.status().ToString();
  EXPECT_EQ(drop->alter().spec.kind, AlterTableSpec::Kind::kDropColumn);
  EXPECT_EQ(drop->alter().spec.column.name, "payload");

  Result<sql::Statement> retype =
      sql::Parser::Parse("ALTER TABLE parts ALTER COLUMN status INT64");
  ASSERT_TRUE(retype.ok()) << retype.status().ToString();
  EXPECT_EQ(retype->alter().spec.kind, AlterTableSpec::Kind::kAlterType);
  EXPECT_EQ(retype->alter().spec.column.type, ValueType::kInt64);

  EXPECT_FALSE(sql::Parser::Parse("ALTER TABLE parts RENAME COLUMN a").ok());
}

// -------------------------------------------------- catalog epoch history

TEST(SchemaEpochTest, HistoryAndPersistenceAcrossRestart) {
  TempDir dir;
  workload::PartsWorkload wl;
  {
    std::unique_ptr<engine::Database> db =
        OpenDb(dir, "db", NoTimestampOptions());
    OPDELTA_ASSERT_OK(wl.CreateTable(db.get(), "parts"));
    EXPECT_EQ(db->ddl_epoch(), 1u);

    AlterTableSpec add;
    add.kind = AlterTableSpec::Kind::kAddColumn;
    add.column = Column{"qty", ValueType::kInt64, Value::Int64(5)};
    OPDELTA_ASSERT_OK(db->AlterTable("parts", add));
    EXPECT_EQ(db->ddl_epoch(), 2u);

    // Epoch 1 still decodes with the pre-DDL schema; epoch 2 is current.
    Result<catalog::SchemaMap> old_map = db->catalog().SchemasAt(1);
    ASSERT_TRUE(old_map.ok()) << old_map.status().ToString();
    EXPECT_EQ(old_map->at("parts").num_columns(), 4u);
    Result<catalog::SchemaMap> new_map = db->catalog().SchemasAt(2);
    ASSERT_TRUE(new_map.ok()) << new_map.status().ToString();
    EXPECT_EQ(new_map->at("parts").num_columns(), 5u);

    // Unknown/future epochs fail loud, never guess.
    Result<catalog::SchemaMap> future = db->catalog().SchemasAt(9);
    EXPECT_EQ(future.status().code(), StatusCode::kSchemaMismatch);
    EXPECT_EQ(db->SchemaMapAt(9).status().code(),
              StatusCode::kSchemaMismatch);
    OPDELTA_ASSERT_OK(db->Close());
  }
  {
    // Epoch, history, and the added column's default survive restart.
    std::unique_ptr<engine::Database> db =
        OpenDb(dir, "db", NoTimestampOptions());
    EXPECT_EQ(db->ddl_epoch(), 2u);
    Result<catalog::SchemaMap> old_map = db->catalog().SchemasAt(1);
    ASSERT_TRUE(old_map.ok()) << old_map.status().ToString();
    EXPECT_EQ(old_map->at("parts").num_columns(), 4u);
    const catalog::Schema& live = db->GetTable("parts")->schema();
    ASSERT_EQ(live.num_columns(), 5u);
    EXPECT_TRUE(live.column(4).has_default());
    EXPECT_EQ(live.column(4).default_value.AsInt64(), 5);
    OPDELTA_ASSERT_OK(db->Close());
  }
}

// ------------------------------------------------------ engine migration

TEST(SchemaEpochTest, OnlineMigrationRewritesRowsAndRebuildsIndexes) {
  TempDir dir;
  workload::PartsWorkload wl;
  std::unique_ptr<engine::Database> db =
      OpenDb(dir, "db", NoTimestampOptions());
  OPDELTA_ASSERT_OK(wl.CreateTable(db.get(), "parts"));
  sql::Executor exec(db.get());
  OPDELTA_ASSERT_OK(
      exec.ExecuteSql(wl.MakeInsert("parts", 0, 50).ToSql()).status());
  OPDELTA_ASSERT_OK(db->CreateIndex("parts", "id"));

  // ADD: every existing row is extended with the default.
  OPDELTA_ASSERT_OK(
      exec.ExecuteSql("ALTER TABLE parts ADD COLUMN qty INT64 DEFAULT 3")
          .status());
  EXPECT_EQ(CountRows(db.get(), "parts"), 50u);
  uint64_t defaulted = 0;
  OPDELTA_ASSERT_OK(db->Scan(nullptr, "parts", engine::Predicate::True(),
                             [&](const storage::Rid&,
                                 const catalog::Row& row) {
                               if (row.size() == 5 && row[4].AsInt64() == 3) {
                                 ++defaulted;
                               }
                               return true;
                             }));
  EXPECT_EQ(defaulted, 50u);
  EXPECT_TRUE(db->GetTable("parts")->HasIndex("id"));

  // The index still answers point queries against the rewritten heap.
  uint64_t hits = 0;
  OPDELTA_ASSERT_OK(db->Scan(
      nullptr, "parts",
      engine::Predicate::Where("id", engine::CompareOp::kEq,
                               Value::Int64(17)),
      [&](const storage::Rid&, const catalog::Row&) {
        ++hits;
        return true;
      }));
  EXPECT_EQ(hits, 1u);

  // DROP: rows shrink back, remaining data intact.
  OPDELTA_ASSERT_OK(
      exec.ExecuteSql("ALTER TABLE parts DROP COLUMN qty").status());
  EXPECT_EQ(db->GetTable("parts")->schema().num_columns(), 4u);
  EXPECT_EQ(CountRows(db.get(), "parts"), 50u);
  EXPECT_EQ(db->ddl_epoch(), 3u);
  OPDELTA_ASSERT_OK(db->Close());
}

// ---------------------------------------------- transport frame compat

TEST(FrameCompatTest, VersionedFrameCarriesSchemaEpoch) {
  extract::BatchId id;
  id.source_id = "s1";
  id.epoch = 7;
  id.seq = 42;
  id.schema_epoch = 3;
  std::string frame;
  pipeline::EncodeBatchFrame(id, "payload", &frame);
  ASSERT_FALSE(frame.empty());
  EXPECT_EQ(frame[0], 'F');

  extract::BatchId out;
  std::string body;
  OPDELTA_ASSERT_OK(pipeline::DecodeBatchFrame(frame, &out, &body));
  EXPECT_EQ(out.source_id, "s1");
  EXPECT_EQ(out.epoch, 7u);
  EXPECT_EQ(out.seq, 42u);
  EXPECT_EQ(out.schema_epoch, 3u);
  EXPECT_FALSE(out.snapshot);
  EXPECT_EQ(body, "payload");
}

std::string LegacyFrame(char tag, const std::string& source_id,
                        uint64_t epoch, uint64_t seq,
                        const std::string& inner) {
  std::string frame;
  frame.push_back(tag);
  PutLengthPrefixed(&frame, Slice(source_id));
  PutFixed64(&frame, epoch);
  PutFixed64(&frame, seq);
  PutFixed32(&frame, Crc32c(inner.data(), inner.size()));
  frame.append(inner);
  return frame;
}

TEST(FrameCompatTest, LegacyFramesDecodeWithSchemaEpochZero) {
  // Frames written by a pre-epoch build ('B'/'C' tags) must keep decoding:
  // a queue can hold them across an upgrade.
  const std::string frame = LegacyFrame('B', "old", 2, 9, "payload");
  extract::BatchId id;
  std::string body;
  OPDELTA_ASSERT_OK(pipeline::DecodeBatchFrame(frame, &id, &body));
  EXPECT_EQ(id.source_id, "old");
  EXPECT_EQ(id.epoch, 2u);
  EXPECT_EQ(id.seq, 9u);
  EXPECT_EQ(id.schema_epoch, 0u);  // 0 = decode against current schemas
  EXPECT_EQ(body, "payload");

  const std::string snapshot = LegacyFrame('C', "old", 2, 10, "rows");
  OPDELTA_ASSERT_OK(pipeline::DecodeBatchFrame(snapshot, &id, &body));
  EXPECT_TRUE(id.snapshot);
}

TEST(FrameCompatTest, UnknownVersionFeatureAndKindFailLoud) {
  extract::BatchId id;
  id.source_id = "s";
  id.seq = 1;
  std::string frame;
  pipeline::EncodeBatchFrame(id, "x", &frame);

  // Future frame version: refuse with the version named.
  std::string bad_version = frame;
  bad_version[1] = 9;
  extract::BatchId out;
  std::string body;
  Status st = pipeline::DecodeBatchFrame(bad_version, &out, &body);
  EXPECT_EQ(st.code(), StatusCode::kSchemaMismatch);
  EXPECT_NE(st.ToString().find("version"), std::string::npos)
      << st.ToString();

  // Unknown feature bit: refuse with the bit named in hex.
  std::string bad_features = frame;
  bad_features[2] = 1;  // low byte of the fixed32 feature mask
  st = pipeline::DecodeBatchFrame(bad_features, &out, &body);
  EXPECT_EQ(st.code(), StatusCode::kSchemaMismatch);
  EXPECT_NE(st.ToString().find("0x"), std::string::npos) << st.ToString();

  // Unknown section/kind tag inside the versioned preamble.
  std::string bad_kind = frame;
  bad_kind[6] = 'Z';
  st = pipeline::DecodeBatchFrame(bad_kind, &out, &body);
  EXPECT_EQ(st.code(), StatusCode::kSchemaMismatch);
  EXPECT_NE(st.ToString().find("kind"), std::string::npos) << st.ToString();
}

// ----------------------------------------------- schema-map cache (sat 1)

TEST(SchemaMapCacheTest, SharedSnapshotInvalidatedByDdl) {
  TempDir dir;
  workload::PartsWorkload wl;
  std::unique_ptr<engine::Database> db =
      OpenDb(dir, "db", NoTimestampOptions());
  OPDELTA_ASSERT_OK(wl.CreateTable(db.get(), "parts"));

  std::shared_ptr<const catalog::SchemaMap> a = db->CurrentSchemaMap();
  std::shared_ptr<const catalog::SchemaMap> b = db->CurrentSchemaMap();
  EXPECT_EQ(a.get(), b.get()) << "repeated calls must share one snapshot";

  AlterTableSpec add;
  add.kind = AlterTableSpec::Kind::kAddColumn;
  add.column = Column{"qty", ValueType::kInt64, Value::Int64(0)};
  OPDELTA_ASSERT_OK(db->AlterTable("parts", add));
  std::shared_ptr<const catalog::SchemaMap> c = db->CurrentSchemaMap();
  EXPECT_NE(a.get(), c.get()) << "DDL must invalidate the cached snapshot";
  EXPECT_EQ(a->at("parts").num_columns(), 4u);  // old snapshot unchanged
  EXPECT_EQ(c->at("parts").num_columns(), 5u);

  // SchemaMapAt: epoch 0 and the current epoch resolve to the live cache;
  // the prior epoch resolves through the history.
  Result<std::shared_ptr<const catalog::SchemaMap>> at0 = db->SchemaMapAt(0);
  ASSERT_TRUE(at0.ok());
  EXPECT_EQ(at0->get(), c.get());
  Result<std::shared_ptr<const catalog::SchemaMap>> at1 = db->SchemaMapAt(1);
  ASSERT_TRUE(at1.ok());
  EXPECT_EQ((*at1)->at("parts").num_columns(), 4u);
  OPDELTA_ASSERT_OK(db->Close());
}

// -------------------------------------- schema pointer stability (sat 3)

TEST(SchemaMapCacheTest, SchemaReferencesStableUnderConcurrentDdl) {
  // Readers bind a schema reference, then a concurrent ALTER rewrites the
  // table. COW snapshots keep old references valid; TSan watches the
  // accesses. Run under the TSan CI job.
  TempDir dir;
  workload::PartsWorkload wl;
  std::unique_ptr<engine::Database> db =
      OpenDb(dir, "db", NoTimestampOptions());
  OPDELTA_ASSERT_OK(wl.CreateTable(db.get(), "parts"));
  sql::Executor exec(db.get());
  OPDELTA_ASSERT_OK(
      exec.ExecuteSql(wl.MakeInsert("parts", 0, 20).ToSql()).status());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        engine::Table* table = db->GetTable("parts");
        ASSERT_NE(table, nullptr);
        const catalog::Schema& schema = table->schema();
        // Hold the reference across a full pass over its columns — a
        // migration freeing the old schema would fault or race here.
        size_t cols = 0;
        for (size_t i = 0; i < schema.num_columns(); ++i) {
          cols += schema.column(i).name.size();
        }
        ASSERT_GT(cols, 0u);
        std::shared_ptr<const catalog::SchemaMap> map =
            db->CurrentSchemaMap();
        ASSERT_NE(map->find("parts"), map->end());
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int i = 0; i < 6; ++i) {
    AlterTableSpec spec;
    if (i % 2 == 0) {
      spec.kind = AlterTableSpec::Kind::kAddColumn;
      spec.column = Column{"extra", ValueType::kInt64, Value::Int64(1)};
    } else {
      spec.kind = AlterTableSpec::Kind::kDropColumn;
      spec.column.name = "extra";
    }
    OPDELTA_ASSERT_OK(db->AlterTable("parts", spec));
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(reads.load(), 0u);
  OPDELTA_ASSERT_OK(db->Close());
}

// ------------------------------------- warehouse migration (idempotency)

class WarehouseMigrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wh_ = OpenDb(dir_, "wh", NoTimestampOptions());
    OPDELTA_ASSERT_OK(wl_.CreateTable(wh_.get(), "parts"));
    ledger_ = std::make_unique<warehouse::ApplyLedger>(wh_.get());
    OPDELTA_ASSERT_OK(ledger_->Setup());
  }

  /// A captured one-event transaction carrying `spec` over the live
  /// warehouse schema.
  extract::OpDeltaTxn EventTxn(const AlterTableSpec& spec, uint64_t epoch) {
    auto event = std::make_shared<extract::SchemaEvent>();
    event->table = "parts";
    event->ddl_epoch = epoch;
    event->spec = spec;
    event->old_schema = wh_->GetTable("parts")->schema();
    Status migrated =
        catalog::ApplyAlter(event->old_schema, spec, &event->new_schema);
    EXPECT_TRUE(migrated.ok()) << migrated.ToString();
    event->ddl_sql = "ALTER TABLE parts " + spec.ToString();

    extract::OpDeltaTxn txn;
    txn.id = 77;
    extract::OpDeltaRecord op;
    op.source_txn = 77;
    op.seq = 1;
    op.sql = event->ddl_sql;
    op.schema_event = std::move(event);
    txn.ops.push_back(std::move(op));
    return txn;
  }

  extract::BatchId Id(uint64_t seq) {
    extract::BatchId id;
    id.source_id = "s1";
    id.epoch = 1;
    id.seq = seq;
    id.schema_epoch = 1;
    return id;
  }

  TempDir dir_;
  workload::PartsWorkload wl_;
  std::unique_ptr<engine::Database> wh_;
  std::unique_ptr<warehouse::ApplyLedger> ledger_;
};

TEST_F(WarehouseMigrationTest, SchemaEventAppliesOnceUnderRedelivery) {
  AlterTableSpec add;
  add.kind = AlterTableSpec::Kind::kAddColumn;
  add.column = Column{"qty", ValueType::kInt64, Value::Int64(4)};
  std::vector<extract::OpDeltaTxn> txns = {EventTxn(add, 2)};

  warehouse::OpDeltaIntegrator integrator(wh_.get());
  warehouse::IntegrationStats stats;
  OPDELTA_ASSERT_OK(integrator.Apply(txns, Id(1), ledger_.get(), &stats));
  EXPECT_EQ(stats.schema_migrations, 1u);
  EXPECT_EQ(wh_->GetTable("parts")->schema().num_columns(), 5u);

  // Redelivery of the same batch: the ledger drops it whole.
  warehouse::IntegrationStats redeliver;
  OPDELTA_ASSERT_OK(
      integrator.Apply(txns, Id(1), ledger_.get(), &redeliver));
  EXPECT_EQ(redeliver.schema_migrations, 0u);
  EXPECT_EQ(redeliver.duplicate_batches, 1u);

  // Crash-between-migration-and-ledger shape: the warehouse is already at
  // the new schema but the batch arrives under a fresh identity. The
  // idempotent re-check makes it a no-op migration, not an error.
  warehouse::IntegrationStats replay;
  OPDELTA_ASSERT_OK(integrator.Apply(txns, Id(2), ledger_.get(), &replay));
  EXPECT_EQ(replay.schema_migrations, 0u);
  EXPECT_EQ(wh_->GetTable("parts")->schema().num_columns(), 5u);
}

// Regression: prepared-statement skeletons are keyed by the warehouse
// ddl_epoch. A migration landing mid-stream must force the next statement
// of every previously-cached shape to re-parse under the new epoch; a
// cache that ignored the epoch would keep the warm entry and skip exactly
// that re-parse, which this test would catch as an unchanged miss count.
TEST_F(WarehouseMigrationTest, ParallelApplyReParsesCachedShapesAcrossDdl) {
  sql::Executor exec(wh_.get());
  OPDELTA_ASSERT_OK(
      exec.ExecuteSql(wl_.MakeInsert("parts", 0, 8).ToSql()).status());

  ThreadPool pool(2);
  sql::StatementCache cache;
  warehouse::ParallelApplyScheduler::Options options;
  options.pool = &pool;
  options.max_inflight = 2;
  options.cache = &cache;
  warehouse::ParallelApplyScheduler scheduler(wh_.get(), options);

  auto update_txn = [](uint64_t id, uint64_t key, const std::string& tag) {
    extract::OpDeltaTxn txn;
    txn.id = id;
    extract::OpDeltaRecord op;
    op.source_txn = id;
    op.seq = 1;
    op.sql = "UPDATE parts SET status = '" + tag +
             "' WHERE id = " + std::to_string(key);
    txn.ops.push_back(std::move(op));
    return txn;
  };

  // Warm one UPDATE shape under the initial epoch: one miss, then hits.
  std::vector<extract::OpDeltaTxn> warm;
  for (uint64_t t = 0; t < 4; ++t) {
    warm.push_back(update_txn(t + 1, t, "warm"));
  }
  warehouse::IntegrationStats stats;
  OPDELTA_ASSERT_OK(scheduler.Apply(warm, Id(1), ledger_.get(), &stats));
  const sql::StatementCacheStats warmed = cache.stats();
  EXPECT_EQ(warmed.misses, 1u);
  EXPECT_EQ(warmed.hits, 3u);

  // The migration bumps the warehouse ddl_epoch.
  const uint64_t epoch_before = wh_->ddl_epoch();
  AlterTableSpec add;
  add.kind = AlterTableSpec::Kind::kAddColumn;
  add.column = Column{"qty", ValueType::kInt64, Value::Int64(4)};
  std::vector<extract::OpDeltaTxn> ddl = {EventTxn(add, 2)};
  warehouse::IntegrationStats ddl_stats;
  OPDELTA_ASSERT_OK(scheduler.Apply(ddl, Id(2), ledger_.get(), &ddl_stats));
  EXPECT_EQ(ddl_stats.schema_migrations, 1u);
  EXPECT_GT(wh_->ddl_epoch(), epoch_before);

  // Same shape after the DDL: exactly one fresh parse, then hits again,
  // and the statements execute against the five-column schema.
  std::vector<extract::OpDeltaTxn> post;
  for (uint64_t t = 0; t < 4; ++t) {
    post.push_back(update_txn(t + 101, t + 4, "post"));
  }
  warehouse::IntegrationStats post_stats;
  OPDELTA_ASSERT_OK(
      scheduler.Apply(post, Id(3), ledger_.get(), &post_stats));
  const sql::StatementCacheStats after = cache.stats();
  EXPECT_EQ(after.misses, warmed.misses + 1);
  EXPECT_EQ(after.hits, warmed.hits + 3);

  uint64_t post_rows = 0;
  OPDELTA_ASSERT_OK(wh_->Scan(nullptr, "parts", engine::Predicate::True(),
                              [&](const storage::Rid&,
                                  const catalog::Row& row) {
                                EXPECT_EQ(row.size(), 5u);
                                EXPECT_EQ(row[4].AsInt64(), 4);
                                if (row[1].AsString() == "post") ++post_rows;
                                return true;
                              }));
  EXPECT_EQ(post_rows, 4u);
}

TEST_F(WarehouseMigrationTest, IncompatibleAndDriftedEventsQuarantine) {
  // Type changes cannot be applied online: refuse with a reason.
  AlterTableSpec retype;
  retype.kind = AlterTableSpec::Kind::kAlterType;
  retype.column = Column{"status", ValueType::kInt64};
  std::vector<extract::OpDeltaTxn> txns = {EventTxn(retype, 2)};
  warehouse::OpDeltaIntegrator integrator(wh_.get());
  warehouse::IntegrationStats stats;
  Status st = integrator.Apply(txns, Id(1), ledger_.get(), &stats);
  EXPECT_EQ(st.code(), StatusCode::kSchemaMismatch);
  EXPECT_NE(st.ToString().find("incompatible"), std::string::npos)
      << st.ToString();
  EXPECT_EQ(wh_->GetTable("parts")->schema().num_columns(), 4u);

  // Drift: the warehouse schema matches neither side of the captured DDL.
  AlterTableSpec add;
  add.kind = AlterTableSpec::Kind::kAddColumn;
  add.column = Column{"qty", ValueType::kInt64, Value::Int64(0)};
  std::vector<extract::OpDeltaTxn> drifted = {EventTxn(add, 2)};
  AlterTableSpec unrelated;
  unrelated.kind = AlterTableSpec::Kind::kAddColumn;
  unrelated.column = Column{"other", ValueType::kString};
  OPDELTA_ASSERT_OK(wh_->AlterTable("parts", unrelated));
  st = integrator.Apply(drifted, Id(3), ledger_.get(), &stats);
  EXPECT_EQ(st.code(), StatusCode::kSchemaMismatch);
  EXPECT_NE(st.ToString().find("drifted"), std::string::npos)
      << st.ToString();
}

// -------------------------------------------------- hub end-to-end DDL

class HubSchemaEvolutionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    src_ = OpenDb(dir_, "src", NoTimestampOptions());
    wh_ = OpenDb(dir_, "wh", NoTimestampOptions());
    OPDELTA_ASSERT_OK(wl_.CreateTable(src_.get(), "parts"));
    OPDELTA_ASSERT_OK(
        wh_->CreateTable("parts", workload::PartsWorkload::Schema()));
  }

  Result<std::unique_ptr<hub::DeltaHub>> MakeHub(bool backfill = false,
                                                 bool scrub = false) {
    hub::HubOptions options;
    options.work_dir = dir_.Sub("hub");
    options.quarantine_after = 2;
    OPDELTA_ASSIGN_OR_RETURN(std::unique_ptr<hub::DeltaHub> hub,
                             hub::DeltaHub::Create(wh_.get(), options));
    hub::SourceSpec spec;
    spec.name = "s1";
    spec.source = src_.get();
    spec.method = pipeline::Method::kOpDelta;
    spec.source_table = "parts";
    spec.warehouse_table = "parts";
    spec.backfill = backfill;
    spec.backfill_chunk_rows = 16;
    spec.scrub = scrub;
    spec.scrub_chunk_rows = 512;
    OPDELTA_RETURN_IF_ERROR(hub->AddSource(spec));
    OPDELTA_RETURN_IF_ERROR(hub->Setup());
    return hub;
  }

  /// Retries lock conflicts like a real OLTP client.
  template <typename Fn>
  Status Retry(Fn&& fn) {
    Status st;
    for (int attempt = 0; attempt < 200; ++attempt) {
      st = fn();
      if (!st.IsConflict() && st.code() != StatusCode::kBusy) return st;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return st;
  }

  Status Captured(extract::OpDeltaCapture* capture, const std::string& sql) {
    return Retry([&] {
      OPDELTA_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parser::Parse(sql));
      return capture->RunTransaction({std::move(stmt)}).status();
    });
  }

  TempDir dir_;
  workload::PartsWorkload wl_;
  std::unique_ptr<engine::Database> src_;
  std::unique_ptr<engine::Database> wh_;
};

TEST_F(HubSchemaEvolutionTest, DdlMigratesWarehouseAndConverges) {
  Result<std::unique_ptr<hub::DeltaHub>> hub = MakeHub();
  ASSERT_TRUE(hub.ok()) << hub.status().ToString();
  extract::OpDeltaCapture* capture = (*hub)->capture("s1");
  ASSERT_NE(capture, nullptr);

  OPDELTA_ASSERT_OK(Retry([&] {
    return capture->RunTransaction({wl_.MakeInsert("parts", 0, 30)}).status();
  }));
  OPDELTA_ASSERT_OK((*hub)->RunRound());

  // Live DDL, with captured traffic before and after it still pending in
  // the op log: the extraction must split the drain at the epoch boundary.
  OPDELTA_ASSERT_OK(Retry([&] {
    return capture->RunTransaction({wl_.MakeUpdate("parts", 0, 10, "pre")})
        .status();
  }));
  Result<uint64_t> epoch = capture->ExecuteDdl(
      sql::Parser::Parse("ALTER TABLE parts ADD COLUMN qty INT64 DEFAULT 2")
          ->alter());
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  EXPECT_EQ(*epoch, 2u);
  OPDELTA_ASSERT_OK(Captured(
      capture, "INSERT INTO parts VALUES (100, 'new', 'p100', 0, 9)"));
  OPDELTA_ASSERT_OK(Captured(capture,
                             "UPDATE parts SET status = 'post' WHERE id <= "
                             "5"));

  for (int i = 0; i < 4; ++i) OPDELTA_ASSERT_OK((*hub)->RunRound());

  EXPECT_EQ(wh_->GetTable("parts")->schema().num_columns(), 5u);
  EXPECT_TRUE(TablesEqual(src_.get(), "parts", wh_.get(), "parts"));
  const hub::SourceStats& s = (*hub)->Stats().sources[0];
  EXPECT_EQ(s.source_schema_epoch, 2u);
  EXPECT_EQ(s.applied_schema_epoch, 2u);
  EXPECT_EQ(s.dead_letters, 0u);
  EXPECT_FALSE(s.quarantined);
  OPDELTA_ASSERT_OK((*hub)->Stop());
}

TEST_F(HubSchemaEvolutionTest, RestartBetweenCaptureAndApplyCatchesUp) {
  // A hub restart can land after a DDL was captured but before any round
  // shipped it: the warehouse still has the old schema while the migration
  // event sits in the durable queue. AddSource must recognize the
  // warehouse as lagging-by-captured-DDL (it matches an earlier source
  // epoch) instead of refusing as drifted, and replay must catch it up.
  {
    Result<std::unique_ptr<hub::DeltaHub>> hub = MakeHub(/*backfill=*/false,
                                                         /*scrub=*/true);
    ASSERT_TRUE(hub.ok()) << hub.status().ToString();
    extract::OpDeltaCapture* capture = (*hub)->capture("s1");
    ASSERT_NE(capture, nullptr);
    OPDELTA_ASSERT_OK(Retry([&] {
      return capture->RunTransaction({wl_.MakeInsert("parts", 0, 20)})
          .status();
    }));
    OPDELTA_ASSERT_OK((*hub)->RunRound());
    Result<uint64_t> epoch = capture->ExecuteDdl(
        sql::Parser::Parse("ALTER TABLE parts ADD COLUMN qty INT64 DEFAULT 4")
            ->alter());
    ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
    OPDELTA_ASSERT_OK((*hub)->Stop());  // no round: the 'D' event is queued
  }
  ASSERT_EQ(src_->GetTable("parts")->schema().num_columns(), 5u);
  ASSERT_EQ(wh_->GetTable("parts")->schema().num_columns(), 4u);

  Result<std::unique_ptr<hub::DeltaHub>> hub = MakeHub(/*backfill=*/false,
                                                       /*scrub=*/true);
  ASSERT_TRUE(hub.ok()) << hub.status().ToString();
  for (int i = 0; i < 6; ++i) OPDELTA_ASSERT_OK((*hub)->RunRound());
  EXPECT_EQ(wh_->GetTable("parts")->schema().num_columns(), 5u);
  EXPECT_TRUE(TablesEqual(src_.get(), "parts", wh_.get(), "parts"));
  const hub::SourceStats& s = (*hub)->Stats().sources[0];
  EXPECT_EQ(s.source_schema_epoch, s.applied_schema_epoch);
  EXPECT_EQ(s.chunks_mismatched, 0u);
  EXPECT_FALSE(s.quarantined);
  OPDELTA_ASSERT_OK((*hub)->Stop());
}

TEST_F(HubSchemaEvolutionTest, MigrationRestartsBackfillForAddedColumns) {
  sql::Executor exec(src_.get());
  OPDELTA_ASSERT_OK(
      exec.ExecuteSql(wl_.MakeInsert("parts", 0, 64).ToSql()).status());

  Result<std::unique_ptr<hub::DeltaHub>> hub = MakeHub(/*backfill=*/true);
  ASSERT_TRUE(hub.ok()) << hub.status().ToString();
  extract::OpDeltaCapture* capture = (*hub)->capture("s1");
  ASSERT_NE(capture, nullptr);
  for (int i = 0; i < 40 && !(*hub)->Stats().sources[0].backfill_done; ++i) {
    OPDELTA_ASSERT_OK((*hub)->RunRound());
  }
  ASSERT_TRUE((*hub)->Stats().sources[0].backfill_done);
  ASSERT_TRUE(TablesEqual(src_.get(), "parts", wh_.get(), "parts"));

  Result<uint64_t> epoch = capture->ExecuteDdl(
      sql::Parser::Parse("ALTER TABLE parts ADD COLUMN qty INT64 DEFAULT 6")
          ->alter());
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  OPDELTA_ASSERT_OK((*hub)->RunRound());  // ships + applies the migration

  // The migration restarted the backfill from chunk one: the done flag and
  // cursor were reset, and driving it to completion again re-ships every
  // chunk with post-DDL row images.
  EXPECT_FALSE((*hub)->Stats().sources[0].backfill_done)
      << "migration did not restart the backfill";
  for (int i = 0; i < 40 && !(*hub)->Stats().sources[0].backfill_done; ++i) {
    OPDELTA_ASSERT_OK((*hub)->RunRound());
  }
  const hub::SourceStats& s = (*hub)->Stats().sources[0];
  EXPECT_TRUE(s.backfill_done);
  EXPECT_EQ(s.rows_backfilled, 64u) << "restart must re-ship every chunk";
  EXPECT_TRUE(TablesEqual(src_.get(), "parts", wh_.get(), "parts"));
  OPDELTA_ASSERT_OK((*hub)->Stop());
}

TEST_F(HubSchemaEvolutionTest, IncompatibleDdlQuarantinesWithReason) {
  Result<std::unique_ptr<hub::DeltaHub>> hub = MakeHub();
  ASSERT_TRUE(hub.ok()) << hub.status().ToString();
  extract::OpDeltaCapture* capture = (*hub)->capture("s1");
  ASSERT_NE(capture, nullptr);
  OPDELTA_ASSERT_OK(Retry([&] {
    return capture->RunTransaction({wl_.MakeInsert("parts", 0, 10)}).status();
  }));
  OPDELTA_ASSERT_OK((*hub)->RunRound());

  // A compatible ADD first: an all-null column the source can later retype.
  Result<uint64_t> added = capture->ExecuteDdl(
      sql::Parser::Parse("ALTER TABLE parts ADD COLUMN note STRING")
          ->alter());
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  OPDELTA_ASSERT_OK((*hub)->RunRound());
  ASSERT_EQ(wh_->GetTable("parts")->schema().num_columns(), 5u);

  // A column type change is incompatible with online migration: the source
  // migrates (all-null column, every cell coerces), the warehouse must
  // refuse and quarantine — never guess, never dead-letter past the
  // consistency boundary.
  Result<uint64_t> epoch = capture->ExecuteDdl(
      sql::Parser::Parse("ALTER TABLE parts ALTER COLUMN note INT64")
          ->alter());
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();

  // Rounds fail until the quarantine threshold; afterwards the source is
  // skipped and rounds go back to OK — so count failures, don't require
  // the last round to fail.
  int failed_rounds = 0;
  for (int i = 0; i < 4; ++i) {
    if (!(*hub)->RunRound().ok()) ++failed_rounds;
  }
  EXPECT_GE(failed_rounds, 2);
  const hub::SourceStats& s = (*hub)->Stats().sources[0];
  EXPECT_TRUE(s.quarantined);
  EXPECT_EQ(s.dead_letters, 0u) << "poison DDL must not be dead-lettered";
  EXPECT_NE(s.last_error.find("incompatible"), std::string::npos)
      << s.last_error;
  // The warehouse kept its pre-retype schema; nothing was half-applied.
  EXPECT_EQ(wh_->GetTable("parts")->schema().column(4).type,
            ValueType::kString);
  OPDELTA_ASSERT_OK((*hub)->Stop());
}

// ------------------------------------------- migration crash sweep (sat 4)

TEST(SchemaMigrationCrashTest, RecoversAtEveryDeadDiskFaultPoint) {
  // Sweep a dead-disk crash across every I/O the migration performs. After
  // each crash + power loss, recovery must land on exactly the old or the
  // new schema with all rows decodable — never a torn hybrid.
  workload::PartsWorkload wl;
  // Synced commits: this test is about what the *migration* loses at power
  // loss, so the pre-DDL traffic must be durable.
  engine::DatabaseOptions durable = NoTimestampOptions();
  durable.wal.sync_on_commit = true;
  bool completed = false;
  int crash_point = 1;
  for (; !completed && crash_point < 200; ++crash_point) {
    TempDir dir;
    FaultInjectionEnv fenv(Env::Default(),
                           static_cast<uint64_t>(crash_point));
    ScopedEnvOverride scoped(&fenv);
    {
      // Durable baseline: the clean Close flushes and syncs the heap, so
      // the sweep measures what the *migration* can lose, nothing else.
      std::unique_ptr<engine::Database> db = OpenDb(dir, "db", durable);
      OPDELTA_ASSERT_OK(wl.CreateTable(db.get(), "parts"));
      sql::Executor exec(db.get());
      OPDELTA_ASSERT_OK(
          exec.ExecuteSql(wl.MakeInsert("parts", 0, 12).ToSql()).status());
      OPDELTA_ASSERT_OK(db->Close());
    }
    {
      std::unique_ptr<engine::Database> db = OpenDb(dir, "db", durable);
      fenv.FailAllOpsAfter(static_cast<uint64_t>(crash_point));
      AlterTableSpec add;
      add.kind = AlterTableSpec::Kind::kAddColumn;
      add.column = Column{"qty", ValueType::kInt64, Value::Int64(8)};
      Status st = db->AlterTable("parts", add);
      completed = st.ok();
      // No Close(): the process dies here.
    }
    fenv.ClearFaults();
    // Power failure: drop whatever never reached disk, torn tails included.
    OPDELTA_ASSERT_OK(fenv.CrashAndDropUnsynced(/*torn_tails=*/true));

    std::unique_ptr<engine::Database> db;
    Status open = engine::Database::Open(dir.Sub("db"), durable, &db);
    ASSERT_TRUE(open.ok()) << "crash point " << crash_point << ": "
                           << open.ToString();
    const catalog::Schema& schema = db->GetTable("parts")->schema();
    ASSERT_TRUE(schema.num_columns() == 4 || schema.num_columns() == 5)
        << "crash point " << crash_point << " left a torn schema";
    // Committed rows survive and decode under the recovered schema; an
    // added column landed with its default everywhere.
    EXPECT_EQ(CountRows(db.get(), "parts"), 12u)
        << "crash point " << crash_point;
    OPDELTA_ASSERT_OK(db->Scan(
        nullptr, "parts", engine::Predicate::True(),
        [&](const storage::Rid&, const catalog::Row& row) {
          EXPECT_EQ(row.size(), schema.num_columns());
          if (schema.num_columns() == 5) {
            EXPECT_EQ(row[4].AsInt64(), 8);
          }
          return true;
        }));
    // The epoch history stays self-consistent with the survivor schema.
    EXPECT_EQ(db->ddl_epoch(), schema.num_columns() == 5 ? 2u : 1u)
        << "crash point " << crash_point;
    OPDELTA_ASSERT_OK(db->Close());
  }
  EXPECT_TRUE(completed) << "sweep never reached a fault-free migration";
  EXPECT_GT(crash_point, 2);
}

// --------------------------------- randomized DDL-under-writes (5 seeds)

class RandomizedDdlTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomizedDdlTest, ConcurrentWritesAndDdlConverge) {
  const uint64_t seed = GetParam();
  std::mt19937_64 rng(seed);
  TempDir dir;
  workload::PartsWorkload wl;
  std::unique_ptr<engine::Database> src =
      OpenDb(dir, "src", NoTimestampOptions());
  std::unique_ptr<engine::Database> wh =
      OpenDb(dir, "wh", NoTimestampOptions());
  OPDELTA_ASSERT_OK(wl.CreateTable(src.get(), "parts"));
  OPDELTA_ASSERT_OK(
      wh->CreateTable("parts", workload::PartsWorkload::Schema()));

  auto make_hub = [&]() -> Result<std::unique_ptr<hub::DeltaHub>> {
    hub::HubOptions options;
    options.work_dir = dir.Sub("hub");
    OPDELTA_ASSIGN_OR_RETURN(std::unique_ptr<hub::DeltaHub> hub,
                             hub::DeltaHub::Create(wh.get(), options));
    hub::SourceSpec spec;
    spec.name = "s1";
    spec.source = src.get();
    spec.method = pipeline::Method::kOpDelta;
    spec.source_table = "parts";
    spec.warehouse_table = "parts";
    spec.scrub = true;
    spec.scrub_chunk_rows = 512;
    OPDELTA_RETURN_IF_ERROR(hub->AddSource(spec));
    OPDELTA_RETURN_IF_ERROR(hub->Setup());
    return hub;
  };

  auto retry = [](auto&& fn) {
    Status st;
    for (int attempt = 0; attempt < 400; ++attempt) {
      st = fn();
      if (!st.IsConflict() && st.code() != StatusCode::kBusy) return st;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return st;
  };

  Result<std::unique_ptr<hub::DeltaHub>> hub = make_hub();
  ASSERT_TRUE(hub.ok()) << hub.status().ToString();
  extract::OpDeltaCapture* capture = (*hub)->capture("s1");
  ASSERT_NE(capture, nullptr);

  int64_t next_key = 0;
  std::vector<std::string> extra_columns;  // columns added by this test
  int added = 0;

  auto insert_sql = [&](int64_t key) {
    std::string sql = "INSERT INTO parts VALUES (" + std::to_string(key) +
                      ", 'new', 'p" + std::to_string(key) + "', 0";
    for (size_t i = 0; i < extra_columns.size(); ++i) sql += ", 1";
    return sql + ")";
  };

  const int kRounds = 6;
  for (int round = 0; round < kRounds; ++round) {
    // Concurrent writer: arity-independent captured traffic racing the
    // round's DDL. Updates and deletes survive any column set.
    std::atomic<bool> writer_failed{false};
    std::string writer_error;
    std::thread writer([&] {
      for (int i = 0; i < 8; ++i) {
        Status st = retry([&] {
          Result<sql::Statement> stmt = sql::Parser::Parse(
              "UPDATE parts SET status = 'w" + std::to_string(i) +
              "' WHERE id <= " + std::to_string(next_key));
          if (!stmt.ok()) return stmt.status();
          return capture->RunTransaction({*std::move(stmt)}).status();
        });
        if (!st.ok()) {
          writer_error = st.ToString();
          writer_failed.store(true);
          return;
        }
      }
    });

    // Mainline traffic: inserts at the live arity plus the occasional DDL.
    for (int i = 0; i < 4; ++i) {
      OPDELTA_ASSERT_OK(retry([&] {
        Result<sql::Statement> stmt = sql::Parser::Parse(insert_sql(next_key));
        if (!stmt.ok()) return stmt.status();
        Status st = capture->RunTransaction({*std::move(stmt)}).status();
        // A concurrent reader never sees this, but the *writer thread's*
        // DDL below can land between Parse and Run: re-generate on arity
        // mismatch instead of failing the round.
        if (st.code() == StatusCode::kInvalidArgument) {
          return Status::Conflict(st.ToString());
        }
        return st;
      }));
      ++next_key;
    }
    const int dice = static_cast<int>(rng() % 3);
    if (dice == 0) {
      const std::string name = "extra" + std::to_string(added++);
      Result<sql::Statement> ddl = sql::Parser::Parse(
          "ALTER TABLE parts ADD COLUMN " + name + " INT64 DEFAULT " +
          std::to_string(rng() % 100));
      ASSERT_TRUE(ddl.ok()) << ddl.status().ToString();
      OPDELTA_ASSERT_OK(retry(
          [&] { return capture->ExecuteDdl(ddl->alter()).status(); }));
      extra_columns.push_back(name);
    } else if (dice == 1 && !extra_columns.empty()) {
      const std::string name = extra_columns.back();
      Result<sql::Statement> ddl =
          sql::Parser::Parse("ALTER TABLE parts DROP COLUMN " + name);
      ASSERT_TRUE(ddl.ok()) << ddl.status().ToString();
      OPDELTA_ASSERT_OK(retry(
          [&] { return capture->ExecuteDdl(ddl->alter()).status(); }));
      extra_columns.pop_back();
    }
    writer.join();
    ASSERT_FALSE(writer_failed.load())
        << "writer gave up, seed " << seed << ": " << writer_error;
    OPDELTA_ASSERT_OK((*hub)->RunRound());

    if (round == kRounds / 2) {
      // Crash-restart the whole transport mid-stream: durable queues and
      // watermarks replay; the ledger dedupes; epochs keep decoding.
      OPDELTA_ASSERT_OK((*hub)->Stop());
      hub->reset();
      hub = make_hub();
      ASSERT_TRUE(hub.ok()) << hub.status().ToString();
      capture = (*hub)->capture("s1");
      ASSERT_NE(capture, nullptr);
    }
  }

  // Drain to empty and converge: source and warehouse byte-equal, schemas
  // included, with zero divergence under the epoch-aware scrub digest.
  for (int i = 0; i < 30; ++i) OPDELTA_ASSERT_OK((*hub)->RunRound());
  EXPECT_TRUE(TablesEqual(src.get(), "parts", wh.get(), "parts"))
      << "seed " << seed;
  EXPECT_TRUE(src->GetTable("parts")->schema() ==
              wh->GetTable("parts")->schema())
      << "seed " << seed;
  const hub::SourceStats& s = (*hub)->Stats().sources[0];
  EXPECT_EQ(s.chunks_mismatched, 0u)
      << "seed " << seed << ": epoch-aware scrub false positive";
  EXPECT_EQ(s.dead_letters, 0u) << "seed " << seed;
  EXPECT_FALSE(s.quarantined) << "seed " << seed;
  EXPECT_EQ(s.source_schema_epoch, s.applied_schema_epoch)
      << "seed " << seed;
  OPDELTA_ASSERT_OK((*hub)->Stop());
  OPDELTA_ASSERT_OK(src->Close());
  OPDELTA_ASSERT_OK(wh->Close());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedDdlTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace opdelta
