#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <set>

#include "common/random.h"
#include "storage/buffer_pool.h"
#include "storage/file_manager.h"
#include "storage/heap_file.h"
#include "storage/page.h"
#include "tests/test_util.h"

namespace opdelta::storage {
namespace {

using opdelta::testing::TempDir;

// ------------------------------------------------------------ SlottedPage

class SlottedPageTest : public ::testing::Test {
 protected:
  SlottedPageTest() : page_(buf_) { page_.Init(); }
  alignas(8) char buf_[kPageSize] = {};
  SlottedPage page_;
};

TEST_F(SlottedPageTest, InsertAndRead) {
  uint16_t slot;
  OPDELTA_ASSERT_OK(page_.Insert(Slice("hello"), &slot));
  Slice out;
  OPDELTA_ASSERT_OK(page_.Read(slot, &out));
  EXPECT_EQ(out.ToString(), "hello");
  EXPECT_EQ(page_.LiveCount(), 1);
}

TEST_F(SlottedPageTest, DeleteFreesSlotForReuse) {
  uint16_t s1, s2;
  OPDELTA_ASSERT_OK(page_.Insert(Slice("aaa"), &s1));
  OPDELTA_ASSERT_OK(page_.Delete(s1));
  Slice out;
  EXPECT_TRUE(page_.Read(s1, &out).IsNotFound());
  OPDELTA_ASSERT_OK(page_.Insert(Slice("bbb"), &s2));
  EXPECT_EQ(s2, s1);  // deleted slot reused
}

TEST_F(SlottedPageTest, DeleteTwiceFails) {
  uint16_t slot;
  OPDELTA_ASSERT_OK(page_.Insert(Slice("x"), &slot));
  OPDELTA_ASSERT_OK(page_.Delete(slot));
  EXPECT_TRUE(page_.Delete(slot).IsNotFound());
}

TEST_F(SlottedPageTest, UpdateInPlaceSameSize) {
  uint16_t slot;
  OPDELTA_ASSERT_OK(page_.Insert(Slice("12345"), &slot));
  OPDELTA_ASSERT_OK(page_.Update(slot, Slice("abcde")));
  Slice out;
  OPDELTA_ASSERT_OK(page_.Read(slot, &out));
  EXPECT_EQ(out.ToString(), "abcde");
}

TEST_F(SlottedPageTest, UpdateShrinkAndGrow) {
  uint16_t slot;
  OPDELTA_ASSERT_OK(page_.Insert(Slice("longrecord"), &slot));
  OPDELTA_ASSERT_OK(page_.Update(slot, Slice("sm")));
  Slice out;
  OPDELTA_ASSERT_OK(page_.Read(slot, &out));
  EXPECT_EQ(out.ToString(), "sm");
  OPDELTA_ASSERT_OK(page_.Update(slot, Slice("a much longer record now")));
  OPDELTA_ASSERT_OK(page_.Read(slot, &out));
  EXPECT_EQ(out.ToString(), "a much longer record now");
}

TEST_F(SlottedPageTest, FillsToCapacityThenRejects) {
  const std::string record(100, 'r');
  uint16_t slot;
  int inserted = 0;
  while (page_.Insert(Slice(record), &slot).ok()) ++inserted;
  // 8192 / ~104 per record => roughly 78 records.
  EXPECT_GT(inserted, 70);
  EXPECT_LT(inserted, 85);
  EXPECT_EQ(page_.LiveCount(), inserted);
}

TEST_F(SlottedPageTest, CompactionReclaimsDeletedSpace) {
  const std::string record(100, 'r');
  uint16_t slot;
  std::vector<uint16_t> slots;
  while (page_.Insert(Slice(record), &slot).ok()) slots.push_back(slot);
  // Delete every other record, then insert again: Compact (invoked by
  // Insert on demand) must make room.
  for (size_t i = 0; i < slots.size(); i += 2) {
    OPDELTA_ASSERT_OK(page_.Delete(slots[i]));
  }
  int reinserted = 0;
  while (page_.Insert(Slice(record), &slot).ok()) ++reinserted;
  EXPECT_GE(reinserted, static_cast<int>(slots.size() / 2));
  // Survivors must be intact after compaction.
  for (size_t i = 1; i < slots.size(); i += 2) {
    Slice out;
    OPDELTA_ASSERT_OK(page_.Read(slots[i], &out));
    EXPECT_EQ(out.ToString(), record);
  }
}

TEST_F(SlottedPageTest, OversizeRecordRejected) {
  uint16_t slot;
  std::string big(kPageSize, 'x');
  EXPECT_FALSE(page_.Insert(Slice(big), &slot).ok());
}

// ------------------------------------------------------------ FileManager

TEST(FileManagerTest, AllocateWriteRead) {
  TempDir dir;
  FileManager fm;
  OPDELTA_ASSERT_OK(fm.Open(dir.Sub("data.db")));
  PageId id;
  OPDELTA_ASSERT_OK(fm.AllocatePage(&id));
  EXPECT_EQ(id, 0u);
  char buf[kPageSize];
  std::memset(buf, 0x5A, kPageSize);
  OPDELTA_ASSERT_OK(fm.WritePage(id, buf));
  char readback[kPageSize] = {};
  OPDELTA_ASSERT_OK(fm.ReadPage(id, readback));
  EXPECT_EQ(std::memcmp(buf, readback, kPageSize), 0);
  OPDELTA_ASSERT_OK(fm.Close());
}

TEST(FileManagerTest, PersistsAcrossReopen) {
  TempDir dir;
  const std::string path = dir.Sub("data.db");
  {
    FileManager fm;
    OPDELTA_ASSERT_OK(fm.Open(path));
    PageId id;
    OPDELTA_ASSERT_OK(fm.AllocatePage(&id));
    char buf[kPageSize];
    std::memset(buf, 7, kPageSize);
    OPDELTA_ASSERT_OK(fm.WritePage(id, buf));
    OPDELTA_ASSERT_OK(fm.Sync());
    OPDELTA_ASSERT_OK(fm.Close());
  }
  FileManager fm;
  OPDELTA_ASSERT_OK(fm.Open(path));
  EXPECT_EQ(fm.num_pages(), 1u);
  char readback[kPageSize];
  OPDELTA_ASSERT_OK(fm.ReadPage(0, readback));
  EXPECT_EQ(readback[100], 7);
}

TEST(FileManagerTest, OutOfRangeRejected) {
  TempDir dir;
  FileManager fm;
  OPDELTA_ASSERT_OK(fm.Open(dir.Sub("d.db")));
  char buf[kPageSize];
  EXPECT_FALSE(fm.ReadPage(5, buf).ok());
  EXPECT_FALSE(fm.WritePage(5, buf).ok());
}

TEST(FileManagerTest, IoStatsCount) {
  TempDir dir;
  FileManager fm;
  OPDELTA_ASSERT_OK(fm.Open(dir.Sub("d.db")));
  PageId id;
  OPDELTA_ASSERT_OK(fm.AllocatePage(&id));
  char buf[kPageSize] = {};
  OPDELTA_ASSERT_OK(fm.WritePage(id, buf));
  OPDELTA_ASSERT_OK(fm.ReadPage(id, buf));
  EXPECT_EQ(fm.io_stats().page_writes.load(), 2u);  // alloc + write
  EXPECT_EQ(fm.io_stats().page_reads.load(), 1u);
}

// ------------------------------------------------------------- BufferPool

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    OPDELTA_ASSERT_OK(fm_.Open(dir_.Sub("pool.db")));
    pool_ = std::make_unique<BufferPool>(&fm_, 4);
  }
  TempDir dir_;
  FileManager fm_;
  std::unique_ptr<BufferPool> pool_;
};

TEST_F(BufferPoolTest, NewPageZeroedAndPinned) {
  PageGuard guard;
  OPDELTA_ASSERT_OK(pool_->NewPage(&guard));
  ASSERT_TRUE(guard.valid());
  for (size_t i = 0; i < kPageSize; ++i) ASSERT_EQ(guard.data()[i], 0);
}

TEST_F(BufferPoolTest, FetchHitAfterNew) {
  PageId id;
  {
    PageGuard guard;
    OPDELTA_ASSERT_OK(pool_->NewPage(&guard));
    id = guard.page_id();
    guard.data()[0] = 'z';
    guard.MarkDirty();
  }
  PageGuard guard;
  OPDELTA_ASSERT_OK(pool_->FetchPage(id, &guard));
  EXPECT_EQ(guard.data()[0], 'z');
  EXPECT_GE(pool_->stats().hits.load(), 1u);
}

TEST_F(BufferPoolTest, EvictionWritesBackDirty) {
  // Fill beyond capacity so the first page is evicted, then refetch it.
  PageId first;
  {
    PageGuard g;
    OPDELTA_ASSERT_OK(pool_->NewPage(&g));
    first = g.page_id();
    g.data()[10] = 'd';
    g.MarkDirty();
  }
  for (int i = 0; i < 6; ++i) {
    PageGuard g;
    OPDELTA_ASSERT_OK(pool_->NewPage(&g));
  }
  EXPECT_GT(pool_->stats().evictions.load(), 0u);
  PageGuard g;
  OPDELTA_ASSERT_OK(pool_->FetchPage(first, &g));
  EXPECT_EQ(g.data()[10], 'd');
}

TEST_F(BufferPoolTest, AllPinnedExhaustsPool) {
  std::vector<PageGuard> guards(5);
  for (int i = 0; i < 4; ++i) {
    OPDELTA_ASSERT_OK(pool_->NewPage(&guards[i]));
  }
  Status st = pool_->NewPage(&guards[4]);
  EXPECT_EQ(st.code(), StatusCode::kBusy);
}

TEST_F(BufferPoolTest, ReleaseUnpinsEarly) {
  std::vector<PageGuard> guards(4);
  for (int i = 0; i < 4; ++i) {
    OPDELTA_ASSERT_OK(pool_->NewPage(&guards[i]));
  }
  guards[0].Release();
  PageGuard extra;
  OPDELTA_ASSERT_OK(pool_->NewPage(&extra));  // evicts the released frame
}

TEST_F(BufferPoolTest, FlushAllPersists) {
  PageId id;
  {
    PageGuard g;
    OPDELTA_ASSERT_OK(pool_->NewPage(&g));
    id = g.page_id();
    g.data()[0] = 'p';
    g.MarkDirty();
  }
  OPDELTA_ASSERT_OK(pool_->FlushAll(/*sync=*/true));
  char buf[kPageSize];
  OPDELTA_ASSERT_OK(fm_.ReadPage(id, buf));
  EXPECT_EQ(buf[0], 'p');
}

// --------------------------------------------------------------- HeapFile

class HeapFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    OPDELTA_ASSERT_OK(fm_.Open(dir_.Sub("heap.db")));
    pool_ = std::make_unique<BufferPool>(&fm_, 64);
    heap_ = std::make_unique<HeapFile>(pool_.get());
    OPDELTA_ASSERT_OK(heap_->Open());
  }
  TempDir dir_;
  FileManager fm_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<HeapFile> heap_;
};

TEST_F(HeapFileTest, InsertReadDelete) {
  Rid rid;
  OPDELTA_ASSERT_OK(heap_->Insert(Slice("record-1"), &rid));
  std::string out;
  OPDELTA_ASSERT_OK(heap_->Read(rid, &out));
  EXPECT_EQ(out, "record-1");
  EXPECT_EQ(heap_->live_records(), 1u);
  OPDELTA_ASSERT_OK(heap_->Delete(rid));
  EXPECT_EQ(heap_->live_records(), 0u);
  EXPECT_FALSE(heap_->Read(rid, &out).ok());
}

TEST_F(HeapFileTest, SpansManyPages) {
  const std::string record(500, 'q');
  std::vector<Rid> rids;
  for (int i = 0; i < 200; ++i) {
    Rid rid;
    OPDELTA_ASSERT_OK(heap_->Insert(Slice(record), &rid));
    rids.push_back(rid);
  }
  EXPECT_GT(heap_->num_pages(), 10u);
  std::string out;
  for (const Rid& rid : rids) {
    OPDELTA_ASSERT_OK(heap_->Read(rid, &out));
    EXPECT_EQ(out, record);
  }
}

TEST_F(HeapFileTest, UpdateInPlaceKeepsRid) {
  Rid rid, new_rid;
  OPDELTA_ASSERT_OK(heap_->Insert(Slice("0123456789"), &rid));
  OPDELTA_ASSERT_OK(heap_->Update(rid, Slice("abcdefghij"), &new_rid));
  EXPECT_TRUE(rid == new_rid);
  std::string out;
  OPDELTA_ASSERT_OK(heap_->Read(new_rid, &out));
  EXPECT_EQ(out, "abcdefghij");
}

TEST_F(HeapFileTest, UpdateRelocatesWhenPageFull) {
  // Fill one page completely, then grow one record so it must move.
  const std::string record(2000, 'f');
  std::vector<Rid> rids;
  for (int i = 0; i < 4; ++i) {
    Rid rid;
    OPDELTA_ASSERT_OK(heap_->Insert(Slice(record), &rid));
    rids.push_back(rid);
  }
  const std::string bigger(4000, 'g');
  Rid new_rid;
  OPDELTA_ASSERT_OK(heap_->Update(rids[0], Slice(bigger), &new_rid));
  std::string out;
  OPDELTA_ASSERT_OK(heap_->Read(new_rid, &out));
  EXPECT_EQ(out, bigger);
  EXPECT_EQ(heap_->live_records(), 4u);
}

TEST_F(HeapFileTest, ForEachVisitsAllLiveRecords) {
  std::set<std::string> expected;
  for (int i = 0; i < 50; ++i) {
    Rid rid;
    std::string rec = "rec-" + std::to_string(i);
    OPDELTA_ASSERT_OK(heap_->Insert(Slice(rec), &rid));
    expected.insert(rec);
  }
  std::set<std::string> seen;
  OPDELTA_ASSERT_OK(heap_->ForEach([&](const Rid&, Slice record) {
    seen.insert(record.ToString());
    return true;
  }));
  EXPECT_EQ(seen, expected);
}

TEST_F(HeapFileTest, ForEachEarlyStop) {
  for (int i = 0; i < 10; ++i) {
    Rid rid;
    OPDELTA_ASSERT_OK(heap_->Insert(Slice("x"), &rid));
  }
  int visited = 0;
  OPDELTA_ASSERT_OK(heap_->ForEach([&](const Rid&, Slice) {
    return ++visited < 3;
  }));
  EXPECT_EQ(visited, 3);
}

TEST_F(HeapFileTest, BulkLoadWritesDirectly) {
  std::vector<std::string> records;
  for (int i = 0; i < 1000; ++i) {
    records.push_back("bulk-" + std::to_string(i));
  }
  OPDELTA_ASSERT_OK(heap_->BulkLoad(records));
  EXPECT_EQ(heap_->live_records(), 1000u);
  size_t count = 0;
  OPDELTA_ASSERT_OK(heap_->ForEach([&](const Rid&, Slice) {
    ++count;
    return true;
  }));
  EXPECT_EQ(count, 1000u);
}

TEST_F(HeapFileTest, ReopenRebuildsState) {
  std::vector<Rid> rids;
  for (int i = 0; i < 30; ++i) {
    Rid rid;
    OPDELTA_ASSERT_OK(heap_->Insert(Slice("persist-" + std::to_string(i)),
                                    &rid));
    rids.push_back(rid);
  }
  OPDELTA_ASSERT_OK(heap_->Delete(rids[5]));
  OPDELTA_ASSERT_OK(pool_->FlushAll(true));

  HeapFile reopened(pool_.get());
  OPDELTA_ASSERT_OK(reopened.Open());
  EXPECT_EQ(reopened.live_records(), 29u);
  std::string out;
  OPDELTA_ASSERT_OK(reopened.Read(rids[10], &out));
  EXPECT_EQ(out, "persist-10");
}

TEST(TinyPoolStressTest, EvictionHeavyWorkloadStaysCorrect) {
  // A 8-frame pool forced to evict constantly while a large heap is
  // mutated and scanned: dirty write-back and refetch must never lose or
  // duplicate a record.
  TempDir dir;
  FileManager fm;
  OPDELTA_ASSERT_OK(fm.Open(dir.Sub("tiny.db")));
  BufferPool pool(&fm, 8);
  HeapFile heap(&pool);
  OPDELTA_ASSERT_OK(heap.Open());

  Rng rng(808);
  std::map<uint64_t, std::pair<Rid, std::string>> model;
  uint64_t next_id = 0;
  for (int step = 0; step < 4000; ++step) {
    const uint64_t action = rng.Uniform(10);
    if (action < 6 || model.empty()) {
      std::string data = rng.NextString(200 + rng.Uniform(400));
      Rid rid;
      OPDELTA_ASSERT_OK(heap.Insert(Slice(data), &rid));
      model[next_id++] = {rid, data};
    } else if (action < 8) {
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      OPDELTA_ASSERT_OK(heap.Delete(it->second.first));
      model.erase(it);
    } else {
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      std::string data = rng.NextString(200 + rng.Uniform(600));
      Rid new_rid;
      OPDELTA_ASSERT_OK(
          heap.Update(it->second.first, Slice(data), &new_rid));
      it->second = {new_rid, data};
    }
  }
  EXPECT_GT(pool.stats().evictions.load(), 100u);  // the pool really churned

  EXPECT_EQ(heap.live_records(), model.size());
  size_t scanned = 0;
  OPDELTA_ASSERT_OK(heap.ForEach([&](const Rid&, Slice) {
    ++scanned;
    return true;
  }));
  EXPECT_EQ(scanned, model.size());
  for (const auto& [id, entry] : model) {
    std::string out;
    OPDELTA_ASSERT_OK(heap.Read(entry.first, &out));
    ASSERT_EQ(out, entry.second) << "id " << id;
  }
}

TEST_F(HeapFileTest, RandomizedAgainstModel) {
  Rng rng(2024);
  std::map<uint64_t, std::pair<Rid, std::string>> model;  // id -> (rid, data)
  uint64_t next_id = 0;
  for (int step = 0; step < 3000; ++step) {
    const uint64_t action = rng.Uniform(10);
    if (action < 5 || model.empty()) {
      std::string data = rng.NextString(20 + rng.Uniform(200));
      Rid rid;
      OPDELTA_ASSERT_OK(heap_->Insert(Slice(data), &rid));
      model[next_id++] = {rid, data};
    } else if (action < 7) {
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      OPDELTA_ASSERT_OK(heap_->Delete(it->second.first));
      model.erase(it);
    } else {
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      std::string data = rng.NextString(20 + rng.Uniform(400));
      Rid new_rid;
      OPDELTA_ASSERT_OK(
          heap_->Update(it->second.first, Slice(data), &new_rid));
      it->second = {new_rid, data};
    }
  }
  EXPECT_EQ(heap_->live_records(), model.size());
  for (const auto& [id, entry] : model) {
    std::string out;
    OPDELTA_ASSERT_OK(heap_->Read(entry.first, &out));
    EXPECT_EQ(out, entry.second);
  }
}

}  // namespace
}  // namespace opdelta::storage
