#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "engine/database.h"
#include "engine/snapshot.h"
#include "workload/workload.h"
#include "tests/test_util.h"

namespace opdelta::engine {
namespace {

using catalog::Row;
using catalog::Value;
using opdelta::testing::CountRows;
using opdelta::testing::OpenDb;
using opdelta::testing::TableContents;
using opdelta::testing::TempDir;

catalog::Schema PartsSchema() { return workload::PartsWorkload::Schema(); }

Row PartsRow(int64_t id, const std::string& status) {
  return {Value::Int64(id), Value::String(status), Value::String("payload"),
          Value::Null()};
}

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = OpenDb(dir_, "src");
    OPDELTA_ASSERT_OK(db_->CreateTable("parts", PartsSchema()));
  }

  Status InsertOne(int64_t id, const std::string& status = "active") {
    return db_->WithTransaction([&](txn::Transaction* txn) {
      return db_->Insert(txn, "parts", PartsRow(id, status));
    });
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
};

// --------------------------------------------------------------- Predicate

TEST(PredicateTest, BindRejectsUnknownColumn) {
  Predicate p = Predicate::Where("ghost", CompareOp::kEq, Value::Int64(1));
  EXPECT_FALSE(p.Bind(PartsSchema()).ok());
}

TEST(PredicateTest, MatchSemantics) {
  catalog::Schema s = PartsSchema();
  Row row = {Value::Int64(5), Value::String("active"), Value::String("p"),
             Value::Timestamp(100)};

  struct Case {
    CompareOp op;
    int64_t literal;
    bool expect;
  };
  const Case cases[] = {
      {CompareOp::kEq, 5, true},  {CompareOp::kEq, 6, false},
      {CompareOp::kNe, 6, true},  {CompareOp::kLt, 6, true},
      {CompareOp::kLt, 5, false}, {CompareOp::kLe, 5, true},
      {CompareOp::kGt, 4, true},  {CompareOp::kGe, 5, true},
      {CompareOp::kGe, 6, false},
  };
  for (const Case& c : cases) {
    Predicate p = Predicate::Where("id", c.op, Value::Int64(c.literal));
    OPDELTA_ASSERT_OK(p.Bind(s));
    EXPECT_EQ(p.Matches(row), c.expect)
        << CompareOpSql(c.op) << " " << c.literal;
  }
}

TEST(PredicateTest, ConjunctionAndNulls) {
  catalog::Schema s = PartsSchema();
  Predicate p = Predicate::Where("id", CompareOp::kGe, Value::Int64(0))
                    .And("status", CompareOp::kEq, Value::String("active"));
  OPDELTA_ASSERT_OK(p.Bind(s));
  Row match = {Value::Int64(1), Value::String("active"), Value::Null(),
               Value::Null()};
  Row wrong_status = {Value::Int64(1), Value::String("retired"),
                      Value::Null(), Value::Null()};
  Row null_status = {Value::Int64(1), Value::Null(), Value::Null(),
                     Value::Null()};
  EXPECT_TRUE(p.Matches(match));
  EXPECT_FALSE(p.Matches(wrong_status));
  EXPECT_FALSE(p.Matches(null_status));  // null never matches
}

TEST(PredicateTest, SqlRendering) {
  Predicate p = Predicate::Where("id", CompareOp::kGt, Value::Int64(10))
                    .And("status", CompareOp::kEq, Value::String("x"));
  EXPECT_EQ(p.ToSql(), "id > 10 AND status = 'x'");
  EXPECT_EQ(Predicate::True().ToSql(), "");
}

// ------------------------------------------------------------------- DML

TEST_F(DatabaseTest, InsertAndScan) {
  OPDELTA_ASSERT_OK(InsertOne(1));
  OPDELTA_ASSERT_OK(InsertOne(2));
  EXPECT_EQ(CountRows(db_.get(), "parts"), 2u);
  auto contents = TableContents(db_.get(), "parts");
  EXPECT_TRUE(contents.count(Value::Int64(1)));
  EXPECT_TRUE(contents.count(Value::Int64(2)));
}

TEST_F(DatabaseTest, AutoTimestampStamped) {
  OPDELTA_ASSERT_OK(InsertOne(1));
  auto contents = TableContents(db_.get(), "parts");
  const Row& row = contents.at(Value::Int64(1));
  ASSERT_FALSE(row[3].is_null());
  EXPECT_GT(row[3].AsTimestamp(), 0);
}

TEST_F(DatabaseTest, UpdateWhereStampsAndChanges) {
  OPDELTA_ASSERT_OK(InsertOne(1));
  OPDELTA_ASSERT_OK(InsertOne(2));
  const Micros ts_before =
      TableContents(db_.get(), "parts").at(Value::Int64(1))[3].AsTimestamp();

  OPDELTA_ASSERT_OK(db_->WithTransaction([&](txn::Transaction* txn) {
    return db_
        ->UpdateWhere(txn, "parts",
                      Predicate::Where("id", CompareOp::kEq, Value::Int64(1)),
                      {Assignment{"status", Value::String("revised")}})
        .status();
  }));
  auto contents = TableContents(db_.get(), "parts");
  EXPECT_EQ(contents.at(Value::Int64(1))[1].AsString(), "revised");
  EXPECT_EQ(contents.at(Value::Int64(2))[1].AsString(), "active");
  EXPECT_GT(contents.at(Value::Int64(1))[3].AsTimestamp(), ts_before);
}

TEST_F(DatabaseTest, DeleteWhereRemovesMatching) {
  for (int64_t i = 0; i < 10; ++i) OPDELTA_ASSERT_OK(InsertOne(i));
  OPDELTA_ASSERT_OK(db_->WithTransaction([&](txn::Transaction* txn) {
    Result<size_t> r = db_->DeleteWhere(
        txn, "parts", Predicate::Where("id", CompareOp::kLt, Value::Int64(5)));
    if (!r.ok()) return r.status();
    EXPECT_EQ(r.value(), 5u);
    return Status::OK();
  }));
  EXPECT_EQ(CountRows(db_.get(), "parts"), 5u);
}

TEST_F(DatabaseTest, UpdateAffectedCountReported) {
  for (int64_t i = 0; i < 20; ++i) OPDELTA_ASSERT_OK(InsertOne(i));
  OPDELTA_ASSERT_OK(db_->WithTransaction([&](txn::Transaction* txn) {
    Result<size_t> r = db_->UpdateWhere(
        txn, "parts",
        Predicate::Where("id", CompareOp::kGe, Value::Int64(15)),
        {Assignment{"status", Value::String("hot")}});
    if (!r.ok()) return r.status();
    EXPECT_EQ(r.value(), 5u);
    return Status::OK();
  }));
}

TEST_F(DatabaseTest, InsertValidatesSchema) {
  OPDELTA_ASSERT_OK(db_->WithTransaction([&](txn::Transaction* txn) {
    Row bad = {Value::String("not-an-int"), Value::String("a"),
               Value::String("b"), Value::Null()};
    Status st = db_->Insert(txn, "parts", bad);
    EXPECT_FALSE(st.ok());
    return Status::OK();
  }));
}

TEST_F(DatabaseTest, UnknownTableErrors) {
  auto txn = db_->Begin();
  EXPECT_TRUE(db_->Insert(txn.get(), "ghost", PartsRow(1, "a")).IsNotFound());
  (void)db_->Abort(txn.get());
}

// ----------------------------------------------------------- Transactions

TEST_F(DatabaseTest, AbortUndoesInsert) {
  auto txn = db_->Begin();
  OPDELTA_ASSERT_OK(db_->Insert(txn.get(), "parts", PartsRow(1, "a")));
  OPDELTA_ASSERT_OK(db_->Abort(txn.get()));
  EXPECT_EQ(CountRows(db_.get(), "parts"), 0u);
}

TEST_F(DatabaseTest, AbortUndoesUpdateAndDelete) {
  OPDELTA_ASSERT_OK(InsertOne(1, "original"));
  OPDELTA_ASSERT_OK(InsertOne(2, "original"));

  auto txn = db_->Begin();
  OPDELTA_ASSERT_OK(
      db_->UpdateWhere(txn.get(), "parts",
                       Predicate::Where("id", CompareOp::kEq, Value::Int64(1)),
                       {Assignment{"status", Value::String("mutated")}})
          .status());
  OPDELTA_ASSERT_OK(
      db_->DeleteWhere(txn.get(), "parts",
                       Predicate::Where("id", CompareOp::kEq, Value::Int64(2)))
          .status());
  OPDELTA_ASSERT_OK(db_->Abort(txn.get()));

  auto contents = TableContents(db_.get(), "parts");
  ASSERT_EQ(contents.size(), 2u);
  EXPECT_EQ(contents.at(Value::Int64(1))[1].AsString(), "original");
  EXPECT_EQ(contents.at(Value::Int64(2))[1].AsString(), "original");
}

TEST_F(DatabaseTest, AbortRestoresIndexConsistency) {
  OPDELTA_ASSERT_OK(db_->CreateIndex("parts", "id"));
  OPDELTA_ASSERT_OK(InsertOne(10));

  auto txn = db_->Begin();
  OPDELTA_ASSERT_OK(db_->Insert(txn.get(), "parts", PartsRow(20, "a")));
  OPDELTA_ASSERT_OK(
      db_->DeleteWhere(txn.get(), "parts",
                       Predicate::Where("id", CompareOp::kEq, Value::Int64(10)))
          .status());
  OPDELTA_ASSERT_OK(db_->Abort(txn.get()));

  // Index scan must see exactly id=10 again.
  std::vector<int64_t> ids;
  OPDELTA_ASSERT_OK(db_->IndexScan(
      nullptr, "parts", "id", INT64_MIN, INT64_MAX,
      [&](const storage::Rid&, const Row& row) {
        ids.push_back(row[0].AsInt64());
        return true;
      }));
  EXPECT_EQ(ids, std::vector<int64_t>{10});
}

TEST_F(DatabaseTest, CommitReleasesLocks) {
  auto t1 = db_->Begin();
  OPDELTA_ASSERT_OK(db_->LockTableExclusive(t1.get(), "parts"));
  OPDELTA_ASSERT_OK(db_->Commit(t1.get()));
  auto t2 = db_->Begin();
  OPDELTA_ASSERT_OK(db_->LockTableExclusive(t2.get(), "parts"));
  OPDELTA_ASSERT_OK(db_->Commit(t2.get()));
}

TEST_F(DatabaseTest, WithTransactionAbortsOnError) {
  Status st = db_->WithTransaction([&](txn::Transaction* txn) -> Status {
    OPDELTA_RETURN_IF_ERROR(db_->Insert(txn, "parts", PartsRow(1, "x")));
    return Status::Internal("forced failure");
  });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(CountRows(db_.get(), "parts"), 0u);
}

// -------------------------------------------------------------- Point ops

TEST_F(DatabaseTest, PointOpsRoundTrip) {
  storage::Rid rid;
  OPDELTA_ASSERT_OK(db_->WithTransaction([&](txn::Transaction* txn) {
    return db_->Insert(txn, "parts", PartsRow(1, "a"), &rid);
  }));

  OPDELTA_ASSERT_OK(db_->WithTransaction([&](txn::Transaction* txn) -> Status {
    Row row;
    OPDELTA_RETURN_IF_ERROR(db_->ReadAt(txn, "parts", rid, &row));
    EXPECT_EQ(row[0].AsInt64(), 1);
    row[1] = Value::String("updated");
    storage::Rid new_rid;
    OPDELTA_RETURN_IF_ERROR(db_->UpdateAt(txn, "parts", rid, row, &new_rid));
    return db_->DeleteAt(txn, "parts", new_rid);
  }));
  EXPECT_EQ(CountRows(db_.get(), "parts"), 0u);
}

// --------------------------------------------------------------- Triggers

class RecordingSink : public TriggerSink {
 public:
  Status Write(Database*, txn::Transaction*, TriggerEvents event,
               const Row& before, const Row& after) override {
    events.push_back(event);
    befores.push_back(before);
    afters.push_back(after);
    return Status::OK();
  }
  std::vector<TriggerEvents> events;
  std::vector<Row> befores, afters;
};

TEST_F(DatabaseTest, TriggersFirePerRowWithImages) {
  auto sink = std::make_shared<RecordingSink>();
  OPDELTA_ASSERT_OK(
      db_->CreateTrigger("parts", TriggerDef{"t", kOnAll, sink}));

  OPDELTA_ASSERT_OK(InsertOne(1));
  ASSERT_EQ(sink->events.size(), 1u);
  EXPECT_EQ(sink->events[0], kOnInsert);
  EXPECT_TRUE(sink->befores[0].empty());
  EXPECT_EQ(sink->afters[0][0].AsInt64(), 1);

  OPDELTA_ASSERT_OK(db_->WithTransaction([&](txn::Transaction* txn) {
    return db_
        ->UpdateWhere(txn, "parts", Predicate::True(),
                      {Assignment{"status", Value::String("u")}})
        .status();
  }));
  ASSERT_EQ(sink->events.size(), 2u);
  EXPECT_EQ(sink->events[1], kOnUpdate);
  EXPECT_EQ(sink->befores[1][1].AsString(), "active");
  EXPECT_EQ(sink->afters[1][1].AsString(), "u");

  OPDELTA_ASSERT_OK(db_->WithTransaction([&](txn::Transaction* txn) {
    return db_->DeleteWhere(txn, "parts", Predicate::True()).status();
  }));
  ASSERT_EQ(sink->events.size(), 3u);
  EXPECT_EQ(sink->events[2], kOnDelete);
  EXPECT_EQ(sink->befores[2][1].AsString(), "u");
}

TEST_F(DatabaseTest, EventMaskFilters) {
  auto sink = std::make_shared<RecordingSink>();
  OPDELTA_ASSERT_OK(
      db_->CreateTrigger("parts", TriggerDef{"t", kOnDelete, sink}));
  OPDELTA_ASSERT_OK(InsertOne(1));
  EXPECT_TRUE(sink->events.empty());
  OPDELTA_ASSERT_OK(db_->WithTransaction([&](txn::Transaction* txn) {
    return db_->DeleteWhere(txn, "parts", Predicate::True()).status();
  }));
  EXPECT_EQ(sink->events.size(), 1u);
}

class FailingSink : public TriggerSink {
 public:
  Status Write(Database*, txn::Transaction*, TriggerEvents, const Row&,
               const Row&) override {
    return Status::Internal("trigger boom");
  }
};

TEST_F(DatabaseTest, FailingTriggerAbortsUserTransaction) {
  // "If a trigger fails it also aborts the user transaction."
  OPDELTA_ASSERT_OK(db_->CreateTrigger(
      "parts", TriggerDef{"bad", kOnInsert, std::make_shared<FailingSink>()}));
  Status st = InsertOne(1);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(CountRows(db_.get(), "parts"), 0u);
}

TEST_F(DatabaseTest, DropTriggerStopsFiring) {
  auto sink = std::make_shared<RecordingSink>();
  OPDELTA_ASSERT_OK(
      db_->CreateTrigger("parts", TriggerDef{"t", kOnAll, sink}));
  OPDELTA_ASSERT_OK(db_->DropTrigger("parts", "t"));
  OPDELTA_ASSERT_OK(InsertOne(1));
  EXPECT_TRUE(sink->events.empty());
  EXPECT_TRUE(db_->DropTrigger("parts", "t").IsNotFound());
}

// ---------------------------------------------------------------- Indexes

TEST_F(DatabaseTest, IndexScanRange) {
  OPDELTA_ASSERT_OK(db_->CreateIndex("parts", "id"));
  for (int64_t i = 0; i < 100; ++i) OPDELTA_ASSERT_OK(InsertOne(i));
  std::vector<int64_t> ids;
  OPDELTA_ASSERT_OK(db_->IndexScan(
      nullptr, "parts", "id", 40, 49,
      [&](const storage::Rid&, const Row& row) {
        ids.push_back(row[0].AsInt64());
        return true;
      }));
  ASSERT_EQ(ids.size(), 10u);
  EXPECT_EQ(ids.front(), 40);
  EXPECT_EQ(ids.back(), 49);
}

TEST_F(DatabaseTest, IndexMaintainedThroughUpdates) {
  OPDELTA_ASSERT_OK(db_->CreateIndex("parts", "last_modified"));
  OPDELTA_ASSERT_OK(InsertOne(1));
  const Micros first_ts =
      TableContents(db_.get(), "parts").at(Value::Int64(1))[3].AsTimestamp();

  OPDELTA_ASSERT_OK(db_->WithTransaction([&](txn::Transaction* txn) {
    return db_
        ->UpdateWhere(txn, "parts", Predicate::True(),
                      {Assignment{"status", Value::String("v2")}})
        .status();
  }));
  // Old timestamp entry must be gone; new one must be found.
  int found_old = 0, found_new = 0;
  OPDELTA_ASSERT_OK(db_->IndexScan(
      nullptr, "parts", "last_modified", first_ts, first_ts,
      [&](const storage::Rid&, const Row&) {
        ++found_old;
        return true;
      }));
  OPDELTA_ASSERT_OK(db_->IndexScan(
      nullptr, "parts", "last_modified", first_ts + 1, INT64_MAX,
      [&](const storage::Rid&, const Row&) {
        ++found_new;
        return true;
      }));
  EXPECT_EQ(found_old, 0);
  EXPECT_EQ(found_new, 1);
}

TEST_F(DatabaseTest, IndexBackfillsExistingRows) {
  for (int64_t i = 0; i < 50; ++i) OPDELTA_ASSERT_OK(InsertOne(i));
  OPDELTA_ASSERT_OK(db_->CreateIndex("parts", "id"));
  int count = 0;
  OPDELTA_ASSERT_OK(db_->IndexScan(nullptr, "parts", "id", 0, 49,
                                   [&](const storage::Rid&, const Row&) {
                                     ++count;
                                     return true;
                                   }));
  EXPECT_EQ(count, 50);
}

TEST(DoubleColumnTest, FullDmlLifecycle) {
  // Double columns through insert / predicate / update / persistence.
  TempDir dir;
  auto db = OpenDb(dir, "db");
  catalog::Schema schema({catalog::Column{"id", catalog::ValueType::kInt64},
                          catalog::Column{"price",
                                          catalog::ValueType::kDouble}});
  OPDELTA_ASSERT_OK(db->CreateTable("prices", schema));
  OPDELTA_ASSERT_OK(db->WithTransaction([&](txn::Transaction* txn) -> Status {
    for (int i = 0; i < 10; ++i) {
      OPDELTA_RETURN_IF_ERROR(db->Insert(
          txn, "prices",
          {Value::Int64(i), Value::Double(i * 1.5)}));
    }
    return Status::OK();
  }));

  // Predicate over doubles, including int literal coercion via Compare.
  int matches = 0;
  OPDELTA_ASSERT_OK(db->Scan(
      nullptr, "prices",
      Predicate::Where("price", CompareOp::kGt, Value::Double(6.0)),
      [&](const storage::Rid&, const Row& row) {
        EXPECT_GT(row[1].AsDouble(), 6.0);
        ++matches;
        return true;
      }));
  EXPECT_EQ(matches, 5);  // 7.5, 9.0, 10.5, 12.0, 13.5

  OPDELTA_ASSERT_OK(db->WithTransaction([&](txn::Transaction* txn) {
    return db
        ->UpdateWhere(txn, "prices",
                      Predicate::Where("id", CompareOp::kEq, Value::Int64(0)),
                      {Assignment{"price", Value::Double(99.25)}})
        .status();
  }));
  auto contents = TableContents(db.get(), "prices");
  EXPECT_DOUBLE_EQ(contents.at(Value::Int64(0))[1].AsDouble(), 99.25);
}

// ------------------------------------------------------------ Persistence

TEST(DatabasePersistenceTest, SurvivesReopen) {
  TempDir dir;
  {
    auto db = OpenDb(dir, "db");
    OPDELTA_ASSERT_OK(db->CreateTable("parts", PartsSchema()));
    OPDELTA_ASSERT_OK(db->WithTransaction([&](txn::Transaction* txn) {
      OPDELTA_RETURN_IF_ERROR(db->Insert(txn, "parts", PartsRow(1, "a")));
      return db->Insert(txn, "parts", PartsRow(2, "b"));
    }));
    OPDELTA_ASSERT_OK(db->Close());
  }
  auto db = OpenDb(dir, "db");
  ASSERT_NE(db->GetTable("parts"), nullptr);
  EXPECT_EQ(CountRows(db.get(), "parts"), 2u);
  auto contents = TableContents(db.get(), "parts");
  EXPECT_EQ(contents.at(Value::Int64(2))[1].AsString(), "b");
}

TEST(DatabasePersistenceTest, TxnIdsNeverRepeatAcrossReopens) {
  // A reopened database must continue the txn-id sequence: the archive log
  // identifies transactions by id, and an old commit record must not vouch
  // for a new transaction's redo (it could even be aborted).
  TempDir dir;
  txn::TxnId first_id;
  {
    auto db = OpenDb(dir, "db");
    OPDELTA_ASSERT_OK(db->CreateTable("parts", PartsSchema()));
    auto txn = db->Begin();
    first_id = txn->id();
    OPDELTA_ASSERT_OK(db->Insert(txn.get(), "parts", PartsRow(1, "a")));
    OPDELTA_ASSERT_OK(db->Commit(txn.get()));
    OPDELTA_ASSERT_OK(db->Close());
  }
  auto db = OpenDb(dir, "db");
  auto txn = db->Begin();
  EXPECT_GT(txn->id(), first_id);
  (void)db->Abort(txn.get());
}

TEST(DatabasePersistenceTest, DropTableRemovesData) {
  TempDir dir;
  auto db = OpenDb(dir, "db");
  OPDELTA_ASSERT_OK(db->CreateTable("t", PartsSchema()));
  OPDELTA_ASSERT_OK(db->DropTable("t"));
  EXPECT_EQ(db->GetTable("t"), nullptr);
  EXPECT_TRUE(db->CreateTable("t", PartsSchema()).ok());  // recreatable
}

// --------------------------------------------------------------- Snapshot

TEST_F(DatabaseTest, SnapshotRoundTrip) {
  for (int64_t i = 0; i < 25; ++i) OPDELTA_ASSERT_OK(InsertOne(i));
  const std::string path = dir_.Sub("snap.bin");
  OPDELTA_ASSERT_OK(Snapshot::Write(db_.get(), "parts", path));

  catalog::Schema schema;
  int rows = 0;
  OPDELTA_ASSERT_OK(Snapshot::Read(path, &schema, [&](const Row& row) {
    EXPECT_EQ(row.size(), 4u);
    ++rows;
    return true;
  }));
  EXPECT_EQ(rows, 25);
  EXPECT_TRUE(schema == PartsSchema());
}

TEST_F(DatabaseTest, SnapshotDetectsCorruption) {
  OPDELTA_ASSERT_OK(InsertOne(1));
  const std::string path = dir_.Sub("snap.bin");
  OPDELTA_ASSERT_OK(Snapshot::Write(db_.get(), "parts", path));
  std::string data;
  OPDELTA_ASSERT_OK(Env::Default()->ReadFileToString(path, &data));
  data[data.size() / 2] ^= 0x1;
  OPDELTA_ASSERT_OK(Env::Default()->WriteStringToFile(path, Slice(data)));
  Status st = Snapshot::Read(path, nullptr, [](const Row&) { return true; });
  EXPECT_TRUE(st.IsCorruption());
}

// ------------------------------------------------------------ Concurrency

TEST_F(DatabaseTest, ExclusiveLockBlocksReaderTransaction) {
  OPDELTA_ASSERT_OK(InsertOne(1));
  auto writer = db_->Begin();
  OPDELTA_ASSERT_OK(db_->LockTableExclusive(writer.get(), "parts"));

  std::atomic<bool> reader_done{false};
  std::thread reader([&]() {
    auto txn = db_->Begin();
    Status st = db_->LockTableShared(txn.get(), "parts");
    if (st.ok()) {
      (void)db_->Commit(txn.get());
      reader_done = true;
    } else {
      (void)db_->Abort(txn.get());
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(reader_done.load());  // blocked by X
  OPDELTA_ASSERT_OK(db_->Commit(writer.get()));
  reader.join();
  EXPECT_TRUE(reader_done.load());
}

TEST_F(DatabaseTest, ConcurrentWritersOnDifferentRowsProceed) {
  OPDELTA_ASSERT_OK(InsertOne(1));
  OPDELTA_ASSERT_OK(InsertOne(2));
  std::atomic<int> committed{0};
  auto worker = [&](int64_t id, const char* status) {
    Status st = db_->WithTransaction([&](txn::Transaction* txn) {
      return db_
          ->UpdateWhere(txn, "parts",
                        Predicate::Where("id", CompareOp::kEq,
                                         Value::Int64(id)),
                        {Assignment{"status", Value::String(status)}})
          .status();
    });
    if (st.ok()) committed++;
  };
  std::thread t1(worker, 1, "one");
  std::thread t2(worker, 2, "two");
  t1.join();
  t2.join();
  EXPECT_EQ(committed.load(), 2);
  auto contents = TableContents(db_.get(), "parts");
  EXPECT_EQ(contents.at(Value::Int64(1))[1].AsString(), "one");
  EXPECT_EQ(contents.at(Value::Int64(2))[1].AsString(), "two");
}

}  // namespace
}  // namespace opdelta::engine
