#include <gtest/gtest.h>

#include "common/random.h"
#include "engine/snapshot.h"
#include "extract/delta.h"
#include "extract/log_extractor.h"
#include "extract/reconciler.h"
#include "extract/snapshot_differential.h"
#include "extract/timestamp_extractor.h"
#include "extract/trigger_extractor.h"
#include "sql/executor.h"
#include "workload/workload.h"
#include "tests/test_util.h"

namespace opdelta::extract {
namespace {

using catalog::Row;
using catalog::Value;
using engine::CompareOp;
using engine::Predicate;
using opdelta::testing::CountRows;
using opdelta::testing::OpenDb;
using opdelta::testing::TablesEqual;
using opdelta::testing::TempDir;

class ExtractTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = OpenDb(dir_, "src");
    OPDELTA_ASSERT_OK(wl_.CreateTable(db_.get(), "parts"));
  }

  Status RunUpdate(int64_t lo, int64_t hi, const std::string& status) {
    sql::Executor exec(db_.get());
    return exec.ExecuteSql(wl_.MakeUpdate("parts", lo, hi, status).ToSql())
        .status();
  }

  Status RunDelete(int64_t lo, int64_t hi) {
    sql::Executor exec(db_.get());
    return exec.ExecuteSql(wl_.MakeDelete("parts", lo, hi).ToSql()).status();
  }

  TempDir dir_;
  workload::PartsWorkload wl_;
  std::unique_ptr<engine::Database> db_;
};

// ----------------------------------------------------- DeltaBatch framing

TEST(DeltaBatchTest, EncodeDecodeRoundTrip) {
  DeltaBatch batch;
  batch.table = "parts";
  batch.schema = workload::PartsWorkload::Schema();
  batch.records.push_back(DeltaRecord{
      DeltaOp::kInsert, 7, 0,
      {Value::Int64(1), Value::String("a"), Value::String("p"),
       Value::Timestamp(5)}});
  batch.records.push_back(DeltaRecord{
      DeltaOp::kDelete, 8, 1,
      {Value::Int64(2), Value::Null(), Value::Null(), Value::Null()}});

  std::string buf;
  batch.EncodeTo(&buf);
  DeltaBatch out;
  OPDELTA_ASSERT_OK(DeltaBatch::DecodeFrom(Slice(buf), &out));
  EXPECT_EQ(out.table, "parts");
  ASSERT_EQ(out.records.size(), 2u);
  EXPECT_EQ(out.records[0].op, DeltaOp::kInsert);
  EXPECT_EQ(out.records[0].source_txn, 7u);
  EXPECT_EQ(out.records[1].op, DeltaOp::kDelete);
  EXPECT_EQ(catalog::CompareRows(out.records[0].image,
                                 batch.records[0].image),
            0);
}

TEST(DeltaBatchTest, NetChangesCollapseUpdateChains) {
  DeltaBatch batch;
  batch.schema = workload::PartsWorkload::Schema();
  auto row = [](int64_t id, const char* s) -> Row {
    return {Value::Int64(id), Value::String(s), Value::Null(), Value::Null()};
  };
  batch.records = {
      DeltaRecord{DeltaOp::kInsert, 1, 0, row(1, "v1")},
      DeltaRecord{DeltaOp::kUpdateBefore, 2, 1, row(1, "v1")},
      DeltaRecord{DeltaOp::kUpdateAfter, 2, 2, row(1, "v2")},
      DeltaRecord{DeltaOp::kInsert, 3, 3, row(2, "x")},
      DeltaRecord{DeltaOp::kDelete, 4, 4, row(2, "x")},
  };
  NetChanges net;
  OPDELTA_ASSERT_OK(ComputeNetChanges(batch, &net));
  ASSERT_EQ(net.size(), 2u);
  ASSERT_TRUE(net.at(Value::Int64(1)).has_value());
  EXPECT_EQ((*net.at(Value::Int64(1)))[1].AsString(), "v2");
  EXPECT_FALSE(net.at(Value::Int64(2)).has_value());  // net delete
}

// ---------------------------------------------------- TimestampExtractor

TEST_F(ExtractTest, TimestampExtractorSeesOnlyNewerRows) {
  OPDELTA_ASSERT_OK(wl_.Populate(db_.get(), "parts", 100));
  const Micros watermark = db_->clock()->NowMicros();
  OPDELTA_ASSERT_OK(RunUpdate(0, 10, "revised"));

  TimestampExtractor extractor(db_.get(), "parts", "last_modified");
  Result<DeltaBatch> batch = extractor.ExtractSince(watermark);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->records.size(), 10u);
  for (const DeltaRecord& r : batch->records) {
    EXPECT_EQ(r.op, DeltaOp::kUpsert);
    EXPECT_EQ(r.image[1].AsString(), "revised");
  }
}

TEST_F(ExtractTest, TimestampExtractorMissesDeletes) {
  // The documented blind spot: deletes leave no timestamped row behind.
  OPDELTA_ASSERT_OK(wl_.Populate(db_.get(), "parts", 50));
  const Micros watermark = db_->clock()->NowMicros();
  OPDELTA_ASSERT_OK(RunDelete(0, 25));
  TimestampExtractor extractor(db_.get(), "parts", "last_modified");
  Result<DeltaBatch> batch = extractor.ExtractSince(watermark);
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->records.empty());
}

TEST_F(ExtractTest, TimestampExtractorSeesOnlyFinalState) {
  OPDELTA_ASSERT_OK(wl_.Populate(db_.get(), "parts", 20));
  const Micros watermark = db_->clock()->NowMicros();
  OPDELTA_ASSERT_OK(RunUpdate(0, 20, "v1"));
  OPDELTA_ASSERT_OK(RunUpdate(0, 20, "v2"));
  TimestampExtractor extractor(db_.get(), "parts", "last_modified");
  Result<DeltaBatch> batch = extractor.ExtractSince(watermark);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->records.size(), 20u);  // one final state per row
  for (const DeltaRecord& r : batch->records) {
    EXPECT_EQ(r.image[1].AsString(), "v2");
  }
}

TEST_F(ExtractTest, TimestampExtractToFileMatchesToTable) {
  OPDELTA_ASSERT_OK(wl_.Populate(db_.get(), "parts", 200));
  const Micros watermark = db_->clock()->NowMicros();
  OPDELTA_ASSERT_OK(RunUpdate(50, 150, "touched"));

  TimestampExtractor extractor(db_.get(), "parts", "last_modified");
  uint64_t file_rows = 0, table_rows = 0;
  OPDELTA_ASSERT_OK(extractor.ExtractToFile(watermark, dir_.Sub("d.csv"),
                                            &file_rows));
  OPDELTA_ASSERT_OK(
      db_->CreateTable("parts_ts_delta", workload::PartsWorkload::Schema()));
  OPDELTA_ASSERT_OK(
      extractor.ExtractToTable(watermark, "parts_ts_delta", &table_rows));
  EXPECT_EQ(file_rows, 100u);
  EXPECT_EQ(table_rows, 100u);
  EXPECT_EQ(CountRows(db_.get(), "parts_ts_delta"), 100u);
}

TEST_F(ExtractTest, TimestampIndexVariantAgreesWithScan) {
  OPDELTA_ASSERT_OK(wl_.Populate(db_.get(), "parts", 300));
  OPDELTA_ASSERT_OK(db_->CreateIndex("parts", "last_modified"));
  const Micros watermark = db_->clock()->NowMicros();
  OPDELTA_ASSERT_OK(RunUpdate(100, 130, "idx"));

  TimestampExtractor scan_extractor(db_.get(), "parts", "last_modified");
  TimestampExtractor::Options opts;
  opts.use_index = true;
  TimestampExtractor index_extractor(db_.get(), "parts", "last_modified",
                                     opts);
  Result<DeltaBatch> a = scan_extractor.ExtractSince(watermark);
  Result<DeltaBatch> b = index_extractor.ExtractSince(watermark);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->records.size(), 30u);
  EXPECT_EQ(b->records.size(), 30u);
}

TEST_F(ExtractTest, TimestampExtractorRejectsNonTimestampColumn) {
  TimestampExtractor extractor(db_.get(), "parts", "status");
  EXPECT_FALSE(extractor.ExtractSince(0).ok());
}

// ------------------------------------------------- SnapshotDifferential

class SnapshotDiffTest
    : public ::testing::TestWithParam<SnapshotDifferential::Algorithm> {};

TEST_P(SnapshotDiffTest, DiffCapturesInsertDeleteUpdate) {
  TempDir dir;
  workload::PartsWorkload wl;
  auto db = OpenDb(dir, "src");
  OPDELTA_ASSERT_OK(wl.CreateTable(db.get(), "parts"));
  OPDELTA_ASSERT_OK(wl.Populate(db.get(), "parts", 100));
  OPDELTA_ASSERT_OK(engine::Snapshot::Write(db.get(), "parts",
                                            dir.Sub("old.snap")));

  sql::Executor exec(db.get());
  OPDELTA_ASSERT_OK(
      exec.ExecuteSql(wl.MakeDelete("parts", 0, 10).ToSql()).status());
  OPDELTA_ASSERT_OK(
      exec.ExecuteSql(wl.MakeUpdate("parts", 50, 60, "mod").ToSql())
          .status());
  OPDELTA_ASSERT_OK(
      exec.ExecuteSql(wl.MakeInsert("parts", 100, 5).ToSql()).status());
  OPDELTA_ASSERT_OK(engine::Snapshot::Write(db.get(), "parts",
                                            dir.Sub("new.snap")));

  SnapshotDifferential::Options options;
  options.algorithm = GetParam();
  options.window_rows = 32;  // force spills for the window variant
  SnapshotDifferential::Stats stats;
  Result<DeltaBatch> diff = SnapshotDifferential::Diff(
      dir.Sub("old.snap"), dir.Sub("new.snap"), options, &stats);
  ASSERT_TRUE(diff.ok()) << diff.status().ToString();

  int inserts = 0, deletes = 0, upd_before = 0, upd_after = 0;
  for (const DeltaRecord& r : diff->records) {
    switch (r.op) {
      case DeltaOp::kInsert:
        ++inserts;
        break;
      case DeltaOp::kDelete:
        ++deletes;
        break;
      case DeltaOp::kUpdateBefore:
        ++upd_before;
        break;
      case DeltaOp::kUpdateAfter:
        ++upd_after;
        break;
      default:
        FAIL() << "unexpected op";
    }
  }
  EXPECT_EQ(inserts, 5);
  EXPECT_EQ(deletes, 10);
  EXPECT_EQ(upd_before, 10);
  EXPECT_EQ(upd_after, 10);
  EXPECT_EQ(stats.old_rows, 100u);
  EXPECT_EQ(stats.new_rows, 95u);
}

TEST_P(SnapshotDiffTest, ApplyDiffReproducesNewSnapshot) {
  // Property: apply(diff(S1, S2), S1) == S2, under random workloads.
  TempDir dir;
  workload::PartsWorkload wl;
  auto db = OpenDb(dir, "src");
  OPDELTA_ASSERT_OK(wl.CreateTable(db.get(), "parts"));
  OPDELTA_ASSERT_OK(wl.Populate(db.get(), "parts", 200));
  OPDELTA_ASSERT_OK(engine::Snapshot::Write(db.get(), "parts",
                                            dir.Sub("s1.snap")));

  // Rebuild a replica of S1 before mutating the source.
  auto replica = OpenDb(dir, "replica");
  OPDELTA_ASSERT_OK(wl.CreateTable(replica.get(), "parts"));
  OPDELTA_ASSERT_OK(replica->WithTransaction([&](txn::Transaction* txn) {
    Status st;
    return engine::Snapshot::Read(dir.Sub("s1.snap"), nullptr,
                                  [&](const Row& row) {
                                    st = replica->InsertRaw(txn, "parts", row);
                                    return st.ok();
                                  });
  }));

  Rng rng(99);
  sql::Executor exec(db.get());
  for (int i = 0; i < 10; ++i) {
    int64_t lo = rng.Uniform(200);
    int64_t hi = lo + 1 + rng.Uniform(30);
    switch (rng.Uniform(3)) {
      case 0:
        OPDELTA_ASSERT_OK(
            exec.ExecuteSql(wl.MakeDelete("parts", lo, hi).ToSql()).status());
        break;
      case 1:
        OPDELTA_ASSERT_OK(
            exec.ExecuteSql(
                    wl.MakeUpdate("parts", lo, hi, "r" + std::to_string(i))
                        .ToSql())
                .status());
        break;
      default:
        OPDELTA_ASSERT_OK(
            exec.ExecuteSql(wl.MakeInsert("parts", 200 + i * 10, 5).ToSql())
                .status());
        break;
    }
  }
  OPDELTA_ASSERT_OK(engine::Snapshot::Write(db.get(), "parts",
                                            dir.Sub("s2.snap")));

  SnapshotDifferential::Options options;
  options.algorithm = GetParam();
  options.window_rows = 64;
  Result<DeltaBatch> diff = SnapshotDifferential::Diff(
      dir.Sub("s1.snap"), dir.Sub("s2.snap"), options, nullptr);
  ASSERT_TRUE(diff.ok()) << diff.status().ToString();
  OPDELTA_ASSERT_OK(
      SnapshotDifferential::Apply(replica.get(), "parts", *diff));
  EXPECT_TRUE(TablesEqual(db.get(), "parts", replica.get(), "parts"));
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, SnapshotDiffTest,
    ::testing::Values(SnapshotDifferential::Algorithm::kSortMerge,
                      SnapshotDifferential::Algorithm::kWindow));

TEST(SnapshotDiffErrorTest, SchemaMismatchRejected) {
  TempDir dir;
  workload::PartsWorkload wl;
  auto db = OpenDb(dir, "db");
  OPDELTA_ASSERT_OK(wl.CreateTable(db.get(), "parts"));
  OPDELTA_ASSERT_OK(db->CreateTable(
      "other",
      catalog::Schema({catalog::Column{"k", catalog::ValueType::kInt64}})));
  OPDELTA_ASSERT_OK(
      engine::Snapshot::Write(db.get(), "parts", dir.Sub("a.snap")));
  OPDELTA_ASSERT_OK(
      engine::Snapshot::Write(db.get(), "other", dir.Sub("b.snap")));
  EXPECT_FALSE(
      SnapshotDifferential::Diff(dir.Sub("a.snap"), dir.Sub("b.snap")).ok());
}

// ------------------------------------------------------ TriggerExtractor

TEST_F(ExtractTest, TriggerCapturesImagesPerPaperRules) {
  Result<std::string> delta_table =
      TriggerExtractor::Install(db_.get(), "parts");
  ASSERT_TRUE(delta_table.ok()) << delta_table.status().ToString();

  sql::Executor exec(db_.get());
  OPDELTA_ASSERT_OK(
      exec.ExecuteSql(wl_.MakeInsert("parts", 0, 5).ToSql()).status());
  OPDELTA_ASSERT_OK(RunUpdate(0, 3, "upd"));
  OPDELTA_ASSERT_OK(RunDelete(4, 5));

  // 5 inserts (1 row each) + 3 updates (2 rows each) + 1 delete (1 row).
  EXPECT_EQ(CountRows(db_.get(), *delta_table), 5u + 6u + 1u);

  Result<DeltaBatch> batch = TriggerExtractor::Drain(db_.get(), "parts");
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->records.size(), 12u);
  EXPECT_EQ(CountRows(db_.get(), *delta_table), 0u);  // drained

  // Net changes must equal the source's live state for touched keys.
  NetChanges net;
  OPDELTA_ASSERT_OK(ComputeNetChanges(*batch, &net));
  EXPECT_TRUE(net.at(Value::Int64(0)).has_value());
  EXPECT_EQ((*net.at(Value::Int64(0)))[1].AsString(), "upd");
  EXPECT_FALSE(net.at(Value::Int64(4)).has_value());
}

TEST_F(ExtractTest, TriggerCaptureRollsBackWithUserTransaction) {
  Result<std::string> delta_table =
      TriggerExtractor::Install(db_.get(), "parts");
  ASSERT_TRUE(delta_table.ok());

  auto txn = db_->Begin();
  OPDELTA_ASSERT_OK(db_->Insert(
      txn.get(), "parts",
      {Value::Int64(1), Value::String("x"), Value::String("p"),
       Value::Null()}));
  OPDELTA_ASSERT_OK(db_->Abort(txn.get()));

  EXPECT_EQ(CountRows(db_.get(), "parts"), 0u);
  EXPECT_EQ(CountRows(db_.get(), *delta_table), 0u);  // capture undone too
}

TEST_F(ExtractTest, TriggerUninstallStopsCapture) {
  Result<std::string> delta_table =
      TriggerExtractor::Install(db_.get(), "parts");
  ASSERT_TRUE(delta_table.ok());
  OPDELTA_ASSERT_OK(TriggerExtractor::Uninstall(db_.get(), "parts"));
  sql::Executor exec(db_.get());
  OPDELTA_ASSERT_OK(
      exec.ExecuteSql(wl_.MakeInsert("parts", 0, 3).ToSql()).status());
  EXPECT_EQ(CountRows(db_.get(), *delta_table), 0u);
}

TEST_F(ExtractTest, DeltaTableSchemaShape) {
  catalog::Schema s =
      DeltaTableSchemaFor(workload::PartsWorkload::Schema());
  EXPECT_EQ(s.num_columns(), 3u + 4u);
  EXPECT_EQ(s.column(0).name, "delta_op");
  EXPECT_EQ(s.column(3).name, "src_id");
}

// ---------------------------------------------------------- LogExtractor

TEST_F(ExtractTest, LogExtractorSeesOnlyCommitted) {
  OPDELTA_ASSERT_OK(wl_.Populate(db_.get(), "parts", 10));
  // One aborted transaction that must not appear.
  auto txn = db_->Begin();
  OPDELTA_ASSERT_OK(db_->Insert(
      txn.get(), "parts",
      {Value::Int64(999), Value::String("ghost"), Value::String("p"),
       Value::Null()}));
  OPDELTA_ASSERT_OK(db_->Abort(txn.get()));

  engine::Table* t = db_->GetTable("parts");
  LogExtractor extractor(db_->wal()->dir());
  txn::Lsn watermark = 0;
  Result<DeltaBatch> batch = extractor.ExtractSince(
      0, t->id(), "parts", t->schema(), &watermark);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->records.size(), 10u);
  EXPECT_GT(watermark, 0u);
  for (const DeltaRecord& r : batch->records) {
    EXPECT_EQ(r.op, DeltaOp::kInsert);
    EXPECT_NE(r.image[0].AsInt64(), 999);
  }
}

TEST_F(ExtractTest, LogExtractorWatermarkIsIncremental) {
  OPDELTA_ASSERT_OK(wl_.Populate(db_.get(), "parts", 5));
  engine::Table* t = db_->GetTable("parts");
  LogExtractor extractor(db_->wal()->dir());
  txn::Lsn watermark = 0;
  Result<DeltaBatch> first =
      extractor.ExtractSince(0, t->id(), "parts", t->schema(), &watermark);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->records.size(), 5u);

  OPDELTA_ASSERT_OK(RunUpdate(0, 2, "second-round"));
  txn::Lsn watermark2 = 0;
  Result<DeltaBatch> second = extractor.ExtractSince(
      watermark, t->id(), "parts", t->schema(), &watermark2);
  ASSERT_TRUE(second.ok());
  // Two updated rows -> before+after pairs only.
  EXPECT_EQ(second->records.size(), 4u);
  EXPECT_EQ(second->records[0].op, DeltaOp::kUpdateBefore);
  EXPECT_EQ(second->records[1].op, DeltaOp::kUpdateAfter);
}

TEST_F(ExtractTest, ReplayIntoRebuildsExactReplica) {
  // "These logs contain deltas and can be shipped to another similar
  // database and applied using tools based on the DBMS recovery managers."
  OPDELTA_ASSERT_OK(wl_.Populate(db_.get(), "parts", 100));
  OPDELTA_ASSERT_OK(RunUpdate(10, 40, "u1"));
  OPDELTA_ASSERT_OK(RunDelete(50, 70));
  OPDELTA_ASSERT_OK(RunUpdate(0, 5, "u2"));

  auto dest = OpenDb(dir_, "standby");
  OPDELTA_ASSERT_OK(wl_.CreateTable(dest.get(), "parts"));
  txn::RecoveryStats stats;
  OPDELTA_ASSERT_OK(LogExtractor::ReplayInto(
      db_->wal()->dir(), dest.get(),
      {{db_->GetTable("parts")->id(), "parts"}}, &stats));
  EXPECT_TRUE(TablesEqual(db_.get(), "parts", dest.get(), "parts"));
  EXPECT_GT(stats.redo_applied, 100u);
}

TEST_F(ExtractTest, ReplayIntoRequiresEmptyDestination) {
  OPDELTA_ASSERT_OK(wl_.Populate(db_.get(), "parts", 5));
  auto dest = OpenDb(dir_, "standby");
  OPDELTA_ASSERT_OK(wl_.CreateTable(dest.get(), "parts"));
  OPDELTA_ASSERT_OK(wl_.Populate(dest.get(), "parts", 1));
  Status st = LogExtractor::ReplayInto(
      db_->wal()->dir(), dest.get(),
      {{db_->GetTable("parts")->id(), "parts"}});
  EXPECT_FALSE(st.ok());
}

TEST(LogArchiveModeTest, RecyclingCheckpointLosesHistoryArchiveKeepsIt) {
  // The reason the paper's method 4 needs "archiving turned on": with a
  // recycling redo log, deltas before the last checkpoint are gone.
  for (bool archive : {true, false}) {
    TempDir dir;
    workload::PartsWorkload wl;
    engine::DatabaseOptions options;
    options.wal.archive_mode = archive;
    options.wal.segment_size = 4096;  // small segments so recycling bites
    auto db = OpenDb(dir, archive ? "arch" : "rec", options);
    OPDELTA_ASSERT_OK(wl.CreateTable(db.get(), "parts"));
    OPDELTA_ASSERT_OK(wl.Populate(db.get(), "parts", 200));

    // The DBA's periodic checkpoint runs between batches of changes.
    OPDELTA_ASSERT_OK(db->wal()->Checkpoint());

    sql::Executor exec(db.get());
    OPDELTA_ASSERT_OK(
        exec.ExecuteSql(wl.MakeUpdate("parts", 0, 10, "late").ToSql())
            .status());

    engine::Table* t = db->GetTable("parts");
    LogExtractor extractor(db->wal()->dir());
    txn::Lsn wm = 0;
    Result<DeltaBatch> batch =
        extractor.ExtractSince(0, t->id(), "parts", t->schema(), &wm);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();

    size_t inserts = 0;
    for (const DeltaRecord& r : batch->records) {
      if (r.op == DeltaOp::kInsert) ++inserts;
    }
    if (archive) {
      EXPECT_EQ(inserts, 200u);  // full history retained
    } else {
      EXPECT_LT(inserts, 200u);  // pre-checkpoint deltas recycled away
    }
  }
}

TEST_F(ExtractTest, LogExtractionRequiresExactSchema) {
  // Physiological logging: decoding with the wrong schema fails rather
  // than silently producing wrong rows.
  OPDELTA_ASSERT_OK(wl_.Populate(db_.get(), "parts", 5));
  catalog::Schema wrong({catalog::Column{"a", catalog::ValueType::kString},
                         catalog::Column{"b", catalog::ValueType::kString}});
  engine::Table* t = db_->GetTable("parts");
  LogExtractor extractor(db_->wal()->dir());
  txn::Lsn wm = 0;
  Result<DeltaBatch> batch =
      extractor.ExtractSince(0, t->id(), "parts", wrong, &wm);
  EXPECT_FALSE(batch.ok());
}

// ------------------------------------------------------------ Reconciler

TEST(ReconcilerTest, CollapsesReplicatedDeltas) {
  DeltaBatch a, b;
  a.table = b.table = "parts";
  a.schema = b.schema = workload::PartsWorkload::Schema();
  auto row = [](int64_t id, const char* s) -> Row {
    return {Value::Int64(id), Value::String(s), Value::Null(), Value::Null()};
  };
  // Both replicas saw the same two changes (replicated capture).
  a.records = {DeltaRecord{DeltaOp::kInsert, 1, 0, row(1, "x")},
               DeltaRecord{DeltaOp::kDelete, 2, 1, row(2, "y")}};
  b.records = a.records;

  Reconciler::Stats stats;
  Result<DeltaBatch> merged = Reconciler::Reconcile({&a, &b}, &stats);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged->records.size(), 2u);
  EXPECT_EQ(stats.duplicates_dropped, 2u);
  EXPECT_EQ(stats.conflicts, 0u);
}

TEST(ReconcilerTest, SitePriorityWinsConflicts) {
  DeltaBatch a, b;
  a.schema = b.schema = workload::PartsWorkload::Schema();
  a.table = b.table = "parts";
  auto row = [](int64_t id, const char* s) -> Row {
    return {Value::Int64(id), Value::String(s), Value::Null(), Value::Null()};
  };
  a.records = {DeltaRecord{DeltaOp::kInsert, 1, 0, row(1, "primary")}};
  b.records = {DeltaRecord{DeltaOp::kInsert, 1, 0, row(1, "replica")}};

  Reconciler::Stats stats;
  Result<DeltaBatch> merged = Reconciler::Reconcile({&a, &b}, &stats);
  ASSERT_TRUE(merged.ok());
  ASSERT_EQ(merged->records.size(), 1u);
  EXPECT_EQ(merged->records[0].image[1].AsString(), "primary");
  EXPECT_EQ(stats.conflicts, 1u);
}

TEST(ReconcilerTest, RejectsMismatchedSchemas) {
  DeltaBatch a, b;
  a.schema = workload::PartsWorkload::Schema();
  b.schema =
      catalog::Schema({catalog::Column{"x", catalog::ValueType::kInt64}});
  EXPECT_FALSE(Reconciler::Reconcile({&a, &b}, nullptr).ok());
  EXPECT_FALSE(Reconciler::Reconcile({}, nullptr).ok());
}

// --------------------------------------- Cross-method agreement property

TEST_F(ExtractTest, TriggerAndLogMethodsAgreeOnNetChanges) {
  Result<std::string> delta_table =
      TriggerExtractor::Install(db_.get(), "parts");
  ASSERT_TRUE(delta_table.ok());
  const catalog::TableId parts_id = db_->GetTable("parts")->id();

  // Random workload.
  Rng rng(7);
  sql::Executor exec(db_.get());
  OPDELTA_ASSERT_OK(
      exec.ExecuteSql(wl_.MakeInsert("parts", 0, 50).ToSql()).status());
  for (int i = 0; i < 15; ++i) {
    int64_t lo = rng.Uniform(50);
    int64_t hi = lo + 1 + rng.Uniform(10);
    switch (rng.Uniform(3)) {
      case 0:
        OPDELTA_ASSERT_OK(RunUpdate(lo, hi, "s" + std::to_string(i)));
        break;
      case 1:
        OPDELTA_ASSERT_OK(RunDelete(lo, hi));
        break;
      default:
        OPDELTA_ASSERT_OK(
            exec.ExecuteSql(wl_.MakeInsert("parts", 100 + i * 20, 3).ToSql())
                .status());
        break;
    }
  }

  Result<DeltaBatch> trigger_batch =
      TriggerExtractor::Drain(db_.get(), "parts");
  ASSERT_TRUE(trigger_batch.ok());

  LogExtractor log_extractor(db_->wal()->dir());
  txn::Lsn wm = 0;
  Result<DeltaBatch> log_batch = log_extractor.ExtractSince(
      0, parts_id, "parts", workload::PartsWorkload::Schema(), &wm);
  ASSERT_TRUE(log_batch.ok());

  NetChanges trigger_net, log_net;
  OPDELTA_ASSERT_OK(ComputeNetChanges(*trigger_batch, &trigger_net));
  OPDELTA_ASSERT_OK(ComputeNetChanges(*log_batch, &log_net));
  ASSERT_EQ(trigger_net.size(), log_net.size());
  for (const auto& [key, state] : trigger_net) {
    auto it = log_net.find(key);
    ASSERT_NE(it, log_net.end());
    ASSERT_EQ(state.has_value(), it->second.has_value());
    if (state.has_value()) {
      EXPECT_EQ(catalog::CompareRows(*state, *it->second), 0);
    }
  }
}

}  // namespace
}  // namespace opdelta::extract
