#include "tools/lint/linter.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tools/lint/lexer.h"
#include "tools/lint/rules.h"

namespace opdelta::lint {
namespace {

LintReport LintOne(const std::string& path, const std::string& code,
                   const std::string& baseline = "") {
  LintOptions options;
  options.baseline = baseline;
  return RunLint({{path, code}}, options);
}

std::vector<RuleId> RuleIds(const std::vector<Finding>& findings) {
  std::vector<RuleId> out;
  out.reserve(findings.size());
  for (const Finding& f : findings) out.push_back(f.rule);
  return out;
}

/// Every rule's positive fixture must also be baselineable: feed the
/// findings back as a baseline and the rerun reports clean.
void ExpectBaselineable(const std::string& path, const std::string& code) {
  LintReport first = LintOne(path, code);
  ASSERT_FALSE(first.findings.empty()) << "fixture is not a positive case";
  const std::string baseline = FormatBaseline(first.findings);
  LintReport second = LintOne(path, code, baseline);
  EXPECT_TRUE(second.clean());
  EXPECT_EQ(second.baselined.size(), first.findings.size());
  EXPECT_TRUE(second.stale_baseline_entries.empty());
}

// ------------------------------------------------------------------ lexer

TEST(LintLexerTest, TokensCommentsAndIncludes) {
  FileUnit unit = Lex("src/x.cc", R"(#include <vector>
#include "common/env.h"
// a line comment
int main() { return 42; }  /* trailing */
)");
  ASSERT_EQ(unit.includes.size(), 2u);
  EXPECT_EQ(unit.includes[0].header, "vector");
  EXPECT_TRUE(unit.includes[0].angled);
  EXPECT_EQ(unit.includes[1].header, "common/env.h");
  EXPECT_FALSE(unit.includes[1].angled);

  ASSERT_EQ(unit.comments.size(), 2u);
  EXPECT_EQ(unit.comments[0].line, 3u);
  EXPECT_NE(unit.comments[0].text.find("a line comment"), std::string::npos);

  ASSERT_GE(unit.tokens.size(), 9u);
  EXPECT_TRUE(unit.tokens[0].IsIdent("int"));
  EXPECT_TRUE(unit.tokens[1].IsIdent("main"));
  EXPECT_EQ(unit.tokens[0].line, 4u);
}

TEST(LintLexerTest, RawStringsAndContinuationsDoNotLeakTokens) {
  FileUnit unit = Lex("src/x.cc", R"__(const char* s = R"(new delete ::open)";
#define M(a) \
  do_thing(a)
)__");
  for (const Token& t : unit.tokens) {
    EXPECT_FALSE(t.IsIdent("new"));
    EXPECT_FALSE(t.IsIdent("delete"));
    EXPECT_FALSE(t.IsIdent("open"));
    EXPECT_FALSE(t.IsIdent("do_thing"));  // preprocessor body is skipped
  }
}

// --------------------------------------------------------------------- R1

constexpr char kR1Positive[] = R"(
Status DoThing();
void Caller() {
  DoThing();
}
)";

TEST(LintR1Test, FlagsDiscardedStatusCall) {
  LintReport report = LintOne("src/a.cc", kR1Positive);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, RuleId::kR1DiscardedStatus);
  EXPECT_NE(report.findings[0].message.find("DoThing"), std::string::npos);
  EXPECT_EQ(report.findings[0].line, 4u);
}

TEST(LintR1Test, FlagsDiscardedMemberChainCall) {
  LintReport report = LintOne("src/a.cc", R"(
struct Db { Status Commit(); };
void Caller(Db* db) {
  db->Commit();
}
)");
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_NE(report.findings[0].message.find("Commit"), std::string::npos);
}

TEST(LintR1Test, NegativeWhenHandledOrExplicitlyDiscarded) {
  LintReport report = LintOne("src/a.cc", R"(
Status DoThing();
Status Caller() {
  Status st = DoThing();
  if (!st.ok()) return st;
  (void)DoThing();
  return DoThing();
}
)");
  EXPECT_TRUE(report.clean()) << FormatFinding(report.findings[0]);
}

TEST(LintR1Test, AmbiguousNameIsNotFlagged) {
  // Init returns Status in one class and void in another: a name-based
  // matcher cannot tell the call sites apart, so it stays silent and
  // leaves those to the [[nodiscard]] compile error.
  LintReport report = LintOne("src/a.cc", R"(
struct Parser { Status Init(); };
struct Page { void Init(); };
void Caller(Page* p) {
  p->Init();
}
)");
  EXPECT_TRUE(report.clean());
}

TEST(LintR1Test, SuppressedAndBaselined) {
  LintReport report = LintOne("src/a.cc", R"(
Status DoThing();
void Caller() {
  DoThing();  // NOLINT(opdelta-R1: result intentionally unused in fixture)
}
)");
  EXPECT_TRUE(report.clean());
  ASSERT_EQ(report.suppressed.size(), 1u);
  EXPECT_EQ(report.suppressed[0].rule, RuleId::kR1DiscardedStatus);
  ExpectBaselineable("src/a.cc", kR1Positive);
}

// --------------------------------------------------------------------- R2

// The violation this rule exists for: file_manager.cc's page file once
// opened its fd with a raw ::open, invisible to FaultInjectionEnv.
constexpr char kR2Positive[] = R"(
Status Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return Status::IOError(path);
  return Status::OK();
}
)";

TEST(LintR2Test, FlagsRawSyscallOutsideEnv) {
  LintReport report = LintOne("src/storage/file_manager.cc", kR2Positive);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, RuleId::kR2RawFilesystem);
  EXPECT_EQ(report.findings[0].line, 3u);
}

TEST(LintR2Test, FlagsStdioAndStreams) {
  LintReport report = LintOne("src/a.cc", R"(
void Save() {
  FILE* f = fopen("x", "w");
  std::ofstream out("y");
}
)");
  EXPECT_EQ(RuleIds(report.findings),
            (std::vector<RuleId>{RuleId::kR2RawFilesystem,
                                 RuleId::kR2RawFilesystem}));
}

TEST(LintR2Test, NegativeInsideEnvLayerAndForMethods) {
  EXPECT_TRUE(LintOne("src/common/env_posix.cc", kR2Positive).clean());
  // Member functions that happen to share a syscall name are not syscalls.
  EXPECT_TRUE(LintOne("src/a.cc", R"(
void Use(File* f) {
  f->close();
  queue.remove(3);
}
)")
                  .clean());
}

TEST(LintR2Test, SuppressedAndBaselined) {
  LintReport report = LintOne("src/storage/file_manager.cc", R"(
Status Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR);  // NOLINT(opdelta-R2: fixture)
  return Status::OK();
}
)");
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.suppressed.size(), 1u);
  ExpectBaselineable("src/storage/file_manager.cc", kR2Positive);
}

// --------------------------------------------------------------------- R3

constexpr char kR3BareWait[] = R"(
void WaitReady(std::condition_variable& cv,
               std::unique_lock<std::mutex>& lk) {
  cv.wait(lk);
}
)";

TEST(LintR3Test, FlagsBareCvWaitAndTimedVariants) {
  LintReport report = LintOne("src/a.cc", kR3BareWait);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, RuleId::kR3LockDiscipline);

  report = LintOne("src/a.cc", R"(
void WaitReady(std::condition_variable& cv,
               std::unique_lock<std::mutex>& lk, Deadline d) {
  cv.wait_until(lk, d);
}
)");
  ASSERT_EQ(report.findings.size(), 1u);
}

TEST(LintR3Test, NegativeWithPredicate) {
  EXPECT_TRUE(LintOne("src/a.cc", R"(
void WaitReady(std::condition_variable& cv,
               std::unique_lock<std::mutex>& lk, Deadline d) {
  cv.wait(lk, [&] { return ready; });
  cv.wait_until(lk, d, [&] { return ready; });
}
)")
                  .clean());
}

constexpr char kR3Callback[] = R"(
class Notifier {
 public:
  void Fire() {
    std::lock_guard<std::mutex> g(m_);
    cb_();
  }
 private:
  std::mutex m_;
  std::function<void()> cb_;
};
)";

TEST(LintR3Test, FlagsCallbackInvokedUnderLock) {
  LintReport report = LintOne("src/a.cc", kR3Callback);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_NE(report.findings[0].message.find("cb_"), std::string::npos);
  EXPECT_NE(report.findings[0].message.find("'g'"), std::string::npos);
}

TEST(LintR3Test, NegativeWhenLockReleasedFirst) {
  EXPECT_TRUE(LintOne("src/a.cc", R"(
class Notifier {
 public:
  void Fire() {
    {
      std::lock_guard<std::mutex> g(m_);
      armed_ = false;
    }
    cb_();
  }
  void FireUnlocked() {
    std::unique_lock<std::mutex> lk(m_);
    lk.unlock();
    cb_();
  }
 private:
  std::mutex m_;
  bool armed_ = true;
  std::function<void()> cb_;
};
)")
                  .clean());
}

TEST(LintR3Test, SuppressedAndBaselined) {
  LintReport report = LintOne("src/a.cc", R"(
class Notifier {
 public:
  void Fire() {
    std::lock_guard<std::mutex> g(m_);
    cb_();  // NOLINT(opdelta-R3: documented contract in fixture)
  }
 private:
  std::mutex m_;
  std::function<void()> cb_;
};
)");
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.suppressed.size(), 1u);
  ExpectBaselineable("src/a.cc", kR3BareWait);
}

// --------------------------------------------------------------------- R4

constexpr char kR4Positive[] = R"(
void Leaky() {
  int* p = new int;
  delete p;
}
)";

TEST(LintR4Test, FlagsNakedNewAndDelete) {
  LintReport report = LintOne("src/a.cc", kR4Positive);
  EXPECT_EQ(RuleIds(report.findings),
            (std::vector<RuleId>{RuleId::kR4OwnershipNodiscard,
                                 RuleId::kR4OwnershipNodiscard}));
}

TEST(LintR4Test, NegativeForSmartPointerOwnershipIdioms) {
  EXPECT_TRUE(LintOne("src/a.cc", R"(
void Fine() {
  auto a = std::make_unique<int>(1);
  std::unique_ptr<Widget> b(new Widget());
  std::unique_ptr<Widget> c = std::unique_ptr<Widget>(new Widget());
  b.reset(new Widget());
  static Registry* r = new Registry();
}
void operator delete(void* p) noexcept;
)")
                  .clean());
}

TEST(LintR4Test, FlagsStatusClassWithoutNodiscard) {
  LintReport report = LintOne("src/common/status.h", R"(
class Status {
 public:
  bool ok() const;
};
)");
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_NE(report.findings[0].message.find("nodiscard"), std::string::npos);

  EXPECT_TRUE(LintOne("src/common/status.h", R"(
class [[nodiscard]] Status {
 public:
  bool ok() const;
};
)")
                  .clean());
}

TEST(LintR4Test, SuppressedAndBaselined) {
  LintReport report = LintOne("src/a.cc", R"(
void ArenaFree(Node* n) {
  delete n;  // NOLINT(opdelta-R4: arena reclamation fixture)
}
)");
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.suppressed.size(), 1u);
  ExpectBaselineable("src/a.cc", kR4Positive);
}

// --------------------------------------------------------------------- R5

constexpr char kR5Positive[] = R"(#include <cstdio>
#include <fstream>
)";

TEST(LintR5Test, FlagsForbiddenIncludesOutsideEnv) {
  LintReport report = LintOne("src/engine/database.cc", kR5Positive);
  EXPECT_EQ(RuleIds(report.findings),
            (std::vector<RuleId>{RuleId::kR5Hygiene, RuleId::kR5Hygiene}));
  EXPECT_TRUE(LintOne("src/common/env_posix.cc", kR5Positive).clean());
}

TEST(LintR5Test, TodoMarkersNeedIssueTags) {
  LintReport report = LintOne("src/a.cc", R"(
// TODO: make this incremental
int x;
)");
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, RuleId::kR5Hygiene);

  EXPECT_TRUE(LintOne("src/a.cc", R"(
// TODO(#42): make this incremental
// Prose mentioning the TODO hygiene rule is not a marker.
int x;
)")
                  .clean());
}

TEST(LintR5Test, SuppressedAndBaselined) {
  LintReport report = LintOne("src/a.cc",
                              "#include <cstdio>  // NOLINT(opdelta-R5: x)\n");
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.suppressed.size(), 1u);
  ExpectBaselineable("src/engine/database.cc", kR5Positive);
}

// ----------------------------------------------------------- suppressions

TEST(LintSuppressionTest, NolintNextLineAndWrongRule) {
  EXPECT_TRUE(LintOne("src/a.cc", R"(
Status DoThing();
void Caller() {
  // NOLINTNEXTLINE(opdelta-R1: fixture)
  DoThing();
}
)")
                  .clean());

  // A NOLINT naming a different rule does not silence this finding.
  LintReport report = LintOne("src/a.cc", R"(
Status DoThing();
void Caller() {
  DoThing();  // NOLINT(opdelta-R2: wrong rule on purpose)
}
)");
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_TRUE(report.suppressed.empty());
}

// --------------------------------------------------------------- baseline

TEST(LintBaselineTest, StaleEntriesAreReported) {
  const std::string baseline =
      "# comment line\n"
      "opdelta-R1|src/gone.cc|Vanished();\n";
  LintReport report = LintOne("src/a.cc", "int x;\n", baseline);
  EXPECT_TRUE(report.clean());
  ASSERT_EQ(report.stale_baseline_entries.size(), 1u);
  EXPECT_NE(report.stale_baseline_entries[0].find("Vanished"),
            std::string::npos);
}

TEST(LintBaselineTest, EntriesSurviveReformatting) {
  LintReport first = LintOne("src/a.cc", kR1Positive);
  ASSERT_EQ(first.findings.size(), 1u);
  const std::string baseline = FormatBaseline(first.findings);
  // Reindenting must not invalidate the entry (leading whitespace is
  // trimmed before snippets are compared).
  LintReport second = LintOne("src/a.cc", R"(
Status DoThing();
void Caller() {
        DoThing();
}
)",
                              baseline);
  EXPECT_TRUE(second.clean());
  EXPECT_EQ(second.baselined.size(), 1u);
}

}  // namespace
}  // namespace opdelta::lint
