#include "tools/lint/linter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "tools/lint/lexer.h"
#include "tools/lint/rules.h"

namespace opdelta::lint {
namespace {

LintReport LintOne(const std::string& path, const std::string& code,
                   const std::string& baseline = "") {
  LintOptions options;
  options.baseline = baseline;
  return RunLint({{path, code}}, options);
}

std::vector<RuleId> RuleIds(const std::vector<Finding>& findings) {
  std::vector<RuleId> out;
  out.reserve(findings.size());
  for (const Finding& f : findings) out.push_back(f.rule);
  return out;
}

/// Every rule's positive fixture must also be baselineable: feed the
/// findings back as a baseline and the rerun reports clean.
void ExpectBaselineable(const std::string& path, const std::string& code) {
  LintReport first = LintOne(path, code);
  ASSERT_FALSE(first.findings.empty()) << "fixture is not a positive case";
  const std::string baseline = FormatBaseline(first.findings);
  LintReport second = LintOne(path, code, baseline);
  EXPECT_TRUE(second.clean());
  EXPECT_EQ(second.baselined.size(), first.findings.size());
  EXPECT_TRUE(second.stale_baseline_entries.empty());
}

// ------------------------------------------------------------------ lexer

TEST(LintLexerTest, TokensCommentsAndIncludes) {
  FileUnit unit = Lex("src/x.cc", R"(#include <vector>
#include "common/env.h"
// a line comment
int main() { return 42; }  /* trailing */
)");
  ASSERT_EQ(unit.includes.size(), 2u);
  EXPECT_EQ(unit.includes[0].header, "vector");
  EXPECT_TRUE(unit.includes[0].angled);
  EXPECT_EQ(unit.includes[1].header, "common/env.h");
  EXPECT_FALSE(unit.includes[1].angled);

  ASSERT_EQ(unit.comments.size(), 2u);
  EXPECT_EQ(unit.comments[0].line, 3u);
  EXPECT_NE(unit.comments[0].text.find("a line comment"), std::string::npos);

  ASSERT_GE(unit.tokens.size(), 9u);
  EXPECT_TRUE(unit.tokens[0].IsIdent("int"));
  EXPECT_TRUE(unit.tokens[1].IsIdent("main"));
  EXPECT_EQ(unit.tokens[0].line, 4u);
}

TEST(LintLexerTest, RawStringsAndContinuationsDoNotLeakTokens) {
  FileUnit unit = Lex("src/x.cc", R"__(const char* s = R"(new delete ::open)";
#define M(a) \
  do_thing(a)
)__");
  for (const Token& t : unit.tokens) {
    EXPECT_FALSE(t.IsIdent("new"));
    EXPECT_FALSE(t.IsIdent("delete"));
    EXPECT_FALSE(t.IsIdent("open"));
    EXPECT_FALSE(t.IsIdent("do_thing"));  // preprocessor body is skipped
  }
}

// --------------------------------------------------------------------- R1

constexpr char kR1Positive[] = R"(
Status DoThing();
void Caller() {
  DoThing();
}
)";

TEST(LintR1Test, FlagsDiscardedStatusCall) {
  LintReport report = LintOne("src/a.cc", kR1Positive);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, RuleId::kR1DiscardedStatus);
  EXPECT_NE(report.findings[0].message.find("DoThing"), std::string::npos);
  EXPECT_EQ(report.findings[0].line, 4u);
}

TEST(LintR1Test, FlagsDiscardedMemberChainCall) {
  LintReport report = LintOne("src/a.cc", R"(
struct Db { Status Commit(); };
void Caller(Db* db) {
  db->Commit();
}
)");
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_NE(report.findings[0].message.find("Commit"), std::string::npos);
}

TEST(LintR1Test, NegativeWhenHandledOrExplicitlyDiscarded) {
  LintReport report = LintOne("src/a.cc", R"(
Status DoThing();
Status Caller() {
  Status st = DoThing();
  if (!st.ok()) return st;
  (void)DoThing();
  return DoThing();
}
)");
  EXPECT_TRUE(report.clean()) << FormatFinding(report.findings[0]);
}

TEST(LintR1Test, TernaryElseArmIsNotAStatementStart) {
  LintReport report = LintOne("src/a.cc", R"(
Status DoThing();
Status Other();
void Caller(bool flag) {
  Status st = flag ? Other()
                   : DoThing();
  (void)st;
}
)");
  EXPECT_TRUE(report.clean());

  // Case labels keep their statement-start status.
  LintReport labeled = LintOne("src/a.cc", R"(
Status DoThing();
void Caller(int k) {
  switch (k) {
    case 1:
      DoThing();
      break;
  }
}
)");
  ASSERT_EQ(labeled.findings.size(), 1u);
  EXPECT_EQ(labeled.findings[0].rule, RuleId::kR1DiscardedStatus);
}

TEST(LintR1Test, AmbiguousNameIsNotFlagged) {
  // Init returns Status in one class and void in another: a name-based
  // matcher cannot tell the call sites apart, so it stays silent and
  // leaves those to the [[nodiscard]] compile error.
  LintReport report = LintOne("src/a.cc", R"(
struct Parser { Status Init(); };
struct Page { void Init(); };
void Caller(Page* p) {
  p->Init();
}
)");
  EXPECT_TRUE(report.clean());
}

TEST(LintR1Test, SuppressedAndBaselined) {
  LintReport report = LintOne("src/a.cc", R"(
Status DoThing();
void Caller() {
  DoThing();  // NOLINT(opdelta-R1: result intentionally unused in fixture)
}
)");
  EXPECT_TRUE(report.clean());
  ASSERT_EQ(report.suppressed.size(), 1u);
  EXPECT_EQ(report.suppressed[0].rule, RuleId::kR1DiscardedStatus);
  ExpectBaselineable("src/a.cc", kR1Positive);
}

// --------------------------------------------------------------------- R2

// The violation this rule exists for: file_manager.cc's page file once
// opened its fd with a raw ::open, invisible to FaultInjectionEnv.
constexpr char kR2Positive[] = R"(
Status Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return Status::IOError(path);
  return Status::OK();
}
)";

TEST(LintR2Test, FlagsRawSyscallOutsideEnv) {
  LintReport report = LintOne("src/storage/file_manager.cc", kR2Positive);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, RuleId::kR2RawFilesystem);
  EXPECT_EQ(report.findings[0].line, 3u);
}

TEST(LintR2Test, FlagsStdioAndStreams) {
  LintReport report = LintOne("src/a.cc", R"(
void Save() {
  FILE* f = fopen("x", "w");
  std::ofstream out("y");
}
)");
  EXPECT_EQ(RuleIds(report.findings),
            (std::vector<RuleId>{RuleId::kR2RawFilesystem,
                                 RuleId::kR2RawFilesystem}));
}

TEST(LintR2Test, NegativeInsideEnvLayerAndForMethods) {
  EXPECT_TRUE(LintOne("src/common/env_posix.cc", kR2Positive).clean());
  // Member functions that happen to share a syscall name are not syscalls.
  EXPECT_TRUE(LintOne("src/a.cc", R"(
void Use(File* f) {
  f->close();
  queue.remove(3);
}
)")
                  .clean());
}

TEST(LintR2Test, SuppressedAndBaselined) {
  LintReport report = LintOne("src/storage/file_manager.cc", R"(
Status Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR);  // NOLINT(opdelta-R2: fixture)
  return Status::OK();
}
)");
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.suppressed.size(), 1u);
  ExpectBaselineable("src/storage/file_manager.cc", kR2Positive);
}

// --------------------------------------------------------------------- R3

constexpr char kR3BareWait[] = R"(
void WaitReady(std::condition_variable& cv,
               std::unique_lock<std::mutex>& lk) {
  cv.wait(lk);
}
)";

TEST(LintR3Test, FlagsBareCvWaitAndTimedVariants) {
  LintReport report = LintOne("src/a.cc", kR3BareWait);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, RuleId::kR3LockDiscipline);

  report = LintOne("src/a.cc", R"(
void WaitReady(std::condition_variable& cv,
               std::unique_lock<std::mutex>& lk, Deadline d) {
  cv.wait_until(lk, d);
}
)");
  ASSERT_EQ(report.findings.size(), 1u);
}

TEST(LintR3Test, NegativeWithPredicate) {
  EXPECT_TRUE(LintOne("src/a.cc", R"(
void WaitReady(std::condition_variable& cv,
               std::unique_lock<std::mutex>& lk, Deadline d) {
  cv.wait(lk, [&] { return ready; });
  cv.wait_until(lk, d, [&] { return ready; });
}
)")
                  .clean());
}

constexpr char kR3Callback[] = R"(
class Notifier {
 public:
  void Fire() {
    std::lock_guard<common::OrderedMutex> g(m_);
    cb_();
  }
 private:
  common::OrderedMutex m_{OPDELTA_LOCK_RANK(notifier_m, 10)};
  std::function<void()> cb_;
};
)";

TEST(LintR3Test, FlagsCallbackInvokedUnderLock) {
  // The lock-graph layer (R8) also flags user callbacks under a lock, so a
  // callback invocation yields both findings; R3 carries the guard name.
  LintReport report = LintOne("src/a.cc", kR3Callback);
  const std::vector<RuleId> ids = RuleIds(report.findings);
  ASSERT_NE(std::find(ids.begin(), ids.end(), RuleId::kR3LockDiscipline),
            ids.end());
  for (const Finding& f : report.findings) {
    if (f.rule != RuleId::kR3LockDiscipline) continue;
    EXPECT_NE(f.message.find("cb_"), std::string::npos);
    EXPECT_NE(f.message.find("'g'"), std::string::npos);
  }
}

TEST(LintR3Test, NegativeWhenLockReleasedFirst) {
  EXPECT_TRUE(LintOne("src/a.cc", R"(
class Notifier {
 public:
  void Fire() {
    {
      std::lock_guard<common::OrderedMutex> g(m_);
      armed_ = false;
    }
    cb_();
  }
  void FireUnlocked() {
    std::unique_lock<common::OrderedMutex> lk(m_);
    lk.unlock();
    cb_();
  }
 private:
  common::OrderedMutex m_{OPDELTA_LOCK_RANK(notifier_m, 10)};
  bool armed_ = true;
  std::function<void()> cb_;
};
)")
                  .clean());
}

TEST(LintR3Test, SuppressedAndBaselined) {
  LintReport report = LintOne("src/a.cc", R"(
class Notifier {
 public:
  void Fire() {
    std::lock_guard<common::OrderedMutex> g(m_);
    cb_();  // NOLINT(opdelta-R3, opdelta-R8: documented contract in fixture)
  }
 private:
  common::OrderedMutex m_{OPDELTA_LOCK_RANK(notifier_m, 10)};
  std::function<void()> cb_;
};
)");
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.suppressed.size(), 2u);
  ExpectBaselineable("src/a.cc", kR3BareWait);
}

// --------------------------------------------------------------------- R4

constexpr char kR4Positive[] = R"(
void Leaky() {
  int* p = new int;
  delete p;
}
)";

TEST(LintR4Test, FlagsNakedNewAndDelete) {
  LintReport report = LintOne("src/a.cc", kR4Positive);
  EXPECT_EQ(RuleIds(report.findings),
            (std::vector<RuleId>{RuleId::kR4OwnershipNodiscard,
                                 RuleId::kR4OwnershipNodiscard}));
}

TEST(LintR4Test, NegativeForSmartPointerOwnershipIdioms) {
  EXPECT_TRUE(LintOne("src/a.cc", R"(
void Fine() {
  auto a = std::make_unique<int>(1);
  std::unique_ptr<Widget> b(new Widget());
  std::unique_ptr<Widget> c = std::unique_ptr<Widget>(new Widget());
  b.reset(new Widget());
  static Registry* r = new Registry();
}
void operator delete(void* p) noexcept;
)")
                  .clean());
}

TEST(LintR4Test, FlagsStatusClassWithoutNodiscard) {
  LintReport report = LintOne("src/common/status.h", R"(
class Status {
 public:
  bool ok() const;
};
)");
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_NE(report.findings[0].message.find("nodiscard"), std::string::npos);

  EXPECT_TRUE(LintOne("src/common/status.h", R"(
class [[nodiscard]] Status {
 public:
  bool ok() const;
};
)")
                  .clean());
}

TEST(LintR4Test, SuppressedAndBaselined) {
  LintReport report = LintOne("src/a.cc", R"(
void ArenaFree(Node* n) {
  delete n;  // NOLINT(opdelta-R4: arena reclamation fixture)
}
)");
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.suppressed.size(), 1u);
  ExpectBaselineable("src/a.cc", kR4Positive);
}

// --------------------------------------------------------------------- R5

constexpr char kR5Positive[] = R"(#include <cstdio>
#include <fstream>
)";

TEST(LintR5Test, FlagsForbiddenIncludesOutsideEnv) {
  LintReport report = LintOne("src/engine/database.cc", kR5Positive);
  EXPECT_EQ(RuleIds(report.findings),
            (std::vector<RuleId>{RuleId::kR5Hygiene, RuleId::kR5Hygiene}));
  EXPECT_TRUE(LintOne("src/common/env_posix.cc", kR5Positive).clean());
}

TEST(LintR5Test, TodoMarkersNeedIssueTags) {
  LintReport report = LintOne("src/a.cc", R"(
// TODO: make this incremental
int x;
)");
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, RuleId::kR5Hygiene);

  EXPECT_TRUE(LintOne("src/a.cc", R"(
// TODO(#42): make this incremental
// Prose mentioning the TODO hygiene rule is not a marker.
int x;
)")
                  .clean());
}

TEST(LintR5Test, SuppressedAndBaselined) {
  LintReport report = LintOne("src/a.cc",
                              "#include <cstdio>  // NOLINT(opdelta-R5: x)\n");
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.suppressed.size(), 1u);
  ExpectBaselineable("src/engine/database.cc", kR5Positive);
}

// --------------------------------------------------------------------- R6

constexpr char kR6ParseInLoop[] = R"(
Status Apply(const std::vector<Op>& ops) {
  for (const Op& op : ops) {
    Result<sql::Statement> stmt = sql::Parser::Parse(op.sql);
    OPDELTA_RETURN_IF_ERROR(stmt.status());
  }
  return Status::OK();
}
)";

TEST(LintR6Test, FlagsParserParseInsideLoop) {
  LintReport report = LintOne("src/warehouse/apply.cc", kR6ParseInLoop);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, RuleId::kR6SchemaMapHygiene);
  EXPECT_NE(report.findings[0].message.find("StatementCache"),
            std::string::npos);
  EXPECT_EQ(report.findings[0].line, 4u);
}

TEST(LintR6Test, NegativeForGuardedFallbackOutsideLoopAndSqlLayer) {
  // The cache-or-parse ternary is the sanctioned no-cache fallback.
  LintReport guarded = LintOne("src/warehouse/apply.cc", R"(
Status Apply(const std::vector<Op>& ops) {
  for (const Op& op : ops) {
    Result<sql::Statement> stmt =
        cache_ != nullptr ? cache_->Parse(op.sql, epoch)
                          : sql::Parser::Parse(op.sql);
    OPDELTA_RETURN_IF_ERROR(stmt.status());
  }
  return Status::OK();
}
)");
  EXPECT_TRUE(guarded.clean());

  // One-shot parses outside any loop stay legal.
  LintReport oneshot = LintOne("src/warehouse/apply.cc", R"(
Status One(const std::string& sql) {
  Result<sql::Statement> stmt = sql::Parser::Parse(sql);
  return stmt.status();
}
)");
  EXPECT_TRUE(oneshot.clean());

  // The parser and cache own the raw calls.
  LintReport sql_layer = LintOne("src/sql/statement_cache.cc",
                                 kR6ParseInLoop);
  EXPECT_TRUE(sql_layer.clean());
}

TEST(LintR6Test, FlagsAdHocSchemaMapAtDecodeSite) {
  LintReport report = LintOne("src/warehouse/decode.cc", R"(
Status Decode(engine::Database* db, const std::string& body) {
  catalog::SchemaMap schemas;
  std::vector<extract::OpDeltaTxn> txns;
  return extract::ParseOpDeltaLog(body, schemas, &txns);
}
)");
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, RuleId::kR6SchemaMapHygiene);
  EXPECT_NE(report.findings[0].message.find("SchemaMapAt"),
            std::string::npos);
}

TEST(LintR6Test, SuppressedAndBaselined) {
  LintReport report = LintOne(
      "src/warehouse/apply.cc",
      "void F(const std::vector<Op>& ops) {\n"
      "  for (const Op& op : ops) {\n"
      "    auto s = sql::Parser::Parse(op.sql);  // NOLINT(opdelta-R6: x)\n"
      "    (void)s;\n"
      "  }\n"
      "}\n");
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.suppressed.size(), 1u);
  ExpectBaselineable("src/warehouse/apply.cc", kR6ParseInLoop);
}

// --------------------------------------------------------------------- R7

constexpr char kR7RankInversion[] = R"(
class A {
 public:
  void HighThenLow() {
    std::lock_guard<common::OrderedMutex> g1(high_);
    std::lock_guard<common::OrderedMutex> g2(low_);
  }
 private:
  common::OrderedMutex low_{OPDELTA_LOCK_RANK(fix_low, 10)};
  common::OrderedMutex high_{OPDELTA_LOCK_RANK(fix_high, 20)};
};
)";

TEST(LintR7Test, FlagsDeclaredRankInversion) {
  LintReport report = LintOne("src/a.cc", kR7RankInversion);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, RuleId::kR7LockOrder);
  EXPECT_NE(report.findings[0].message.find("rank inversion"),
            std::string::npos);
  EXPECT_NE(report.findings[0].message.find("fix_low"), std::string::npos);
  EXPECT_NE(report.findings[0].message.find("fix_high"), std::string::npos);
  EXPECT_EQ(report.findings[0].line, 6u);
}

TEST(LintR7Test, NegativeWhenAcquiredInRankOrder) {
  EXPECT_TRUE(LintOne("src/a.cc", R"(
class A {
 public:
  void LowThenHigh() {
    std::lock_guard<common::OrderedMutex> g1(low_);
    std::lock_guard<common::OrderedMutex> g2(high_);
  }
 private:
  common::OrderedMutex low_{OPDELTA_LOCK_RANK(fix_low, 10)};
  common::OrderedMutex high_{OPDELTA_LOCK_RANK(fix_high, 20)};
};
)")
                  .clean());
}

TEST(LintR7Test, FlagsSameRankCycleWithWitnessPath) {
  // Equal ranks are legal per acquisition (same-class instances), so only
  // the cycle check can catch an ABBA order between two lock classes that
  // share a rank. The message must carry each edge's file:line witness.
  LintReport report = LintOne("src/a.cc", R"(
class A {
 public:
  void Ab() {
    std::lock_guard<common::OrderedMutex> g1(a_);
    std::lock_guard<common::OrderedMutex> g2(b_);
  }
  void Ba() {
    std::lock_guard<common::OrderedMutex> g1(b_);
    std::lock_guard<common::OrderedMutex> g2(a_);
  }
 private:
  common::OrderedMutex a_{OPDELTA_LOCK_RANK(fix_a, 10)};
  common::OrderedMutex b_{OPDELTA_LOCK_RANK(fix_b, 10)};
};
)");
  ASSERT_EQ(report.findings.size(), 1u);
  const std::string& msg = report.findings[0].message;
  EXPECT_EQ(report.findings[0].rule, RuleId::kR7LockOrder);
  EXPECT_NE(msg.find("lock-order cycle"), std::string::npos);
  EXPECT_NE(msg.find("fix_a -> fix_b (src/a.cc:"), std::string::npos);
  EXPECT_NE(msg.find("fix_b -> fix_a (src/a.cc:"), std::string::npos);
}

TEST(LintR7Test, SeesAcquisitionsThroughOneCallLevelAcrossFiles) {
  // caller.cc holds caller_mu (rank 20) across a call into Callee, whose
  // method acquires callee_mu (rank 10) — an inversion no single-file scan
  // can see. The callee lives in a different translation unit.
  const std::string callee = R"(
class Callee {
 public:
  void Locked() {
    std::lock_guard<common::OrderedMutex> g(mu_);
  }
 private:
  common::OrderedMutex mu_{OPDELTA_LOCK_RANK(callee_mu, 10)};
};
)";
  const std::string caller = R"(
class Caller {
 public:
  void Go() {
    std::lock_guard<common::OrderedMutex> g(mu_);
    callee_.Locked();
  }
 private:
  Callee callee_;
  common::OrderedMutex mu_{OPDELTA_LOCK_RANK(caller_mu, 20)};
};
)";
  LintReport report =
      RunLint({{"src/callee.h", callee}, {"src/caller.cc", caller}}, {});
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, RuleId::kR7LockOrder);
  EXPECT_NE(report.findings[0].message.find("callee_mu"), std::string::npos);
  EXPECT_NE(report.findings[0].message.find("caller_mu"), std::string::npos);
}

TEST(LintR7Test, LambdaBodiesDoNotInheritHeldLocks) {
  // A deferred lambda (thread body, stored callback) runs on its own
  // stack: locks held where it is *defined* are not held where it runs.
  EXPECT_TRUE(LintOne("src/a.cc", R"(
class A {
 public:
  void Start() {
    std::lock_guard<common::OrderedMutex> g(high_);
    worker_ = std::thread([this] {
      std::lock_guard<common::OrderedMutex> g2(low_);
    });
  }
 private:
  common::OrderedMutex low_{OPDELTA_LOCK_RANK(fix_low, 10)};
  common::OrderedMutex high_{OPDELTA_LOCK_RANK(fix_high, 20)};
  std::thread worker_;
};
)")
                  .clean());
}

TEST(LintR7Test, SuppressedAndBaselined) {
  LintReport report = LintOne("src/a.cc", R"(
class A {
 public:
  void HighThenLow() {
    std::lock_guard<common::OrderedMutex> g1(high_);
    std::lock_guard<common::OrderedMutex> g2(low_);  // NOLINT(opdelta-R7: deliberate inversion fixture)
  }
 private:
  common::OrderedMutex low_{OPDELTA_LOCK_RANK(fix_low, 10)};
  common::OrderedMutex high_{OPDELTA_LOCK_RANK(fix_high, 20)};
};
)");
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.suppressed.size(), 1u);
  ExpectBaselineable("src/a.cc", kR7RankInversion);
}

// --------------------------------------------------------------------- R8

constexpr char kR8BlockingIo[] = R"(
class Store {
 public:
  Status Save() {
    std::lock_guard<common::OrderedMutex> g(mu_);
    return file_->Sync();
  }
 private:
  WritableFile* file_;
  common::OrderedMutex mu_{OPDELTA_LOCK_RANK(store_mu, 10)};
};
)";

TEST(LintR8Test, FlagsBlockingIoUnderLock) {
  LintReport report = LintOne("src/a.cc", kR8BlockingIo);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, RuleId::kR8BlockingUnderLock);
  EXPECT_NE(report.findings[0].message.find("potentially blocking"),
            std::string::npos);
  EXPECT_NE(report.findings[0].message.find("store_mu"), std::string::npos);
}

TEST(LintR8Test, NegativeWhenIoIsOutsideTheCriticalSection) {
  EXPECT_TRUE(LintOne("src/a.cc", R"(
class Store {
 public:
  Status Save() {
    {
      std::lock_guard<common::OrderedMutex> g(mu_);
      dirty_ = false;
    }
    return file_->Sync();
  }
 private:
  WritableFile* file_;
  bool dirty_ = false;
  common::OrderedMutex mu_{OPDELTA_LOCK_RANK(store_mu, 10)};
};
)")
                  .clean());
}

TEST(LintR8Test, FlagsCvWaitWhileHoldingASecondLock) {
  LintReport report = LintOne("src/a.cc", R"(
class Waiter {
 public:
  void Block() {
    std::lock_guard<common::OrderedMutex> g(a_);
    std::unique_lock<common::OrderedMutex> lk(b_);
    cv_.wait(lk, [this] { return ready_; });
  }
 private:
  common::OrderedMutex a_{OPDELTA_LOCK_RANK(wait_a, 10)};
  common::OrderedMutex b_{OPDELTA_LOCK_RANK(wait_b, 20)};
  std::condition_variable_any cv_;
  bool ready_ = false;
};
)");
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, RuleId::kR8BlockingUnderLock);
  EXPECT_NE(report.findings[0].message.find("wait_a"), std::string::npos);
}

TEST(LintR8Test, NegativeForCvWaitHoldingOnlyItsOwnMutex) {
  EXPECT_TRUE(LintOne("src/a.cc", R"(
class Waiter {
 public:
  void Block() {
    std::unique_lock<common::OrderedMutex> lk(b_);
    cv_.wait(lk, [this] { return ready_; });
  }
 private:
  common::OrderedMutex b_{OPDELTA_LOCK_RANK(wait_b, 20)};
  std::condition_variable_any cv_;
  bool ready_ = false;
};
)")
                  .clean());
}

TEST(LintR8Test, FlagsStoredCallbackInvokedUnderLock) {
  LintReport report = LintOne("src/a.cc", R"(
class Hub {
 public:
  void Fire() {
    std::lock_guard<common::OrderedMutex> g(mu_);
    cb_();
  }
 private:
  common::OrderedMutex mu_{OPDELTA_LOCK_RANK(hub_mu, 10)};
  std::function<void()> cb_;
};
)");
  const std::vector<RuleId> ids = RuleIds(report.findings);
  EXPECT_NE(std::find(ids.begin(), ids.end(), RuleId::kR8BlockingUnderLock),
            ids.end());
}

TEST(LintR8Test, SuppressedAndBaselined) {
  LintReport report = LintOne("src/a.cc", R"(
class Store {
 public:
  Status Save() {
    std::lock_guard<common::OrderedMutex> g(mu_);
    return file_->Sync();  // NOLINT(opdelta-R8: group-commit fixture)
  }
 private:
  WritableFile* file_;
  common::OrderedMutex mu_{OPDELTA_LOCK_RANK(store_mu, 10)};
};
)");
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.suppressed.size(), 1u);
  ExpectBaselineable("src/a.cc", kR8BlockingIo);
}

// --------------------------------------------------------------------- R9

constexpr char kR9Unranked[] = R"(
class A {
 private:
  common::OrderedMutex mu_;
};
)";

TEST(LintR9Test, FlagsUnrankedOrderedMutex) {
  LintReport report = LintOne("src/a.cc", kR9Unranked);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, RuleId::kR9UnrankedMutex);
  EXPECT_NE(report.findings[0].message.find("OPDELTA_LOCK_RANK"),
            std::string::npos);
}

TEST(LintR9Test, FlagsBareStdMutexInSrc) {
  LintReport report = LintOne("src/a.cc", R"(
class A {
 private:
  std::mutex m_;
  std::shared_mutex sm_;
};
)");
  EXPECT_EQ(RuleIds(report.findings),
            (std::vector<RuleId>{RuleId::kR9UnrankedMutex,
                                 RuleId::kR9UnrankedMutex}));
  EXPECT_NE(report.findings[0].message.find("bypasses the lock hierarchy"),
            std::string::npos);
}

TEST(LintR9Test, NegativeForRankedDeclarationsAndOutsideSrc) {
  EXPECT_TRUE(LintOne("src/a.cc", R"(
class A {
 private:
  common::OrderedMutex mu_{OPDELTA_LOCK_RANK(a_mu, 10)};
  common::OrderedSharedMutex latch_{OPDELTA_LOCK_RANK(a_latch, 20)};
};
)")
                  .clean());
  // Tests and tools may use bare mutexes (deliberate-inversion fixtures,
  // the linter's own scaffolding).
  EXPECT_TRUE(LintOne("tools/x/y.cc", kR9Unranked).clean());
}

TEST(LintR9Test, SuppressedAndBaselined) {
  LintReport report = LintOne("src/a.cc", R"(
class A {
 private:
  common::OrderedMutex mu_;  // NOLINT(opdelta-R9: staged migration fixture)
};
)");
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.suppressed.size(), 1u);
  ExpectBaselineable("src/a.cc", kR9Unranked);
}

// -------------------------------------------- lexer: directive literals

TEST(LintLexerTest, MultiLineRawStringInDirectiveDoesNotLeakTokens) {
  // Before the fix the directive scan stopped at the first newline and the
  // raw string's remaining lines lexed as code: `new`, `delete`, and
  // `::open` inside SQL text produced phantom R2/R4 findings.
  FileUnit unit = Lex("src/x.cc", R"__(#define QUERY R"(first
second new delete ::open
)"
int after = 1;
)__");
  for (const Token& t : unit.tokens) {
    EXPECT_FALSE(t.IsIdent("new"));
    EXPECT_FALSE(t.IsIdent("delete"));
    EXPECT_FALSE(t.IsIdent("open"));
    EXPECT_FALSE(t.IsIdent("second"));
  }
  bool saw_after = false;
  for (const Token& t : unit.tokens) {
    if (t.IsIdent("after")) {
      saw_after = true;
      EXPECT_EQ(t.line, 4u);  // line counting survived the raw string
    }
  }
  EXPECT_TRUE(saw_after);
}

TEST(LintLexerTest, StringInDirectiveIsNotACommentStart) {
  // `//` inside a quoted directive string ("http://...") must not start a
  // comment (it used to swallow the rest of the line into the comment
  // list, where NOLINT scanning could misread it).
  FileUnit unit = Lex("src/x.cc",
                      "#define URL \"http://example.com/x\"\n"
                      "#define MSG \"say \\\"hi\\\" // quoted\"\n"
                      "int y = 2;\n");
  EXPECT_TRUE(unit.comments.empty());
  bool saw_y = false;
  for (const Token& t : unit.tokens) {
    EXPECT_FALSE(t.IsIdent("example"));
    EXPECT_FALSE(t.IsIdent("quoted"));
    if (t.IsIdent("y")) saw_y = true;
  }
  EXPECT_TRUE(saw_y);
}

// ----------------------------------------------------------- suppressions

TEST(LintSuppressionTest, NolintNextLineAndWrongRule) {
  EXPECT_TRUE(LintOne("src/a.cc", R"(
Status DoThing();
void Caller() {
  // NOLINTNEXTLINE(opdelta-R1: fixture)
  DoThing();
}
)")
                  .clean());

  // A NOLINT naming a different rule does not silence this finding.
  LintReport report = LintOne("src/a.cc", R"(
Status DoThing();
void Caller() {
  DoThing();  // NOLINT(opdelta-R2: wrong rule on purpose)
}
)");
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_TRUE(report.suppressed.empty());
}

TEST(LintSuppressionTest, ReasonlessNolintIsItselfAFinding) {
  // The suppression still works (the R1 finding is silenced), but the
  // reasonless NOLINT surfaces as an R5 hygiene finding in its place.
  LintReport report = LintOne("src/a.cc", R"(
Status DoThing();
void Caller() {
  DoThing();  // NOLINT(opdelta-R1)
}
)");
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, RuleId::kR5Hygiene);
  EXPECT_NE(report.findings[0].message.find("without a reason"),
            std::string::npos);
  EXPECT_EQ(report.suppressed.size(), 1u);
}

TEST(LintSuppressionTest, WhitespaceOnlyReasonCountsAsMissing) {
  LintReport report = LintOne("src/a.cc", R"(
Status DoThing();
void Caller() {
  DoThing();  // NOLINT(opdelta-R1:   )
}
)");
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, RuleId::kR5Hygiene);
}

TEST(LintSuppressionTest, ReasonlessNolintCannotSilenceOrBaselineItself) {
  // Naming R5 in the reasonless NOLINT must not suppress the malformed-
  // suppression finding, and feeding it back as a baseline must not absorb
  // it either: the debt always stays visible until a reason is written.
  constexpr char kSelf[] = R"(
int x;  // NOLINT(opdelta-R5)
)";
  LintReport report = LintOne("src/a.cc", kSelf);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, RuleId::kR5Hygiene);

  LintReport rerun =
      LintOne("src/a.cc", kSelf, FormatBaseline(report.findings));
  ASSERT_EQ(rerun.findings.size(), 1u);
  EXPECT_EQ(rerun.findings[0].rule, RuleId::kR5Hygiene);
}

TEST(LintSuppressionTest, MultiRuleNolintWithReasonSuppressesAll) {
  LintReport report = LintOne("src/a.cc", R"(
Status DoThing();
void Caller() {
  DoThing();  // NOLINT(opdelta-R1, opdelta-R2: fixture covers both)
}
)");
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.suppressed.size(), 1u);
}

// --------------------------------------------------------------- baseline

TEST(LintBaselineTest, StaleEntriesAreReported) {
  const std::string baseline =
      "# comment line\n"
      "opdelta-R1|src/gone.cc|Vanished();\n";
  LintReport report = LintOne("src/a.cc", "int x;\n", baseline);
  EXPECT_TRUE(report.clean());
  ASSERT_EQ(report.stale_baseline_entries.size(), 1u);
  EXPECT_NE(report.stale_baseline_entries[0].find("Vanished"),
            std::string::npos);
}

TEST(LintBaselineTest, EntriesSurviveReformatting) {
  LintReport first = LintOne("src/a.cc", kR1Positive);
  ASSERT_EQ(first.findings.size(), 1u);
  const std::string baseline = FormatBaseline(first.findings);
  // Reindenting must not invalidate the entry (leading whitespace is
  // trimmed before snippets are compared).
  LintReport second = LintOne("src/a.cc", R"(
Status DoThing();
void Caller() {
        DoThing();
}
)",
                              baseline);
  EXPECT_TRUE(second.clean());
  EXPECT_EQ(second.baselined.size(), 1u);
}

}  // namespace
}  // namespace opdelta::lint
