#include <gtest/gtest.h>

#include "middleware/message_bus.h"
#include "middleware/parts_service.h"
#include "warehouse/integrator.h"
#include "workload/workload.h"
#include "tests/test_util.h"

namespace opdelta::middleware {
namespace {

using catalog::Value;
using opdelta::testing::CountRows;
using opdelta::testing::OpenDb;
using opdelta::testing::TablesEqual;
using opdelta::testing::TempDir;

MethodCall Add(int64_t id, const char* status) {
  return MethodCall{"parts",
                    "add",
                    {Value::Int64(id), Value::String(status),
                     Value::String("payload")}};
}

MethodCall Revise(int64_t lo, int64_t hi, const char* status) {
  return MethodCall{
      "parts", "revise",
      {Value::Int64(lo), Value::Int64(hi), Value::String(status)}};
}

MethodCall Retire(int64_t lo, int64_t hi) {
  return MethodCall{"parts", "retire", {Value::Int64(lo), Value::Int64(hi)}};
}

TEST(MethodCallTest, WireFormRoundTrips) {
  MethodCall call = Revise(0, 100, "it's hot");
  const std::string wire = call.ToString();
  EXPECT_EQ(wire, "parts.revise(0, 100, 'it''s hot')");
  Result<MethodCall> parsed = MethodCall::Parse(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->service, "parts");
  EXPECT_EQ(parsed->method, "revise");
  ASSERT_EQ(parsed->args.size(), 3u);
  EXPECT_EQ(parsed->args[2].AsString(), "it's hot");
}

TEST(MethodCallTest, ParseRejectsGarbage) {
  EXPECT_FALSE(MethodCall::Parse("nodot(1)").ok());
  EXPECT_FALSE(MethodCall::Parse("a.b(unterminated").ok());
  EXPECT_FALSE(MethodCall::Parse("a.b(not a literal)").ok());
}

TEST(MappingTest, BusinessMethodsMapToDml) {
  Result<sql::Statement> ins = MapPartsCallToStatement(Add(7, "new"), "parts");
  ASSERT_TRUE(ins.ok());
  EXPECT_EQ(ins->ToSql(),
            "INSERT INTO parts VALUES (7, 'new', 'payload', NULL)");

  Result<sql::Statement> upd =
      MapPartsCallToStatement(Revise(5, 10, "hot"), "parts");
  ASSERT_TRUE(upd.ok());
  EXPECT_EQ(upd->ToSql(),
            "UPDATE parts SET status = 'hot' WHERE id >= 5 AND id < 10");

  Result<sql::Statement> del = MapPartsCallToStatement(Retire(1, 3), "parts");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->ToSql(), "DELETE FROM parts WHERE id >= 1 AND id < 3");

  EXPECT_FALSE(
      MapPartsCallToStatement(MethodCall{"parts", "frobnicate", {}}, "t")
          .ok());
  EXPECT_FALSE(MapPartsCallToStatement(MethodCall{"parts", "add", {}}, "t")
                   .ok());
}

class BusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine::DatabaseOptions options;
    options.auto_timestamp = false;
    replica_a_ = OpenDb(dir_, "a", options);
    replica_b_ = OpenDb(dir_, "b", options);
    OPDELTA_ASSERT_OK(wl_.CreateTable(replica_a_.get(), "parts"));
    OPDELTA_ASSERT_OK(wl_.CreateTable(replica_b_.get(), "parts"));
    OPDELTA_ASSERT_OK(bus_.RegisterService(std::make_unique<PartsService>(
        "parts",
        std::vector<engine::Database*>{replica_a_.get(), replica_b_.get()},
        "parts")));
    tap_ = std::make_shared<RecordingTap>();
    bus_.AddTap(tap_);
  }

  TempDir dir_;
  workload::PartsWorkload wl_;
  std::unique_ptr<engine::Database> replica_a_, replica_b_;
  MessageBus bus_;
  std::shared_ptr<RecordingTap> tap_;
};

TEST_F(BusTest, DispatchAppliesToEveryReplica) {
  OPDELTA_ASSERT_OK(bus_.Dispatch(Add(1, "new")));
  OPDELTA_ASSERT_OK(bus_.Dispatch(Add(2, "new")));
  OPDELTA_ASSERT_OK(bus_.Dispatch(Revise(1, 2, "hot")));
  EXPECT_EQ(CountRows(replica_a_.get(), "parts"), 2u);
  EXPECT_TRUE(TablesEqual(replica_a_.get(), "parts",
                          replica_b_.get(), "parts"));
  EXPECT_EQ(bus_.calls_dispatched(), 3u);
}

TEST_F(BusTest, TapSeesEachBusinessCallExactlyOnce) {
  // The §2.4 point: although the data lives twice (replicas), the channel
  // tap observes ONE delta per business transaction — no reconciliation.
  OPDELTA_ASSERT_OK(bus_.Dispatch(Add(1, "new")));
  OPDELTA_ASSERT_OK(bus_.Dispatch(Retire(0, 5)));
  ASSERT_EQ(tap_->journal().size(), 2u);
  EXPECT_EQ(tap_->journal()[0].method, "add");
  EXPECT_EQ(tap_->journal()[1].method, "retire");
}

TEST_F(BusTest, UnknownServiceRejectedAndUntapped) {
  Status st = bus_.Dispatch(MethodCall{"ghost", "add", {}});
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_TRUE(tap_->journal().empty());
}

TEST_F(BusTest, FailedInvocationDoesNotFireTaps) {
  // revise with bad arity fails inside the service; the tap must not see
  // a delta for a business transaction that did not happen.
  Status st = bus_.Dispatch(MethodCall{"parts", "revise", {Value::Int64(1)}});
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(tap_->journal().empty());
}

TEST_F(BusTest, TappedCallsIntegrateIntoWarehouse) {
  // End-to-end for the middleware capture level: method-call deltas map
  // through the "customized mapping mechanism" and replay at a warehouse.
  OPDELTA_ASSERT_OK(bus_.Dispatch(Add(1, "new")));
  OPDELTA_ASSERT_OK(bus_.Dispatch(Add(2, "new")));
  OPDELTA_ASSERT_OK(bus_.Dispatch(Add(3, "old")));
  OPDELTA_ASSERT_OK(bus_.Dispatch(Revise(1, 3, "hot")));
  OPDELTA_ASSERT_OK(bus_.Dispatch(Retire(3, 4)));

  engine::DatabaseOptions options;
  options.auto_timestamp = false;
  auto wh = OpenDb(dir_, "wh", options);
  OPDELTA_ASSERT_OK(wl_.CreateTable(wh.get(), "parts"));

  sql::Executor exec(wh.get());
  for (const MethodCall& call : tap_->journal()) {
    // Ship the wire form, parse it back, map, execute.
    Result<MethodCall> shipped = MethodCall::Parse(call.ToString());
    ASSERT_TRUE(shipped.ok());
    Result<sql::Statement> stmt =
        MapPartsCallToStatement(*shipped, "parts");
    ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
    OPDELTA_ASSERT_OK(exec.ExecuteSql(stmt->ToSql()).status());
  }
  EXPECT_TRUE(TablesEqual(replica_a_.get(), "parts", wh.get(), "parts"));
}

}  // namespace
}  // namespace opdelta::middleware
