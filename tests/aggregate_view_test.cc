#include <gtest/gtest.h>

#include "common/random.h"
#include "extract/op_delta.h"
#include "sql/executor.h"
#include "warehouse/aggregate_view.h"
#include "workload/workload.h"
#include "tests/test_util.h"

namespace opdelta::warehouse {
namespace {

using catalog::Column;
using catalog::Row;
using catalog::Value;
using catalog::ValueType;
using engine::CompareOp;
using engine::Predicate;
using extract::OpDeltaTxn;
using opdelta::testing::OpenDb;
using opdelta::testing::TempDir;

/// Sales: sale_id, region, amount, status.
catalog::Schema SalesSchema() {
  return catalog::Schema({Column{"sale_id", ValueType::kInt64},
                          Column{"region", ValueType::kString},
                          Column{"amount", ValueType::kInt64},
                          Column{"status", ValueType::kString}});
}

class AggViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine::DatabaseOptions options;
    options.auto_timestamp = false;
    src_ = OpenDb(dir_, "src", options);
    wh_ = OpenDb(dir_, "wh", options);
    OPDELTA_ASSERT_OK(src_->CreateTable("sales", SalesSchema()));

    def_.view_table = "sales_by_region";
    def_.source_table = "sales";
    def_.group_by_column = "region";
    def_.agg_column = "amount";
    def_.selection =
        Predicate::Where("status", CompareOp::kEq, Value::String("final"));

    Result<std::unique_ptr<AggViewMaintainer>> am =
        AggViewMaintainer::CreateTable(wh_.get(), def_, SalesSchema());
    ASSERT_TRUE(am.ok()) << am.status().ToString();
    maintainer_ = std::move(*am);

    exec_ = std::make_unique<sql::Executor>(src_.get());
    Result<std::unique_ptr<extract::OpDeltaFileSink>> sink =
        extract::OpDeltaFileSink::Create(dir_.Sub("ops.log"));
    ASSERT_TRUE(sink.ok());
    extract::OpDeltaCapture::Options copt;
    copt.hybrid_before_images = true;
    capture_ = std::make_unique<extract::OpDeltaCapture>(
        exec_.get(), std::shared_ptr<extract::OpDeltaSink>(std::move(*sink)),
        copt);
  }

  sql::Statement InsertSale(int64_t id, const std::string& region,
                            int64_t amount, const std::string& status) {
    sql::InsertStmt s;
    s.table = "sales";
    s.rows.push_back({Value::Int64(id), Value::String(region),
                      Value::Int64(amount), Value::String(status)});
    return sql::Statement(std::move(s));
  }

  Status RunAndMaintain(const std::vector<sql::Statement>& stmts) {
    OPDELTA_RETURN_IF_ERROR(capture_->RunTransaction(stmts).status());
    std::vector<OpDeltaTxn> txns;
    OPDELTA_RETURN_IF_ERROR(extract::OpDeltaLogReader::ReadFile(
        dir_.Sub("ops.log"), SalesSchema(), &txns));
    return maintainer_->ApplyTxn(txns.back());
  }

  ::testing::AssertionResult ViewMatchesRecompute() {
    Result<std::vector<Row>> expected =
        AggViewMaintainer::ComputeFromSource(src_.get(), def_);
    if (!expected.ok()) {
      return ::testing::AssertionFailure() << expected.status().ToString();
    }
    Result<std::vector<Row>> actual = maintainer_->Materialized();
    if (!actual.ok()) {
      return ::testing::AssertionFailure() << actual.status().ToString();
    }
    if (expected->size() != actual->size()) {
      return ::testing::AssertionFailure()
             << "view " << actual->size() << " groups vs recompute "
             << expected->size();
    }
    for (size_t i = 0; i < expected->size(); ++i) {
      if (catalog::CompareRows((*expected)[i], (*actual)[i]) != 0) {
        return ::testing::AssertionFailure()
               << "group " << (*expected)[i][0].ToSqlLiteral()
               << " differs: view (" << (*actual)[i][1].AsInt64() << ","
               << (*actual)[i][2].AsInt64() << ") vs ("
               << (*expected)[i][1].AsInt64() << ","
               << (*expected)[i][2].AsInt64() << ")";
      }
    }
    return ::testing::AssertionSuccess();
  }

  TempDir dir_;
  std::unique_ptr<engine::Database> src_, wh_;
  AggViewDef def_;
  std::unique_ptr<AggViewMaintainer> maintainer_;
  std::unique_ptr<sql::Executor> exec_;
  std::unique_ptr<extract::OpDeltaCapture> capture_;
};

TEST_F(AggViewTest, ViewSchemaShape) {
  engine::Table* vt = wh_->GetTable("sales_by_region");
  ASSERT_NE(vt, nullptr);
  EXPECT_EQ(vt->schema().column(0).name, "region");
  EXPECT_EQ(vt->schema().column(1).name, "row_count");
  EXPECT_EQ(vt->schema().column(2).name, "sum_amount");
}

TEST_F(AggViewTest, InsertsAccumulate) {
  OPDELTA_ASSERT_OK(RunAndMaintain({InsertSale(1, "west", 100, "final"),
                                    InsertSale(2, "west", 50, "final"),
                                    InsertSale(3, "east", 70, "final"),
                                    InsertSale(4, "west", 999, "draft")}));
  Result<std::vector<Row>> rows = maintainer_->Materialized();
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][0].AsString(), "east");
  EXPECT_EQ((*rows)[0][1].AsInt64(), 1);
  EXPECT_EQ((*rows)[0][2].AsInt64(), 70);
  EXPECT_EQ((*rows)[1][0].AsString(), "west");
  EXPECT_EQ((*rows)[1][1].AsInt64(), 2);     // draft row filtered
  EXPECT_EQ((*rows)[1][2].AsInt64(), 150);
  EXPECT_TRUE(ViewMatchesRecompute());
}

TEST_F(AggViewTest, DeleteSubtractsAndRemovesEmptyGroups) {
  OPDELTA_ASSERT_OK(RunAndMaintain({InsertSale(1, "west", 100, "final"),
                                    InsertSale(2, "east", 70, "final")}));
  sql::DeleteStmt d;
  d.table = "sales";
  d.where = Predicate::Where("sale_id", CompareOp::kEq, Value::Int64(2));
  OPDELTA_ASSERT_OK(RunAndMaintain({sql::Statement(d)}));
  Result<std::vector<Row>> rows = maintainer_->Materialized();
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);  // east group vanished at count 0
  EXPECT_EQ((*rows)[0][0].AsString(), "west");
  EXPECT_TRUE(ViewMatchesRecompute());
}

TEST_F(AggViewTest, UpdateMovesContributionAcrossGroups) {
  OPDELTA_ASSERT_OK(RunAndMaintain({InsertSale(1, "west", 100, "final")}));
  sql::UpdateStmt u;
  u.table = "sales";
  u.sets = {engine::Assignment{"region", Value::String("east")}};
  u.where = Predicate::Where("sale_id", CompareOp::kEq, Value::Int64(1));
  OPDELTA_ASSERT_OK(RunAndMaintain({sql::Statement(u)}));
  Result<std::vector<Row>> rows = maintainer_->Materialized();
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0].AsString(), "east");
  EXPECT_EQ((*rows)[0][2].AsInt64(), 100);
  EXPECT_TRUE(ViewMatchesRecompute());
}

TEST_F(AggViewTest, UpdateChangesAmountAndSelection) {
  OPDELTA_ASSERT_OK(RunAndMaintain({InsertSale(1, "west", 100, "final"),
                                    InsertSale(2, "west", 40, "final")}));
  // Change amount (same group, sum shifts).
  sql::UpdateStmt u1;
  u1.table = "sales";
  u1.sets = {engine::Assignment{"amount", Value::Int64(250)}};
  u1.where = Predicate::Where("sale_id", CompareOp::kEq, Value::Int64(1));
  OPDELTA_ASSERT_OK(RunAndMaintain({sql::Statement(u1)}));
  EXPECT_TRUE(ViewMatchesRecompute());

  // Void a sale (leaves the selection).
  sql::UpdateStmt u2;
  u2.table = "sales";
  u2.sets = {engine::Assignment{"status", Value::String("void")}};
  u2.where = Predicate::Where("sale_id", CompareOp::kEq, Value::Int64(2));
  OPDELTA_ASSERT_OK(RunAndMaintain({sql::Statement(u2)}));
  Result<std::vector<Row>> rows = maintainer_->Materialized();
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][1].AsInt64(), 1);
  EXPECT_EQ((*rows)[0][2].AsInt64(), 250);
  EXPECT_TRUE(ViewMatchesRecompute());
}

TEST_F(AggViewTest, RequiresHybridCaptureForUpdatesAndDeletes) {
  Result<std::unique_ptr<extract::OpDeltaFileSink>> sink =
      extract::OpDeltaFileSink::Create(dir_.Sub("plain.log"));
  ASSERT_TRUE(sink.ok());
  extract::OpDeltaCapture plain(
      exec_.get(), std::shared_ptr<extract::OpDeltaSink>(std::move(*sink)),
      extract::OpDeltaCapture::Options());
  OPDELTA_ASSERT_OK(
      plain.RunTransaction({InsertSale(1, "west", 10, "final")}).status());
  sql::DeleteStmt d;
  d.table = "sales";
  d.where = Predicate::True();
  OPDELTA_ASSERT_OK(plain.RunTransaction({sql::Statement(d)}).status());
  std::vector<OpDeltaTxn> txns;
  OPDELTA_ASSERT_OK(extract::OpDeltaLogReader::ReadFile(
      dir_.Sub("plain.log"), SalesSchema(), &txns));
  OPDELTA_ASSERT_OK(maintainer_->ApplyTxn(txns[0]));
  EXPECT_EQ(maintainer_->ApplyTxn(txns[1]).code(),
            StatusCode::kNotSupported);
}

TEST_F(AggViewTest, RandomizedMaintenanceMatchesRecompute) {
  Rng rng(456);
  const char* regions[] = {"west", "east", "north", "south"};
  const char* statuses[] = {"final", "draft", "void"};
  int64_t next_id = 0;
  for (int step = 0; step < 30; ++step) {
    std::vector<sql::Statement> stmts;
    switch (rng.Uniform(3)) {
      case 0: {
        const size_t n = 1 + rng.Uniform(6);
        for (size_t i = 0; i < n; ++i) {
          stmts.push_back(InsertSale(next_id++, regions[rng.Uniform(4)],
                                     static_cast<int64_t>(rng.Uniform(1000)),
                                     statuses[rng.Uniform(3)]));
        }
        break;
      }
      case 1: {
        sql::UpdateStmt u;
        u.table = "sales";
        switch (rng.Uniform(3)) {
          case 0:
            u.sets = {engine::Assignment{
                "region", Value::String(regions[rng.Uniform(4)])}};
            break;
          case 1:
            u.sets = {engine::Assignment{
                "amount",
                Value::Int64(static_cast<int64_t>(rng.Uniform(1000)))}};
            break;
          default:
            u.sets = {engine::Assignment{
                "status", Value::String(statuses[rng.Uniform(3)])}};
            break;
        }
        int64_t lo = rng.Uniform(std::max<int64_t>(next_id, 1));
        u.where = Predicate::Where("sale_id", CompareOp::kGe,
                                   Value::Int64(lo))
                      .And("sale_id", CompareOp::kLt,
                           Value::Int64(lo + 1 + rng.Uniform(8)));
        stmts.push_back(sql::Statement(std::move(u)));
        break;
      }
      default: {
        sql::DeleteStmt d;
        d.table = "sales";
        int64_t lo = rng.Uniform(std::max<int64_t>(next_id, 1));
        d.where = Predicate::Where("sale_id", CompareOp::kGe,
                                   Value::Int64(lo))
                      .And("sale_id", CompareOp::kLt,
                           Value::Int64(lo + 1 + rng.Uniform(5)));
        stmts.push_back(sql::Statement(std::move(d)));
        break;
      }
    }
    OPDELTA_ASSERT_OK(RunAndMaintain(stmts));
    ASSERT_TRUE(ViewMatchesRecompute()) << "after step " << step;
  }
}

TEST(AggViewValidationTest, RejectsBadColumns) {
  TempDir dir;
  auto wh = OpenDb(dir, "wh");
  AggViewDef def;
  def.view_table = "v";
  def.source_table = "sales";
  def.group_by_column = "ghost";
  def.agg_column = "amount";
  EXPECT_FALSE(
      AggViewMaintainer::CreateTable(wh.get(), def, SalesSchema()).ok());

  def.group_by_column = "region";
  def.agg_column = "status";  // not int64
  EXPECT_FALSE(
      AggViewMaintainer::CreateTable(wh.get(), def, SalesSchema()).ok());
}

}  // namespace
}  // namespace opdelta::warehouse
