#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <iterator>
#include <set>
#include <thread>

#include "common/clock.h"
#include "common/coding.h"
#include "common/crc32.h"
#include "common/digest.h"
#include "common/env.h"
#include "common/random.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "tests/test_util.h"

namespace opdelta {
namespace {

using testing::TempDir;

// ----------------------------------------------------------------- Status

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status st = Status::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.message(), "missing thing");
  EXPECT_EQ(st.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, DistinctCodes) {
  EXPECT_TRUE(Status::Conflict("x").IsConflict());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_FALSE(Status::IOError("x").IsConflict());
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::Busy("nope"); };
  auto wrapper = [&]() -> Status {
    OPDELTA_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kBusy);
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);

  Result<int> err(Status::InvalidArgument("bad"));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto produce = []() -> Result<std::string> { return std::string("hi"); };
  auto consume = [&]() -> Result<size_t> {
    OPDELTA_ASSIGN_OR_RETURN(std::string s, produce());
    return s.size();
  };
  Result<size_t> r = consume();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2u);
}

// ------------------------------------------------------------------ Slice

TEST(SliceTest, BasicViews) {
  std::string s = "hello world";
  Slice slice(s);
  EXPECT_EQ(slice.size(), 11u);
  EXPECT_TRUE(slice.starts_with("hello"));
  slice.remove_prefix(6);
  EXPECT_EQ(slice.ToString(), "world");
}

TEST(SliceTest, Comparison) {
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);
  EXPECT_TRUE(Slice("x") == Slice("x"));
  EXPECT_TRUE(Slice("x") != Slice("y"));
}

// ----------------------------------------------------------------- Coding

TEST(CodingTest, FixedRoundTrip) {
  std::string buf;
  PutFixed16(&buf, 0xBEEF);
  PutFixed32(&buf, 0xDEADBEEF);
  PutFixed64(&buf, 0x0123456789ABCDEFull);
  Slice in(buf);
  uint16_t a;
  uint32_t b;
  uint64_t c;
  ASSERT_TRUE(GetFixed16(&in, &a));
  ASSERT_TRUE(GetFixed32(&in, &b));
  ASSERT_TRUE(GetFixed64(&in, &c));
  EXPECT_EQ(a, 0xBEEF);
  EXPECT_EQ(b, 0xDEADBEEFu);
  EXPECT_EQ(c, 0x0123456789ABCDEFull);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, VarintBoundaries) {
  const uint64_t cases[] = {0,       1,          127,        128,
                            16383,   16384,      (1u << 21) - 1,
                            1u << 21, 0xFFFFFFFFull, 1ull << 42,
                            ~0ull};
  for (uint64_t v : cases) {
    std::string buf;
    PutVarint64(&buf, v);
    Slice in(buf);
    uint64_t out = 0;
    ASSERT_TRUE(GetVarint64(&in, &out)) << v;
    EXPECT_EQ(out, v);
    EXPECT_TRUE(in.empty());
  }
}

TEST(CodingTest, Varint32TruncatedFails) {
  std::string buf;
  PutVarint32(&buf, 1u << 30);
  buf.resize(buf.size() - 1);
  Slice in(buf);
  uint32_t out;
  EXPECT_FALSE(GetVarint32(&in, &out));
}

TEST(CodingTest, ZigZagSigned) {
  const int64_t cases[] = {0, 1, -1, 63, -64, INT64_MAX, INT64_MIN, -123456789};
  for (int64_t v : cases) {
    std::string buf;
    PutVarint64Signed(&buf, v);
    Slice in(buf);
    int64_t out = 0;
    ASSERT_TRUE(GetVarint64Signed(&in, &out));
    EXPECT_EQ(out, v);
  }
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, Slice("alpha"));
  PutLengthPrefixed(&buf, Slice(""));
  PutLengthPrefixed(&buf, Slice(std::string(1000, 'x')));
  Slice in(buf);
  Slice a, b, c;
  ASSERT_TRUE(GetLengthPrefixed(&in, &a));
  ASSERT_TRUE(GetLengthPrefixed(&in, &b));
  ASSERT_TRUE(GetLengthPrefixed(&in, &c));
  EXPECT_EQ(a.ToString(), "alpha");
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(c.size(), 1000u);
}

// Property sweep: random varint round trips.
class CodingPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodingPropertyTest, RandomVarintRoundTrips) {
  Rng rng(GetParam());
  std::string buf;
  std::vector<uint64_t> values;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Next() >> (rng.Uniform(64));
    values.push_back(v);
    PutVarint64(&buf, v);
  }
  Slice in(buf);
  for (uint64_t expected : values) {
    uint64_t out = 0;
    ASSERT_TRUE(GetVarint64(&in, &out));
    EXPECT_EQ(out, expected);
  }
  EXPECT_TRUE(in.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodingPropertyTest,
                         ::testing::Values(1, 2, 3, 17, 99));

// -------------------------------------------------------------------- CRC

TEST(Crc32Test, KnownValues) {
  // CRC-32C of "123456789" is 0xE3069283.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
}

TEST(Crc32Test, ExtendMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= data.size(); split += 7) {
    uint32_t crc = Crc32c(data.data(), split);
    crc = Crc32cExtend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, Crc32c(data.data(), data.size()));
  }
}

TEST(Crc32Test, DetectsCorruption) {
  std::string data = "some payload";
  const uint32_t crc = Crc32c(data.data(), data.size());
  data[3] ^= 0x01;
  EXPECT_NE(Crc32c(data.data(), data.size()), crc);
}

// -------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    if (va != c.Next()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, NextStringAlphanumeric) {
  Rng rng(9);
  std::string s = rng.NextString(64);
  EXPECT_EQ(s.size(), 64u);
  for (char c : s) EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)));
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

// ------------------------------------------------------------------ Clock

TEST(ClockTest, RealClockAdvances) {
  RealClock* clock = RealClock::Default();
  Micros a = clock->NowMicros();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_GT(clock->NowMicros(), a);
}

TEST(ClockTest, SimulatedClockTicksAndAdvances) {
  SimulatedClock clock(1000, 1);
  EXPECT_EQ(clock.NowMicros(), 1000);
  EXPECT_EQ(clock.NowMicros(), 1001);  // auto tick
  clock.Advance(500);
  EXPECT_GE(clock.NowMicros(), 1500);
  clock.Set(42);
  EXPECT_EQ(clock.NowMicros(), 42);
}

TEST(ClockTest, StopwatchMeasures) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(sw.ElapsedMicros(), 4000);
}

// -------------------------------------------------------------------- Env

TEST(EnvTest, WriteReadRoundTrip) {
  TempDir dir;
  Env* env = Env::Default();
  const std::string path = dir.Sub("file.txt");
  OPDELTA_ASSERT_OK(env->WriteStringToFile(path, Slice("payload")));
  EXPECT_TRUE(env->FileExists(path));
  std::string data;
  OPDELTA_ASSERT_OK(env->ReadFileToString(path, &data));
  EXPECT_EQ(data, "payload");
  uint64_t size = 0;
  OPDELTA_ASSERT_OK(env->GetFileSize(path, &size));
  EXPECT_EQ(size, 7u);
}

TEST(EnvTest, AppendableFileAccumulates) {
  TempDir dir;
  Env* env = Env::Default();
  const std::string path = dir.Sub("log.txt");
  for (int i = 0; i < 3; ++i) {
    std::unique_ptr<WritableFile> f;
    OPDELTA_ASSERT_OK(env->NewAppendableFile(path, &f));
    OPDELTA_ASSERT_OK(f->Append(Slice("x")));
    OPDELTA_ASSERT_OK(f->Close());
  }
  std::string data;
  OPDELTA_ASSERT_OK(env->ReadFileToString(path, &data));
  EXPECT_EQ(data, "xxx");
}

TEST(EnvTest, RandomAccessReadAtOffset) {
  TempDir dir;
  Env* env = Env::Default();
  const std::string path = dir.Sub("ra.bin");
  OPDELTA_ASSERT_OK(env->WriteStringToFile(path, Slice("0123456789")));
  std::unique_ptr<RandomAccessFile> f;
  OPDELTA_ASSERT_OK(env->NewRandomAccessFile(path, &f));
  char scratch[4];
  Slice result;
  OPDELTA_ASSERT_OK(f->Read(3, 4, &result, scratch));
  EXPECT_EQ(result.ToString(), "3456");
}

TEST(EnvTest, ListDirAndDelete) {
  TempDir dir;
  Env* env = Env::Default();
  OPDELTA_ASSERT_OK(env->WriteStringToFile(dir.Sub("a"), Slice("1")));
  OPDELTA_ASSERT_OK(env->WriteStringToFile(dir.Sub("b"), Slice("2")));
  std::vector<std::string> children;
  OPDELTA_ASSERT_OK(env->ListDir(dir.path(), &children));
  std::set<std::string> names(children.begin(), children.end());
  EXPECT_TRUE(names.count("a"));
  EXPECT_TRUE(names.count("b"));
  OPDELTA_ASSERT_OK(env->DeleteFile(dir.Sub("a")));
  EXPECT_FALSE(env->FileExists(dir.Sub("a")));
}

TEST(EnvTest, MissingFileErrors) {
  TempDir dir;
  std::string data;
  EXPECT_FALSE(Env::Default()->ReadFileToString(dir.Sub("nope"), &data).ok());
  EXPECT_FALSE(Env::Default()->DeleteFile(dir.Sub("nope")).ok());
}

TEST(EnvTest, AtomicWriteReplaces) {
  TempDir dir;
  Env* env = Env::Default();
  const std::string path = dir.Sub("atomic");
  OPDELTA_ASSERT_OK(WriteFileAtomic(env, path, Slice("v1")));
  OPDELTA_ASSERT_OK(WriteFileAtomic(env, path, Slice("v2")));
  std::string data;
  OPDELTA_ASSERT_OK(env->ReadFileToString(path, &data));
  EXPECT_EQ(data, "v2");
  EXPECT_FALSE(env->FileExists(path + ".tmp"));
}

// ------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 1000);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
    pool.Shutdown();  // must not drop accepted tasks
  }
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPoolTest, SubmitAfterShutdownIsDropped) {
  ThreadPool pool(1);
  pool.Shutdown();
  std::atomic<int> ran{0};
  pool.Submit([&ran] { ran.fetch_add(1); });  // no crash, no execution
  EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPoolTest, SubmitFromWorkerDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  CountDownLatch latch(1);
  pool.Submit([&] {
    pool.Submit([&] {
      ran.fetch_add(1);
      latch.CountDown();
    });
  });
  latch.Wait();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, WaitIdleObservesRunningTasks) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      done.fetch_add(1);
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(done.load(), 16);
}

// ----------------------------------------------------------------- digest

TEST(DigestTest, HashBytesIsStableAndSpreads) {
  const std::string a = "delta";
  const std::string b = "delta!";
  EXPECT_EQ(HashBytes64(a.data(), a.size()), HashBytes64(a.data(), a.size()));
  EXPECT_NE(HashBytes64(a.data(), a.size()), HashBytes64(b.data(), b.size()));
  // Single-bit input changes must not produce nearby hashes (the set
  // digest sums hashes, so clustered values would cancel easily).
  const std::string c = "deltb";
  const uint64_t ha = HashBytes64(a.data(), a.size());
  const uint64_t hc = HashBytes64(c.data(), c.size());
  EXPECT_GT(ha > hc ? ha - hc : hc - ha, 1u << 20);
}

TEST(DigestTest, SetDigestIsOrderInsensitive) {
  SetDigest forward, backward;
  const std::string rows[] = {"row-a", "row-b", "row-c", "row-d"};
  for (const std::string& r : rows) forward.Add(r);
  for (auto it = std::rbegin(rows); it != std::rend(rows); ++it) {
    backward.Add(*it);
  }
  EXPECT_EQ(forward, backward);
  EXPECT_EQ(forward.count, 4u);
}

TEST(DigestTest, SetDigestSeesElementAndMultiplicityChanges) {
  SetDigest base;
  base.Add(std::string("row-a"));
  base.Add(std::string("row-b"));

  SetDigest changed;
  changed.Add(std::string("row-a"));
  changed.Add(std::string("row-B"));
  EXPECT_NE(base, changed);

  // Same element twice vs. two distinct elements: the count tells the
  // multiset apart even when xor would cancel.
  SetDigest doubled;
  doubled.Add(std::string("row-a"));
  doubled.Add(std::string("row-a"));
  EXPECT_NE(base, doubled);
  EXPECT_EQ(doubled.count, 2u);

  EXPECT_EQ(SetDigest{}, SetDigest{});
  EXPECT_FALSE(base.ToString().empty());
}

TEST(CountDownLatchTest, WaitReleasesAtZero) {
  CountDownLatch latch(3);
  std::atomic<bool> released{false};
  std::thread waiter([&] {
    latch.Wait();
    released.store(true);
  });
  latch.CountDown();
  latch.CountDown();
  EXPECT_FALSE(released.load());
  latch.CountDown();
  waiter.join();
  EXPECT_TRUE(released.load());
}

}  // namespace
}  // namespace opdelta
