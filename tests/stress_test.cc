// Concurrency stress tests: multiple writers against one source system
// with capture machinery active, verifying that extraction and integration
// stay consistent under interleaving.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/random.h"
#include "extract/log_extractor.h"
#include "extract/op_delta.h"
#include "extract/trigger_extractor.h"
#include "sql/executor.h"
#include "warehouse/integrator.h"
#include "workload/workload.h"
#include "tests/test_util.h"

namespace opdelta {
namespace {

using opdelta::testing::CountRows;
using opdelta::testing::OpenDb;
using opdelta::testing::TablesEqual;
using opdelta::testing::TempDir;

TEST(StressTest, ConcurrentWritersWithTriggerCapture) {
  TempDir dir;
  engine::DatabaseOptions options;
  options.auto_timestamp = false;
  auto src = OpenDb(dir, "src", options);
  workload::PartsWorkload wl;
  OPDELTA_ASSERT_OK(wl.CreateTable(src.get(), "parts"));
  Result<std::string> delta_table =
      extract::TriggerExtractor::Install(src.get(), "parts");
  ASSERT_TRUE(delta_table.ok());

  constexpr int kThreads = 4;
  constexpr int kTxnsPerThread = 40;
  std::atomic<int> failures{0};

  // Each thread owns a disjoint key range: ranges never conflict, so every
  // transaction must commit.
  auto worker = [&](int tid) {
    workload::PartsWorkload local(
        workload::PartsWorkload::Options{100, static_cast<uint64_t>(tid)});
    sql::Executor exec(src.get());
    const int64_t base = tid * 100000;
    int64_t next = base;
    Rng rng(1000 + tid);
    for (int i = 0; i < kTxnsPerThread; ++i) {
      sql::Statement stmt;
      switch (rng.Uniform(3)) {
        case 0:
          stmt = local.MakeInsert("parts", next, 1 + rng.Uniform(10));
          next += 10;
          break;
        case 1:
          stmt = local.MakeUpdate("parts", base,
                                  base + rng.Uniform(next - base + 1),
                                  "t" + std::to_string(tid));
          break;
        default:
          stmt = local.MakeDelete(
              "parts", base + rng.Uniform(next - base + 1),
              base + rng.Uniform(next - base + 1));
          break;
      }
      if (!exec.ExecuteSql(stmt.ToSql()).ok()) failures++;
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // The captured value delta must agree with the archive log on net
  // changes, despite the concurrent interleaving.
  Result<extract::DeltaBatch> trigger_batch =
      extract::TriggerExtractor::Drain(src.get(), "parts");
  ASSERT_TRUE(trigger_batch.ok());
  engine::Table* t = src->GetTable("parts");
  extract::LogExtractor log_extractor(src->wal()->dir());
  txn::Lsn wm = 0;
  Result<extract::DeltaBatch> log_batch = log_extractor.ExtractSince(
      0, t->id(), "parts", t->schema(), &wm);
  ASSERT_TRUE(log_batch.ok());

  extract::NetChanges trigger_net, log_net;
  OPDELTA_ASSERT_OK(ComputeNetChanges(*trigger_batch, &trigger_net));
  OPDELTA_ASSERT_OK(ComputeNetChanges(*log_batch, &log_net));
  // The log is totally ordered by LSN; the trigger capture's per-batch seq
  // is assigned at fire time. Both must at least agree on which keys are
  // live, and the live values must match the source table.
  auto source_rows = opdelta::testing::TableContents(src.get(), "parts");
  uint64_t live_in_log = 0;
  for (const auto& [key, state] : log_net) {
    if (!state.has_value()) continue;
    ++live_in_log;
    auto it = source_rows.find(key);
    ASSERT_NE(it, source_rows.end()) << key.ToSqlLiteral();
    EXPECT_EQ(catalog::CompareRows(*state, it->second), 0);
  }
  EXPECT_EQ(live_in_log + 0, source_rows.size());
}

TEST(StressTest, ConcurrentOpDeltaCaptureReplaysExactly) {
  TempDir dir;
  engine::DatabaseOptions options;
  options.auto_timestamp = false;
  auto src = OpenDb(dir, "src", options);
  auto wh = OpenDb(dir, "wh", options);
  workload::PartsWorkload wl;
  OPDELTA_ASSERT_OK(wl.CreateTable(src.get(), "parts"));
  OPDELTA_ASSERT_OK(wl.CreateTable(wh.get(), "parts"));
  OPDELTA_ASSERT_OK(
      src->CreateTable("op_log", extract::OpDeltaLogTableSchema()));

  sql::Executor exec(src.get());
  extract::OpDeltaCapture capture(
      &exec, std::make_shared<extract::OpDeltaDbSink>("op_log"),
      extract::OpDeltaCapture::Options());

  constexpr int kThreads = 4;
  std::atomic<int> failures{0};
  // Disjoint key ranges; single shared capture wrapper.
  auto worker = [&](int tid) {
    workload::PartsWorkload local(
        workload::PartsWorkload::Options{100, 77u + tid});
    const int64_t base = tid * 100000;
    int64_t next = base;
    Rng rng(52 + tid);
    for (int i = 0; i < 30; ++i) {
      std::vector<sql::Statement> stmts;
      const size_t n = 1 + rng.Uniform(8);
      stmts.push_back(local.MakeInsert("parts", next, n));
      next += static_cast<int64_t>(n);
      if (i % 3 == 2) {
        stmts.push_back(local.MakeUpdate("parts", base, next,
                                         "s" + std::to_string(i)));
      }
      if (!capture.RunTransaction(stmts).ok()) failures++;
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Replay: the per-thread streams interleave, but disjoint key ranges
  // make any commit-consistent order equivalent — the warehouse must land
  // exactly on the source state.
  std::vector<extract::OpDeltaTxn> txns;
  OPDELTA_ASSERT_OK(extract::OpDeltaLogReader::DrainDbTable(
      src.get(), "op_log", workload::PartsWorkload::Schema(), &txns));
  EXPECT_EQ(txns.size(), static_cast<size_t>(kThreads * 30));
  warehouse::OpDeltaIntegrator integrator(wh.get());
  OPDELTA_ASSERT_OK(integrator.Apply(txns, nullptr));
  EXPECT_TRUE(TablesEqual(src.get(), "parts", wh.get(), "parts"));
}

TEST(StressTest, ReadersNeverBlockEachOther) {
  TempDir dir;
  auto db = OpenDb(dir, "db");
  workload::PartsWorkload wl;
  OPDELTA_ASSERT_OK(wl.CreateTable(db.get(), "parts"));
  OPDELTA_ASSERT_OK(wl.Populate(db.get(), "parts", 5000));

  std::atomic<int> completed{0};
  auto reader = [&]() {
    for (int i = 0; i < 20; ++i) {
      Result<workload::OlapQueryResult> r =
          workload::RunOlapQuery(db.get(), "parts");
      if (r.ok() && r->rows_scanned == 5000) completed++;
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) threads.emplace_back(reader);
  for (auto& t : threads) t.join();
  EXPECT_EQ(completed.load(), 80);
}

}  // namespace
}  // namespace opdelta
