// OrderedMutex runtime checker tests. This TU is compiled with
// OPDELTA_LOCK_CHECK (see tests/CMakeLists.txt), so common::OrderedMutex
// resolves to the checked variant even in a release build — exactly how
// the CI lock-check job runs the whole suite.

#include <gtest/gtest.h>

#include <mutex>
#include <shared_mutex>
#include <thread>
#include <type_traits>

#include "common/sync.h"

namespace opdelta::common {
namespace {

// The alias must select the checked variant here (OPDELTA_LOCK_CHECK is
// defined for this TU) and the passthrough must stay layout-identical to
// the std primitive so release builds pay nothing.
static_assert(OPDELTA_LOCK_CHECK_ENABLED,
              "sync_test must build with the checker on");
static_assert(std::is_same_v<OrderedMutex, detail::CheckedOrderedMutex>);
static_assert(std::is_same_v<OrderedSharedMutex,
                             detail::CheckedOrderedSharedMutex>);
static_assert(sizeof(detail::PassthroughOrderedMutex) == sizeof(std::mutex));
static_assert(sizeof(detail::PassthroughOrderedSharedMutex) ==
              sizeof(std::shared_mutex));

OrderedMutex low{OPDELTA_LOCK_RANK(test_low, 10)};
OrderedMutex mid{OPDELTA_LOCK_RANK(test_mid, 20)};
OrderedMutex high{OPDELTA_LOCK_RANK(test_high, 30)};

TEST(OrderedMutexTest, AscendingAcquisitionSucceeds) {
  EXPECT_EQ(lockcheck::HeldCountForTesting(), 0);
  std::lock_guard<OrderedMutex> a(low);
  EXPECT_EQ(lockcheck::HeldCountForTesting(), 1);
  {
    std::lock_guard<OrderedMutex> b(mid);
    std::lock_guard<OrderedMutex> c(high);
    EXPECT_EQ(lockcheck::HeldCountForTesting(), 3);
  }
  EXPECT_EQ(lockcheck::HeldCountForTesting(), 1);
}

TEST(OrderedMutexTest, ReleaseRestoresRankHeadroom) {
  // After dropping the higher lock, acquiring below it again is legal.
  {
    std::lock_guard<OrderedMutex> c(high);
  }
  std::lock_guard<OrderedMutex> a(low);
  std::lock_guard<OrderedMutex> c(high);
  EXPECT_EQ(lockcheck::HeldCountForTesting(), 2);
}

TEST(OrderedMutexDeathTest, RankInversionAborts) {
  EXPECT_DEATH(
      {
        std::lock_guard<OrderedMutex> c(high);
        std::lock_guard<OrderedMutex> a(low);
      },
      "opdelta lock check: rank inversion: acquiring 'test_low'");
}

TEST(OrderedMutexDeathTest, SelfDeadlockAborts) {
  EXPECT_DEATH(
      {
        std::lock_guard<OrderedMutex> a(mid);
        std::lock_guard<OrderedMutex> b(mid);
      },
      "opdelta lock check: self deadlock: re-acquiring 'test_mid'");
}

TEST(OrderedMutexDeathTest, SameRankAbbaCycleAborts) {
  // Two instances of one class share a rank, so the rank check cannot see
  // an ABBA order — the instance acquisition graph must.
  EXPECT_DEATH(
      {
        OrderedMutex a{OPDELTA_LOCK_RANK(test_peer, 15)};
        OrderedMutex b{OPDELTA_LOCK_RANK(test_peer, 15)};
        {
          std::lock_guard<OrderedMutex> la(a);
          std::lock_guard<OrderedMutex> lb(b);  // edge a -> b
        }
        std::lock_guard<OrderedMutex> lb(b);
        std::lock_guard<OrderedMutex> la(a);  // closes b -> a
      },
      "opdelta lock check: lock-order cycle: acquiring 'test_peer'");
}

TEST(OrderedMutexDeathTest, CycleReportNamesTheClosingEdge) {
  // The report must carry the witness: which edge closed the loop.
  EXPECT_DEATH(
      {
        OrderedMutex a{OPDELTA_LOCK_RANK(test_edge, 15)};
        OrderedMutex b{OPDELTA_LOCK_RANK(test_edge, 15)};
        {
          std::lock_guard<OrderedMutex> la(a);
          std::lock_guard<OrderedMutex> lb(b);
        }
        std::lock_guard<OrderedMutex> lb(b);
        std::lock_guard<OrderedMutex> la(a);
      },
      "closing edge 'test_edge' -> 'test_edge'");
}

TEST(OrderedMutexTest, SameRankNestingWithoutCycleIsLegal) {
  // One consistent order between same-rank instances never closes a cycle.
  OrderedMutex a{OPDELTA_LOCK_RANK(test_nest, 15)};
  OrderedMutex b{OPDELTA_LOCK_RANK(test_nest, 15)};
  for (int i = 0; i < 3; ++i) {
    std::lock_guard<OrderedMutex> la(a);
    std::lock_guard<OrderedMutex> lb(b);
    EXPECT_EQ(lockcheck::HeldCountForTesting(), 2);
  }
}

TEST(OrderedMutexTest, TryLockSkipsPreChecksButJoinsHeldStack) {
  // try_lock cannot deadlock, so taking a lower rank via try while holding
  // a higher one is legal...
  std::lock_guard<OrderedMutex> c(high);
  ASSERT_TRUE(low.try_lock());
  EXPECT_EQ(lockcheck::HeldCountForTesting(), 2);
  low.unlock();
  EXPECT_EQ(lockcheck::HeldCountForTesting(), 1);
}

TEST(OrderedMutexDeathTest, TryAcquiredLockStillRanksLaterAcquisitions) {
  // ...but once held, it ranks later blocking acquisitions like any other.
  EXPECT_DEATH(
      {
        ASSERT_TRUE(high.try_lock());
        std::lock_guard<OrderedMutex> a(low);
      },
      "opdelta lock check: rank inversion: acquiring 'test_low'");
}

OrderedSharedMutex shared_low{OPDELTA_LOCK_RANK(test_shared_low, 12)};
OrderedSharedMutex shared_high{OPDELTA_LOCK_RANK(test_shared_high, 25)};

TEST(OrderedSharedMutexTest, SharedAcquisitionsFollowRanks) {
  std::shared_lock<OrderedSharedMutex> r1(shared_low);
  std::shared_lock<OrderedSharedMutex> r2(shared_high);
  EXPECT_EQ(lockcheck::HeldCountForTesting(), 2);
}

TEST(OrderedSharedMutexTest, ReadersShareWhileRanked) {
  std::shared_lock<OrderedSharedMutex> mine(shared_high);
  std::thread peer([] {
    std::shared_lock<OrderedSharedMutex> theirs(shared_high);
    EXPECT_EQ(lockcheck::HeldCountForTesting(), 1);
  });
  peer.join();
}

TEST(OrderedSharedMutexDeathTest, SharedRankInversionAborts) {
  // A blocked reader deadlocks exactly like a blocked writer, so shared
  // acquisitions obey the same hierarchy.
  EXPECT_DEATH(
      {
        std::unique_lock<OrderedSharedMutex> w(shared_high);
        std::shared_lock<OrderedSharedMutex> r(shared_low);
      },
      "opdelta lock check: rank inversion: acquiring 'test_shared_low'");
}

TEST(OrderedMutexTest, HeldStackIsPerThread) {
  std::lock_guard<OrderedMutex> c(high);
  std::thread peer([] {
    // The peer thread holds nothing, so acquiring the lowest rank is fine.
    EXPECT_EQ(lockcheck::HeldCountForTesting(), 0);
    std::lock_guard<OrderedMutex> a(low);
    EXPECT_EQ(lockcheck::HeldCountForTesting(), 1);
  });
  peer.join();
  EXPECT_EQ(lockcheck::HeldCountForTesting(), 1);
}

TEST(PassthroughOrderedMutexTest, ReleaseVariantIsAPlainMutex) {
  // The NDEBUG alias target: same declaration syntax, no checking, and a
  // second acquisition attempt observably blocks (tested via try_lock).
  detail::PassthroughOrderedMutex mu{OPDELTA_LOCK_RANK(ignored, 99)};
  mu.lock();
  EXPECT_FALSE(mu.try_lock());
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();

  detail::PassthroughOrderedSharedMutex smu{OPDELTA_LOCK_RANK(ignored, 99)};
  smu.lock_shared();
  EXPECT_FALSE(smu.try_lock());
  EXPECT_TRUE(smu.try_lock_shared());
  smu.unlock_shared();
  smu.unlock_shared();
}

}  // namespace
}  // namespace opdelta::common
