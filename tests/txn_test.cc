#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "txn/lock_manager.h"
#include "txn/log_record.h"
#include "txn/recovery.h"
#include "txn/wal.h"
#include "tests/test_util.h"

namespace opdelta::txn {
namespace {

using opdelta::testing::TempDir;

// -------------------------------------------------------------- LogRecord

TEST(LogRecordTest, RoundTripAllFields) {
  LogRecord rec;
  rec.type = LogRecordType::kUpdate;
  rec.txn_id = 77;
  rec.lsn = 123456;
  rec.table_id = 9;
  rec.rid = storage::Rid{42, 7};
  rec.rid2 = storage::Rid{43, 1};
  rec.before = "before-image-bytes";
  rec.after = "after-image-bytes";

  std::string buf;
  rec.EncodeTo(&buf);
  Slice in(buf);
  LogRecord out;
  OPDELTA_ASSERT_OK(LogRecord::DecodeFrom(&in, &out));
  EXPECT_EQ(out.type, rec.type);
  EXPECT_EQ(out.txn_id, rec.txn_id);
  EXPECT_EQ(out.lsn, rec.lsn);
  EXPECT_EQ(out.table_id, rec.table_id);
  EXPECT_TRUE(out.rid == rec.rid);
  EXPECT_TRUE(out.rid2 == rec.rid2);
  EXPECT_EQ(out.before, rec.before);
  EXPECT_EQ(out.after, rec.after);
}

TEST(LogRecordTest, RejectsBadType) {
  std::string buf = "\x7f rest";
  Slice in(buf);
  LogRecord out;
  EXPECT_FALSE(LogRecord::DecodeFrom(&in, &out).ok());
}

// -------------------------------------------------------------------- Wal

TEST(WalTest, AppendAssignsMonotonicLsns) {
  TempDir dir;
  Wal wal;
  OPDELTA_ASSERT_OK(wal.Open(dir.Sub("wal"), WalOptions()));
  Lsn prev = 0;
  for (int i = 0; i < 10; ++i) {
    LogRecord rec;
    rec.type = LogRecordType::kBegin;
    rec.txn_id = i;
    OPDELTA_ASSERT_OK(wal.Append(&rec));
    EXPECT_GT(rec.lsn, prev);
    prev = rec.lsn;
  }
  OPDELTA_ASSERT_OK(wal.Close());
}

TEST(WalTest, ReadAllReturnsRecordsInOrder) {
  TempDir dir;
  {
    Wal wal;
    OPDELTA_ASSERT_OK(wal.Open(dir.Sub("wal"), WalOptions()));
    for (int i = 0; i < 100; ++i) {
      LogRecord rec;
      rec.type = LogRecordType::kInsert;
      rec.txn_id = i;
      rec.after = "row-" + std::to_string(i);
      OPDELTA_ASSERT_OK(wal.Append(&rec));
    }
    OPDELTA_ASSERT_OK(wal.Close());
  }
  int i = 0;
  OPDELTA_ASSERT_OK(Wal::ReadAll(dir.Sub("wal"), [&](const LogRecord& r) {
    EXPECT_EQ(r.txn_id, static_cast<TxnId>(i));
    EXPECT_EQ(r.after, "row-" + std::to_string(i));
    ++i;
    return true;
  }));
  EXPECT_EQ(i, 100);
}

TEST(WalTest, SegmentsRollOver) {
  TempDir dir;
  WalOptions options;
  options.segment_size = 4096;  // tiny segments force rolls
  Wal wal;
  OPDELTA_ASSERT_OK(wal.Open(dir.Sub("wal"), options));
  for (int i = 0; i < 200; ++i) {
    LogRecord rec;
    rec.type = LogRecordType::kInsert;
    rec.after = std::string(100, 'x');
    OPDELTA_ASSERT_OK(wal.Append(&rec));
  }
  std::vector<std::string> segments;
  OPDELTA_ASSERT_OK(wal.ListSegments(&segments));
  EXPECT_GT(segments.size(), 2u);
  // All records must still stream back.
  int count = 0;
  OPDELTA_ASSERT_OK(Wal::ReadAll(dir.Sub("wal"), [&](const LogRecord&) {
    ++count;
    return true;
  }));
  EXPECT_EQ(count, 200);
}

TEST(WalTest, ArchiveModeRetainsSegmentsAtCheckpoint) {
  TempDir dir;
  WalOptions options;
  options.segment_size = 4096;
  options.archive_mode = true;
  Wal wal;
  OPDELTA_ASSERT_OK(wal.Open(dir.Sub("wal"), options));
  for (int i = 0; i < 200; ++i) {
    LogRecord rec;
    rec.type = LogRecordType::kInsert;
    rec.after = std::string(100, 'x');
    OPDELTA_ASSERT_OK(wal.Append(&rec));
  }
  std::vector<std::string> before;
  OPDELTA_ASSERT_OK(wal.ListSegments(&before));
  OPDELTA_ASSERT_OK(wal.Checkpoint());
  std::vector<std::string> after;
  OPDELTA_ASSERT_OK(wal.ListSegments(&after));
  EXPECT_EQ(before.size(), after.size());  // nothing recycled
}

TEST(WalTest, NonArchiveCheckpointRecyclesClosedSegments) {
  TempDir dir;
  WalOptions options;
  options.segment_size = 4096;
  options.archive_mode = false;
  Wal wal;
  OPDELTA_ASSERT_OK(wal.Open(dir.Sub("wal"), options));
  for (int i = 0; i < 200; ++i) {
    LogRecord rec;
    rec.type = LogRecordType::kInsert;
    rec.after = std::string(100, 'x');
    OPDELTA_ASSERT_OK(wal.Append(&rec));
  }
  OPDELTA_ASSERT_OK(wal.Checkpoint());
  std::vector<std::string> segments;
  OPDELTA_ASSERT_OK(wal.ListSegments(&segments));
  EXPECT_EQ(segments.size(), 1u);  // only the active segment remains
}

TEST(WalTest, ReopenContinuesLsnSequence) {
  TempDir dir;
  Lsn last;
  {
    Wal wal;
    OPDELTA_ASSERT_OK(wal.Open(dir.Sub("wal"), WalOptions()));
    LogRecord rec;
    rec.type = LogRecordType::kBegin;
    OPDELTA_ASSERT_OK(wal.Append(&rec));
    last = rec.lsn;
    OPDELTA_ASSERT_OK(wal.Close());
  }
  Wal wal;
  OPDELTA_ASSERT_OK(wal.Open(dir.Sub("wal"), WalOptions()));
  LogRecord rec;
  rec.type = LogRecordType::kBegin;
  OPDELTA_ASSERT_OK(wal.Append(&rec));
  EXPECT_GT(rec.lsn, last);
}

TEST(WalTest, CorruptFrameDetected) {
  TempDir dir;
  {
    Wal wal;
    OPDELTA_ASSERT_OK(wal.Open(dir.Sub("wal"), WalOptions()));
    LogRecord rec;
    rec.type = LogRecordType::kInsert;
    rec.after = "payload";
    OPDELTA_ASSERT_OK(wal.Append(&rec));
    OPDELTA_ASSERT_OK(wal.Close());
  }
  // Flip a payload byte in the only segment.
  std::vector<std::string> children;
  OPDELTA_ASSERT_OK(Env::Default()->ListDir(dir.Sub("wal"), &children));
  ASSERT_FALSE(children.empty());
  const std::string seg = dir.Sub("wal") + "/" + children[0];
  std::string data;
  OPDELTA_ASSERT_OK(Env::Default()->ReadFileToString(seg, &data));
  data[data.size() - 2] ^= 0xFF;
  OPDELTA_ASSERT_OK(Env::Default()->WriteStringToFile(seg, Slice(data)));

  Status st = Wal::ReadAll(dir.Sub("wal"), [](const LogRecord&) {
    return true;
  });
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
}

TEST(WalTest, TornTailOfNewestSegmentIsEndOfLog) {
  // A crash mid-append leaves a partial frame at the end of the active
  // segment; recovery must treat it as the end of the log, not corruption.
  TempDir dir;
  {
    Wal wal;
    OPDELTA_ASSERT_OK(wal.Open(dir.Sub("wal"), WalOptions()));
    for (int i = 0; i < 5; ++i) {
      LogRecord rec;
      rec.type = LogRecordType::kInsert;
      rec.txn_id = i;
      rec.after = "row";
      OPDELTA_ASSERT_OK(wal.Append(&rec));
    }
    OPDELTA_ASSERT_OK(wal.Close());
  }
  std::vector<std::string> children;
  OPDELTA_ASSERT_OK(Env::Default()->ListDir(dir.Sub("wal"), &children));
  ASSERT_EQ(children.size(), 1u);
  const std::string seg = dir.Sub("wal") + "/" + children[0];
  std::string data;
  OPDELTA_ASSERT_OK(Env::Default()->ReadFileToString(seg, &data));
  // Chop the last record in half and append a few header bytes of a
  // never-completed frame.
  data.resize(data.size() - 10);
  data.append("\x40\x00", 2);
  OPDELTA_ASSERT_OK(Env::Default()->WriteStringToFile(seg, Slice(data)));

  int seen = 0;
  OPDELTA_ASSERT_OK(Wal::ReadAll(dir.Sub("wal"), [&](const LogRecord&) {
    ++seen;
    return true;
  }));
  EXPECT_EQ(seen, 4);  // the torn 5th record is dropped cleanly
}

TEST(WalTest, TruncationInOlderSegmentIsCorruption) {
  TempDir dir;
  WalOptions options;
  options.segment_size = 512;  // force several segments
  {
    Wal wal;
    OPDELTA_ASSERT_OK(wal.Open(dir.Sub("wal"), options));
    for (int i = 0; i < 50; ++i) {
      LogRecord rec;
      rec.type = LogRecordType::kInsert;
      rec.after = std::string(100, 'x');
      OPDELTA_ASSERT_OK(wal.Append(&rec));
    }
    OPDELTA_ASSERT_OK(wal.Close());
  }
  std::vector<std::string> children;
  OPDELTA_ASSERT_OK(Env::Default()->ListDir(dir.Sub("wal"), &children));
  std::sort(children.begin(), children.end());
  ASSERT_GT(children.size(), 2u);
  // Truncate the FIRST segment: a hole in the middle of the log.
  const std::string seg = dir.Sub("wal") + "/" + children[0];
  std::string data;
  OPDELTA_ASSERT_OK(Env::Default()->ReadFileToString(seg, &data));
  data.resize(data.size() / 2);
  OPDELTA_ASSERT_OK(Env::Default()->WriteStringToFile(seg, Slice(data)));

  Status st = Wal::ReadAll(dir.Sub("wal"), [](const LogRecord&) {
    return true;
  });
  EXPECT_TRUE(st.IsCorruption());
}

TEST(WalTest, MidSegmentCrcFlipIsCorruption) {
  // Corruption of an EARLY record in a multi-record segment must be a hard
  // error even though plenty of valid frames follow it — only a torn frame
  // at the very tail of the newest segment is forgivable.
  TempDir dir;
  {
    Wal wal;
    OPDELTA_ASSERT_OK(wal.Open(dir.Sub("wal"), WalOptions()));
    for (int i = 0; i < 5; ++i) {
      LogRecord rec;
      rec.type = LogRecordType::kInsert;
      rec.txn_id = i;
      rec.after = "row-payload";
      OPDELTA_ASSERT_OK(wal.Append(&rec));
    }
    OPDELTA_ASSERT_OK(wal.Close());
  }
  std::vector<std::string> children;
  OPDELTA_ASSERT_OK(Env::Default()->ListDir(dir.Sub("wal"), &children));
  ASSERT_EQ(children.size(), 1u);
  const std::string seg = dir.Sub("wal") + "/" + children[0];
  std::string data;
  OPDELTA_ASSERT_OK(Env::Default()->ReadFileToString(seg, &data));
  data[12] ^= 0xFF;  // payload byte of the FIRST frame (header is 8 bytes)
  OPDELTA_ASSERT_OK(Env::Default()->WriteStringToFile(seg, Slice(data)));

  Status st = Wal::ReadAll(dir.Sub("wal"), [](const LogRecord&) {
    return true;
  });
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
}

TEST(WalTest, FrameBoundaryTruncationInOlderSegmentIsCorruption) {
  // Truncation that lands exactly on a frame boundary leaves a segment of
  // perfectly valid frames — only the dense-LSN check can notice that the
  // tail of the segment went missing.
  TempDir dir;
  WalOptions options;
  options.segment_size = 512;  // force several segments
  {
    Wal wal;
    OPDELTA_ASSERT_OK(wal.Open(dir.Sub("wal"), options));
    for (int i = 0; i < 50; ++i) {
      LogRecord rec;
      rec.type = LogRecordType::kInsert;
      rec.after = std::string(100, 'x');
      OPDELTA_ASSERT_OK(wal.Append(&rec));
    }
    OPDELTA_ASSERT_OK(wal.Close());
  }
  std::vector<std::string> children;
  OPDELTA_ASSERT_OK(Env::Default()->ListDir(dir.Sub("wal"), &children));
  std::sort(children.begin(), children.end());
  ASSERT_GT(children.size(), 2u);
  const std::string seg = dir.Sub("wal") + "/" + children[0];
  std::string data;
  OPDELTA_ASSERT_OK(Env::Default()->ReadFileToString(seg, &data));
  // Walk the [u32 len][u32 crc][payload] frames and count them, remembering
  // where the last complete frame begins.
  size_t offset = 0, frames = 0, last_frame_start = 0;
  auto le32 = [&](size_t at) {
    return static_cast<uint32_t>(static_cast<uint8_t>(data[at])) |
           static_cast<uint32_t>(static_cast<uint8_t>(data[at + 1])) << 8 |
           static_cast<uint32_t>(static_cast<uint8_t>(data[at + 2])) << 16 |
           static_cast<uint32_t>(static_cast<uint8_t>(data[at + 3])) << 24;
  };
  while (offset + 8 <= data.size() && offset + 8 + le32(offset) <= data.size()) {
    last_frame_start = offset;
    offset += 8 + le32(offset);
    ++frames;
  }
  ASSERT_GE(frames, 2u);  // need a surviving frame before the cut
  // Cut EXACTLY at the final frame boundary: every remaining byte still
  // parses and checksums, but one LSN has vanished.
  data.resize(last_frame_start);
  OPDELTA_ASSERT_OK(Env::Default()->WriteStringToFile(seg, Slice(data)));

  Status st = Wal::ReadAll(dir.Sub("wal"), [](const LogRecord&) {
    return true;
  });
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_NE(st.ToString().find("lsn gap"), std::string::npos)
      << st.ToString();
}

TEST(WalTest, BytesAppendedTracksVolume) {
  TempDir dir;
  Wal wal;
  OPDELTA_ASSERT_OK(wal.Open(dir.Sub("wal"), WalOptions()));
  EXPECT_EQ(wal.bytes_appended(), 0u);
  LogRecord rec;
  rec.type = LogRecordType::kInsert;
  rec.after = std::string(1000, 'v');
  OPDELTA_ASSERT_OK(wal.Append(&rec));
  EXPECT_GT(wal.bytes_appended(), 1000u);
}

// ------------------------------------------------------------ LockManager

TEST(LockModeTest, CompatibilityMatrix) {
  using L = LockMode;
  // IS compatible with all but X.
  EXPECT_TRUE(LockModesCompatible(L::kIS, L::kIS));
  EXPECT_TRUE(LockModesCompatible(L::kIS, L::kIX));
  EXPECT_TRUE(LockModesCompatible(L::kIS, L::kS));
  EXPECT_FALSE(LockModesCompatible(L::kIS, L::kX));
  // IX compatible with intentions only.
  EXPECT_TRUE(LockModesCompatible(L::kIX, L::kIX));
  EXPECT_FALSE(LockModesCompatible(L::kIX, L::kS));
  EXPECT_FALSE(LockModesCompatible(L::kIX, L::kX));
  // S compatible with IS and S.
  EXPECT_TRUE(LockModesCompatible(L::kS, L::kIS));
  EXPECT_TRUE(LockModesCompatible(L::kS, L::kS));
  EXPECT_FALSE(LockModesCompatible(L::kS, L::kIX));
  // X compatible with nothing.
  EXPECT_FALSE(LockModesCompatible(L::kX, L::kIS));
  EXPECT_FALSE(LockModesCompatible(L::kX, L::kX));
}

TEST(LockManagerTest, SharedTableLocksCoexist) {
  LockManager lm;
  OPDELTA_ASSERT_OK(lm.LockTable(1, 100, LockMode::kS));
  OPDELTA_ASSERT_OK(lm.LockTable(2, 100, LockMode::kS));
  OPDELTA_ASSERT_OK(lm.LockTable(3, 100, LockMode::kIS));
  EXPECT_EQ(lm.HoldersOnTable(100), 3u);
}

TEST(LockManagerTest, ExclusiveBlocksOthersUntilRelease) {
  LockManager lm(std::chrono::milliseconds(100));
  OPDELTA_ASSERT_OK(lm.LockTable(1, 100, LockMode::kX));
  // A second transaction times out while txn 1 holds X.
  Status st = lm.LockTable(2, 100, LockMode::kIS,
                           std::chrono::milliseconds(50));
  EXPECT_TRUE(st.IsConflict());

  // After release the blocked mode is grantable.
  lm.ReleaseAll(1);
  OPDELTA_ASSERT_OK(lm.LockTable(2, 100, LockMode::kIS));
}

TEST(LockManagerTest, BlockedRequestWakesOnRelease) {
  LockManager lm;
  OPDELTA_ASSERT_OK(lm.LockTable(1, 5, LockMode::kX));
  std::atomic<bool> granted{false};
  std::thread waiter([&]() {
    Status st = lm.LockTable(2, 5, LockMode::kS, std::chrono::seconds(5));
    if (st.ok()) granted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(granted.load());
  lm.ReleaseAll(1);
  waiter.join();
  EXPECT_TRUE(granted.load());
}

TEST(LockManagerTest, ReentrantAndUpgrade) {
  LockManager lm(std::chrono::milliseconds(100));
  OPDELTA_ASSERT_OK(lm.LockTable(1, 7, LockMode::kIS));
  OPDELTA_ASSERT_OK(lm.LockTable(1, 7, LockMode::kIS));  // re-entrant
  OPDELTA_ASSERT_OK(lm.LockTable(1, 7, LockMode::kX));   // upgrade, sole holder
  // Another txn now conflicts.
  EXPECT_TRUE(lm.LockTable(2, 7, LockMode::kIS, std::chrono::milliseconds(30))
                  .IsConflict());
}

TEST(LockManagerTest, RowLocksConflictOnlyOnSameRow) {
  LockManager lm(std::chrono::milliseconds(100));
  const storage::Rid r1{1, 1}, r2{1, 2};
  OPDELTA_ASSERT_OK(lm.LockRow(1, 9, r1, /*exclusive=*/true));
  OPDELTA_ASSERT_OK(lm.LockRow(2, 9, r2, /*exclusive=*/true));  // no conflict
  EXPECT_TRUE(lm.LockRow(2, 9, r1, true, std::chrono::milliseconds(30))
                  .IsConflict());
  // Shared row locks coexist.
  const storage::Rid r3{2, 0};
  OPDELTA_ASSERT_OK(lm.LockRow(1, 9, r3, false));
  OPDELTA_ASSERT_OK(lm.LockRow(2, 9, r3, false));
  EXPECT_TRUE(lm.LockRow(3, 9, r3, true, std::chrono::milliseconds(30))
                  .IsConflict());
}

TEST(LockManagerTest, RowLockReentrantUpgrade) {
  LockManager lm;
  const storage::Rid r{1, 1};
  OPDELTA_ASSERT_OK(lm.LockRow(1, 3, r, false));
  OPDELTA_ASSERT_OK(lm.LockRow(1, 3, r, true));  // upgrade, sole sharer
  OPDELTA_ASSERT_OK(lm.LockRow(1, 3, r, true));  // re-entrant
}

TEST(LockManagerTest, ReleaseAllClearsEverything) {
  LockManager lm;
  OPDELTA_ASSERT_OK(lm.LockTable(1, 1, LockMode::kX));
  OPDELTA_ASSERT_OK(lm.LockRow(1, 1, storage::Rid{0, 0}, true));
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.HoldersOnTable(1), 0u);
  OPDELTA_ASSERT_OK(lm.LockTable(2, 1, LockMode::kX));
}

// --------------------------------------------------------------- Recovery

TEST(RecoveryTest, ReplaysOnlyCommittedInLsnOrder) {
  TempDir dir;
  {
    Wal wal;
    OPDELTA_ASSERT_OK(wal.Open(dir.Sub("wal"), WalOptions()));
    auto append = [&](LogRecordType type, TxnId txn, const std::string& data) {
      LogRecord rec;
      rec.type = type;
      rec.txn_id = txn;
      rec.after = data;
      OPDELTA_ASSERT_OK(wal.Append(&rec));
    };
    // Txn 1 commits, txn 2 aborts, txn 3 is left open.
    append(LogRecordType::kBegin, 1, "");
    append(LogRecordType::kInsert, 1, "a1");
    append(LogRecordType::kBegin, 2, "");
    append(LogRecordType::kInsert, 2, "b1");
    append(LogRecordType::kInsert, 1, "a2");
    append(LogRecordType::kCommit, 1, "");
    append(LogRecordType::kAbort, 2, "");
    append(LogRecordType::kBegin, 3, "");
    append(LogRecordType::kInsert, 3, "c1");
    OPDELTA_ASSERT_OK(wal.Close());
  }

  std::vector<std::string> applied;
  RecoveryStats stats;
  OPDELTA_ASSERT_OK(ReplayCommitted(
      dir.Sub("wal"),
      [&](const LogRecord& r) -> Status {
        applied.push_back(r.after);
        return Status::OK();
      },
      &stats));
  EXPECT_EQ(applied, (std::vector<std::string>{"a1", "a2"}));
  EXPECT_EQ(stats.committed_txns, 1u);
  EXPECT_EQ(stats.aborted_or_open_txns, 2u);
  EXPECT_EQ(stats.redo_applied, 2u);
}

TEST(RecoveryTest, ApplyErrorPropagates) {
  TempDir dir;
  {
    Wal wal;
    OPDELTA_ASSERT_OK(wal.Open(dir.Sub("wal"), WalOptions()));
    LogRecord rec;
    rec.type = LogRecordType::kBegin;
    rec.txn_id = 1;
    OPDELTA_ASSERT_OK(wal.Append(&rec));
    rec.type = LogRecordType::kInsert;
    OPDELTA_ASSERT_OK(wal.Append(&rec));
    rec.type = LogRecordType::kCommit;
    OPDELTA_ASSERT_OK(wal.Append(&rec));
    OPDELTA_ASSERT_OK(wal.Close());
  }
  Status st = ReplayCommitted(
      dir.Sub("wal"),
      [](const LogRecord&) { return Status::IOError("apply boom"); },
      nullptr);
  EXPECT_TRUE(st.IsIOError());
}

}  // namespace
}  // namespace opdelta::txn
