#include "hub/delta_hub.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/fault_env.h"
#include "pipeline/cdc_pipeline.h"
#include "pipeline/source_leg.h"
#include "sql/executor.h"
#include "workload/workload.h"
#include "tests/test_util.h"

namespace opdelta::hub {
namespace {

using opdelta::testing::CountRows;
using opdelta::testing::OpenDb;
using opdelta::testing::ScopedEnvOverride;
using opdelta::testing::TablesEqual;
using opdelta::testing::TempDir;
using OpKind = FaultInjectionEnv::OpKind;

engine::DatabaseOptions NoTimestampOptions() {
  engine::DatabaseOptions options;
  options.auto_timestamp = false;
  return options;
}

/// The acceptance scenario: four concurrent source streams — timestamp,
/// log, op-delta, and a 2-replica trigger group reconciled to a single
/// stream — all integrating into one warehouse, with per-source
/// transaction order preserved.
class HubIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine::DatabaseOptions ts_options;
    ts_options.auto_timestamp = true;
    src_ts_ = OpenDb(dir_, "src_ts", ts_options);
    src_log_ = OpenDb(dir_, "src_log", NoTimestampOptions());
    src_op_ = OpenDb(dir_, "src_op", NoTimestampOptions());
    replica1_ = OpenDb(dir_, "replica1", NoTimestampOptions());
    replica2_ = OpenDb(dir_, "replica2", NoTimestampOptions());
    wh_ = OpenDb(dir_, "wh", NoTimestampOptions());

    for (engine::Database* db : {src_ts_.get(), src_log_.get(), src_op_.get(),
                                 replica1_.get(), replica2_.get()}) {
      OPDELTA_ASSERT_OK(wl_.CreateTable(db, "parts"));
    }
    for (const char* table : {"parts", "parts_ts", "parts_log", "parts_rep"}) {
      OPDELTA_ASSERT_OK(wh_->CreateTable(table, workload::PartsWorkload::Schema()));
    }
  }

  Result<std::unique_ptr<DeltaHub>> MakeHub(HubOptions options) {
    options.work_dir = options.work_dir.empty() ? dir_.Sub("hub")
                                                : options.work_dir;
    OPDELTA_ASSIGN_OR_RETURN(std::unique_ptr<DeltaHub> hub,
                             DeltaHub::Create(wh_.get(), options));
    SourceSpec ts;
    ts.name = "ts";
    ts.source = src_ts_.get();
    ts.method = pipeline::Method::kTimestamp;
    ts.source_table = "parts";
    ts.warehouse_table = "parts_ts";
    OPDELTA_RETURN_IF_ERROR(hub->AddSource(ts));

    SourceSpec log;
    log.name = "log";
    log.source = src_log_.get();
    log.method = pipeline::Method::kLog;
    log.source_table = "parts";
    log.warehouse_table = "parts_log";
    OPDELTA_RETURN_IF_ERROR(hub->AddSource(log));

    SourceSpec op;
    op.name = "op";
    op.source = src_op_.get();
    op.method = pipeline::Method::kOpDelta;
    op.source_table = "parts";
    op.warehouse_table = "parts";
    OPDELTA_RETURN_IF_ERROR(hub->AddSource(op));

    // Two trigger-captured instances of dynamically replicated data,
    // reconciled to one authoritative stream (§2.2).
    for (int i = 1; i <= 2; ++i) {
      SourceSpec rep;
      rep.name = "rep" + std::to_string(i);
      rep.source = i == 1 ? replica1_.get() : replica2_.get();
      rep.method = pipeline::Method::kTrigger;
      rep.source_table = "parts";
      rep.warehouse_table = "parts_rep";
      rep.replica_group = "g";
      OPDELTA_RETURN_IF_ERROR(hub->AddSource(rep));
    }
    OPDELTA_RETURN_IF_ERROR(hub->Setup());
    return hub;
  }

  /// Runs a statement, retrying lock-timeout conflicts: when the hub's
  /// background driver drains a source concurrently, client transactions
  /// can conflict with the drain transaction and must retry, exactly as
  /// real OLTP clients would.
  template <typename Fn>
  Status Retry(Fn&& fn) {
    Status st;
    for (int attempt = 0; attempt < 200; ++attempt) {
      st = fn();
      if (!st.IsConflict()) return st;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return st;
  }

  Status Run(engine::Database* db, const sql::Statement& stmt) {
    return Retry([&] {
      return sql::Executor(db).ExecuteSql(stmt.ToSql()).status();
    });
  }

  /// Replicated COTS behaviour: the same statement lands on both replicas.
  Status RunReplicated(const sql::Statement& stmt) {
    OPDELTA_RETURN_IF_ERROR(Run(replica1_.get(), stmt));
    return Run(replica2_.get(), stmt);
  }

  /// One round of order-sensitive traffic on every source. The
  /// overlapping updates make final state depend on apply order, so any
  /// reordering at the warehouse shows up as a table mismatch.
  void DriveRound(DeltaHub* hub, int round) {
    const int64_t base = round * 40;
    OPDELTA_ASSERT_OK(
        Run(src_ts_.get(), wl_.MakeInsert("parts", base, 20)));
    OPDELTA_ASSERT_OK(Run(src_ts_.get(),
                          wl_.MakeUpdate("parts", 0, base + 10,
                                         "t" + std::to_string(round))));

    OPDELTA_ASSERT_OK(
        Run(src_log_.get(), wl_.MakeInsert("parts", base, 15)));
    OPDELTA_ASSERT_OK(Run(src_log_.get(),
                          wl_.MakeUpdate("parts", base, base + 10,
                                         "l" + std::to_string(round))));
    if (round > 1) {
      OPDELTA_ASSERT_OK(
          Run(src_log_.get(), wl_.MakeDelete("parts", base - 40, base - 35)));
    }

    extract::OpDeltaCapture* capture = hub->capture("op");
    ASSERT_NE(capture, nullptr);
    OPDELTA_ASSERT_OK(Retry([&] {
      return capture->RunTransaction({wl_.MakeInsert("parts", base, 10)})
          .status();
    }));
    // Two order-dependent updates over overlapping key ranges.
    OPDELTA_ASSERT_OK(Retry([&] {
      return capture
          ->RunTransaction({wl_.MakeUpdate("parts", 0, base + 5, "first"),
                            wl_.MakeUpdate("parts", 0, base + 3,
                                           "o" + std::to_string(round))})
          .status();
    }));

    OPDELTA_ASSERT_OK(RunReplicated(wl_.MakeInsert("parts", base, 12)));
    OPDELTA_ASSERT_OK(RunReplicated(wl_.MakeUpdate(
        "parts", base, base + 6, "r" + std::to_string(round))));
  }

  void ExpectWarehouseConverged() {
    EXPECT_TRUE(TablesEqual(src_ts_.get(), "parts", wh_.get(), "parts_ts"));
    EXPECT_TRUE(TablesEqual(src_log_.get(), "parts", wh_.get(), "parts_log"));
    EXPECT_TRUE(TablesEqual(src_op_.get(), "parts", wh_.get(), "parts"));
    // Sequential application of the replicated stream ends at the
    // replicas' own final state; both replicas saw identical statements.
    EXPECT_TRUE(TablesEqual(replica1_.get(), "parts", wh_.get(), "parts_rep"));
    EXPECT_TRUE(
        TablesEqual(replica1_.get(), "parts", replica2_.get(), "parts"));
  }

  TempDir dir_;
  workload::PartsWorkload wl_;
  std::unique_ptr<engine::Database> src_ts_, src_log_, src_op_;
  std::unique_ptr<engine::Database> replica1_, replica2_, wh_;
};

TEST_F(HubIntegrationTest, FourSourcesConvergeWithOrderPreserved) {
  Result<std::unique_ptr<DeltaHub>> hub = MakeHub(HubOptions());
  ASSERT_TRUE(hub.ok()) << hub.status().ToString();

  constexpr int kRounds = 4;
  for (int round = 0; round < kRounds; ++round) {
    DriveRound(hub->get(), round);
    OPDELTA_ASSERT_OK((*hub)->RunRound());
  }
  ExpectWarehouseConverged();

  const HubStats stats = (*hub)->Stats();
  EXPECT_EQ(stats.rounds, static_cast<uint64_t>(kRounds));
  ASSERT_EQ(stats.sources.size(), 5u);
  uint64_t shipped = 0;
  for (const SourceStats& s : stats.sources) {
    EXPECT_EQ(s.rounds, static_cast<uint64_t>(kRounds)) << s.name;
    EXPECT_GT(s.records_extracted, 0u) << s.name;
    EXPECT_GT(s.batches_shipped, 0u) << s.name;
    // Every shipped batch was applied and acknowledged.
    EXPECT_EQ(s.batches_applied, s.batches_shipped) << s.name;
    shipped += s.batches_shipped;
  }
  // The two replicas merge into one authoritative batch per round, so
  // fewer batches apply than ship.
  EXPECT_LT(stats.batches_applied, shipped);
  EXPECT_EQ(stats.batches_reconciled, 2u * kRounds);
  EXPECT_GT(stats.duplicates_dropped, 0u);  // replicas mirror each other
  EXPECT_GT(stats.transactions_applied, 0u);
  EXPECT_GT(stats.batches_staged, 0u);
  EXPECT_EQ(stats.staging_bytes, 0u);  // everything drained
  EXPECT_GT(stats.staging_peak_bytes, 0u);
  EXPECT_GT(stats.apply_micros_total, 0);
  EXPECT_GE(stats.apply_micros_total, stats.apply_micros_max);

  OPDELTA_EXPECT_OK((*hub)->Stop());
}

TEST_F(HubIntegrationTest, SequentialPipelineBaselineMatchesHubResult) {
  // Ground truth via the single-threaded path: a CdcPipeline over the
  // same archive log (log extraction is non-destructive, so the hub and
  // the baseline can both consume it) applied sequentially to a second
  // warehouse must produce exactly the table the hub produced.
  Result<std::unique_ptr<DeltaHub>> hub = MakeHub(HubOptions());
  ASSERT_TRUE(hub.ok()) << hub.status().ToString();
  for (int round = 0; round < 3; ++round) {
    DriveRound(hub->get(), round);
    OPDELTA_ASSERT_OK((*hub)->RunRound());
  }
  OPDELTA_EXPECT_OK((*hub)->Stop());

  auto baseline_wh = OpenDb(dir_, "baseline_wh", NoTimestampOptions());
  OPDELTA_ASSERT_OK(
      baseline_wh->CreateTable("parts", workload::PartsWorkload::Schema()));
  pipeline::PipelineOptions popts;
  popts.method = pipeline::Method::kLog;
  popts.source_table = "parts";
  popts.warehouse_table = "parts";
  popts.work_dir = dir_.Sub("baseline_pipeline");
  Result<std::unique_ptr<pipeline::CdcPipeline>> baseline =
      pipeline::CdcPipeline::Create(src_log_.get(), baseline_wh.get(), popts);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  OPDELTA_ASSERT_OK((*baseline)->Setup());
  OPDELTA_ASSERT_OK((*baseline)->RunOnce());

  EXPECT_TRUE(
      TablesEqual(baseline_wh.get(), "parts", wh_.get(), "parts_log"));
}

TEST_F(HubIntegrationTest, TinyStagingBudgetBackpressuresButConverges) {
  HubOptions options;
  options.staging_budget_bytes = 1;  // every batch oversized: serialized
  options.apply_workers = 1;
  Result<std::unique_ptr<DeltaHub>> hub = MakeHub(options);
  ASSERT_TRUE(hub.ok()) << hub.status().ToString();

  for (int round = 0; round < 3; ++round) {
    DriveRound(hub->get(), round);
    OPDELTA_ASSERT_OK((*hub)->RunRound());
  }
  ExpectWarehouseConverged();

  const HubStats stats = (*hub)->Stats();
  // With a 1-byte budget at most one batch is ever resident, so the peak
  // stays below the total volume that flowed through.
  uint64_t total_applied_bytes = 0;
  for (const SourceStats& s : stats.sources) {
    total_applied_bytes += s.bytes_shipped;
  }
  EXPECT_GT(stats.staging_peak_bytes, 0u);
  EXPECT_LT(stats.staging_peak_bytes, total_applied_bytes);
  EXPECT_EQ(stats.staging_bytes, 0u);
  OPDELTA_EXPECT_OK((*hub)->Stop());
}

TEST_F(HubIntegrationTest, BackgroundDriverIntegratesContinuously) {
  HubOptions options;
  options.poll_interval = std::chrono::milliseconds(2);
  Result<std::unique_ptr<DeltaHub>> hub = MakeHub(options);
  ASSERT_TRUE(hub.ok()) << hub.status().ToString();
  OPDELTA_ASSERT_OK((*hub)->Start());
  EXPECT_TRUE((*hub)->Start().code() == StatusCode::kBusy);

  for (int round = 0; round < 3; ++round) DriveRound(hub->get(), round);

  // Wait (bounded) for the driver to absorb everything. The bound is
  // generous: under `ctest -j$(nproc)` with the runtime lock checker on,
  // the driver thread can be starved for seconds at a time.
  const uint64_t want = CountRows(src_log_.get(), "parts");
  for (int i = 0; i < 3000; ++i) {
    if (CountRows(wh_.get(), "parts_log") == want &&
        (*hub)->Stats().staging_bytes == 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  OPDELTA_ASSERT_OK((*hub)->Stop());
  ExpectWarehouseConverged();
}

TEST(HubRestartTest, ShippedButUnappliedBatchesReplayWithoutLossOrDup) {
  TempDir dir;
  auto src = OpenDb(dir, "src", NoTimestampOptions());
  auto wh = OpenDb(dir, "wh", NoTimestampOptions());
  workload::PartsWorkload wl;
  OPDELTA_ASSERT_OK(wl.CreateTable(src.get(), "parts"));
  OPDELTA_ASSERT_OK(wl.CreateTable(wh.get(), "parts"));
  sql::Executor exec(src.get());

  // Phase 1 — the extract half of a hub round runs alone: the batch ships
  // durably and the watermark advances, then the process "dies" before
  // any integration. This is exactly the leg state a crashed hub leaves.
  pipeline::PipelineOptions leg_options;
  leg_options.method = pipeline::Method::kLog;
  leg_options.source_table = "parts";
  leg_options.warehouse_table = "parts";
  leg_options.work_dir = dir.Sub("hub") + "/s1";  // the hub's path for "s1"
  {
    OPDELTA_ASSERT_OK(Env::Default()->CreateDir(dir.Sub("hub")));
    Result<std::unique_ptr<pipeline::SourceLeg>> leg =
        pipeline::SourceLeg::Create(src.get(), leg_options);
    ASSERT_TRUE(leg.ok());
    OPDELTA_ASSERT_OK((*leg)->Setup());
    OPDELTA_ASSERT_OK(
        exec.ExecuteSql(wl.MakeInsert("parts", 0, 100).ToSql()).status());
    bool shipped = false;
    OPDELTA_ASSERT_OK((*leg)->ExtractAndShip(&shipped));
    EXPECT_TRUE(shipped);
    Result<uint64_t> backlog = (*leg)->Backlog();
    ASSERT_TRUE(backlog.ok());
    EXPECT_EQ(*backlog, 1u);  // staged, never integrated
  }
  EXPECT_EQ(CountRows(wh.get(), "parts"), 0u);

  // Phase 2 — a fresh hub over the same work_dir recovers: the staged
  // batch replays from the queue; the persisted watermark prevents
  // re-extraction of rows 0..99.
  OPDELTA_ASSERT_OK(
      exec.ExecuteSql(wl.MakeUpdate("parts", 0, 10, "after").ToSql())
          .status());
  HubOptions options;
  options.work_dir = dir.Sub("hub");
  Result<std::unique_ptr<DeltaHub>> hub = DeltaHub::Create(wh.get(), options);
  ASSERT_TRUE(hub.ok());
  SourceSpec spec;
  spec.name = "s1";
  spec.source = src.get();
  spec.method = pipeline::Method::kLog;
  spec.source_table = "parts";
  spec.warehouse_table = "parts";
  OPDELTA_ASSERT_OK((*hub)->AddSource(spec));
  OPDELTA_ASSERT_OK((*hub)->Setup());
  OPDELTA_ASSERT_OK((*hub)->RunRound());

  EXPECT_TRUE(TablesEqual(src.get(), "parts", wh.get(), "parts"));
  HubStats stats = (*hub)->Stats();
  ASSERT_EQ(stats.sources.size(), 1u);
  // Only the post-crash update re-extracted (20 images): rows 0..99 came
  // from the replayed batch, not a second extraction.
  EXPECT_EQ(stats.sources[0].records_extracted, 20u);
  EXPECT_EQ(stats.sources[0].batches_applied, 2u);  // replayed + new

  // An idle round ships nothing and changes nothing.
  OPDELTA_ASSERT_OK((*hub)->RunRound());
  stats = (*hub)->Stats();
  EXPECT_EQ(stats.sources[0].batches_shipped, 1u);  // phase-2 batch only
  EXPECT_TRUE(TablesEqual(src.get(), "parts", wh.get(), "parts"));
  OPDELTA_EXPECT_OK((*hub)->Stop());
}

TEST(HubExactlyOnceTest, ForcedRedeliveryIsDroppedByTheLedger) {
  // The queue is at-least-once: losing the consumer cursor (as a torn
  // cursor write or a restored backup would) redelivers every batch it
  // still holds. The apply ledger must recognize the redelivery and drop
  // it — acked means committed, and committed means never applied twice.
  TempDir dir;
  auto src = OpenDb(dir, "src", NoTimestampOptions());
  auto wh = OpenDb(dir, "wh", NoTimestampOptions());
  workload::PartsWorkload wl;
  OPDELTA_ASSERT_OK(wl.CreateTable(src.get(), "parts"));
  OPDELTA_ASSERT_OK(wl.CreateTable(wh.get(), "parts"));

  HubOptions options;
  options.work_dir = dir.Sub("hubw");
  auto make_hub = [&]() -> Result<std::unique_ptr<DeltaHub>> {
    OPDELTA_ASSIGN_OR_RETURN(std::unique_ptr<DeltaHub> hub,
                             DeltaHub::Create(wh.get(), options));
    SourceSpec spec;
    spec.name = "s1";
    spec.source = src.get();
    spec.method = pipeline::Method::kOpDelta;
    spec.source_table = "parts";
    spec.warehouse_table = "parts";
    OPDELTA_RETURN_IF_ERROR(hub->AddSource(spec));
    OPDELTA_RETURN_IF_ERROR(hub->Setup());
    return hub;
  };

  uint64_t epoch_before = 0;
  {
    Result<std::unique_ptr<DeltaHub>> hub = make_hub();
    ASSERT_TRUE(hub.ok()) << hub.status().ToString();
    extract::OpDeltaCapture* capture = (*hub)->capture("s1");
    ASSERT_NE(capture, nullptr);
    OPDELTA_ASSERT_OK(
        capture->RunTransaction({wl.MakeInsert("parts", 0, 20)}).status());
    OPDELTA_ASSERT_OK(
        capture->RunTransaction({wl.MakeUpdate("parts", 0, 10, "v1")})
            .status());
    OPDELTA_ASSERT_OK((*hub)->RunRound());
    const HubStats stats = (*hub)->Stats();
    ASSERT_EQ(stats.sources.size(), 1u);
    EXPECT_EQ(stats.sources[0].duplicates_dropped, 0u);
    EXPECT_NE(stats.sources[0].applied_epoch, 0u);
    EXPECT_EQ(stats.sources[0].applied_seq, 1u);  // both txns in one batch
    epoch_before = stats.sources[0].applied_epoch;
    OPDELTA_EXPECT_OK((*hub)->Stop());
  }
  EXPECT_TRUE(TablesEqual(src.get(), "parts", wh.get(), "parts"));
  const uint64_t rows_before = CountRows(wh.get(), "parts");

  // Force redelivery: drop the cursor, so the already-acknowledged batch
  // replays from offset zero on the next hub.
  OPDELTA_ASSERT_OK(Env::Default()->DeleteFile(
      dir.Sub("hubw") + "/s1/queue/queue.cursor"));

  Result<std::unique_ptr<DeltaHub>> hub = make_hub();
  ASSERT_TRUE(hub.ok()) << hub.status().ToString();
  OPDELTA_ASSERT_OK((*hub)->RunRound());

  // The ledger dropped the redelivered batch: same rows, same contents —
  // op-delta INSERTs applied twice would show as extra physical rows.
  EXPECT_EQ(CountRows(wh.get(), "parts"), rows_before);
  EXPECT_TRUE(TablesEqual(src.get(), "parts", wh.get(), "parts"));
  const HubStats stats = (*hub)->Stats();
  ASSERT_EQ(stats.sources.size(), 1u);
  EXPECT_EQ(stats.sources[0].duplicates_dropped, 1u);
  // The watermark is unchanged: the drop re-acked the same identity.
  EXPECT_EQ(stats.sources[0].applied_epoch, epoch_before);
  EXPECT_EQ(stats.sources[0].applied_seq, 1u);

  // An idle round redelivers nothing further.
  OPDELTA_ASSERT_OK((*hub)->RunRound());
  EXPECT_EQ((*hub)->Stats().sources[0].duplicates_dropped, 1u);
  EXPECT_EQ(CountRows(wh.get(), "parts"), rows_before);
  OPDELTA_EXPECT_OK((*hub)->Stop());
}

TEST(HubExactlyOnceTest, QuarantinedSourceResumesFromPersistedWatermark) {
  // A source whose hub-side files fail long enough to be quarantined must,
  // once its probe succeeds, resume exactly where its durable watermark
  // and queue left off: no extraction gap, no re-applied batch.
  TempDir dir;
  auto flaky_db = OpenDb(dir, "flaky", NoTimestampOptions());
  auto steady_db = OpenDb(dir, "steady", NoTimestampOptions());
  auto wh = OpenDb(dir, "wh", NoTimestampOptions());
  workload::PartsWorkload wl;
  // Op-delta integration requires matching table names on both sides.
  OPDELTA_ASSERT_OK(wl.CreateTable(flaky_db.get(), "parts_flaky"));
  OPDELTA_ASSERT_OK(wl.CreateTable(steady_db.get(), "parts_steady"));
  OPDELTA_ASSERT_OK(
      wh->CreateTable("parts_flaky", workload::PartsWorkload::Schema()));
  OPDELTA_ASSERT_OK(
      wh->CreateTable("parts_steady", workload::PartsWorkload::Schema()));

  FaultInjectionEnv fenv(Env::Default());
  ScopedEnvOverride guard(&fenv);

  HubOptions options;
  options.work_dir = dir.Sub("hubw");
  options.produce_attempts = 2;
  options.backoff_initial = std::chrono::milliseconds(1);
  options.backoff_max = std::chrono::milliseconds(4);
  options.quarantine_after = 2;
  Result<std::unique_ptr<DeltaHub>> hub = DeltaHub::Create(wh.get(), options);
  ASSERT_TRUE(hub.ok()) << hub.status().ToString();
  SourceSpec flaky;
  flaky.name = "flaky";
  flaky.source = flaky_db.get();
  flaky.method = pipeline::Method::kOpDelta;  // duplicate apply => extra rows
  flaky.source_table = "parts_flaky";
  flaky.warehouse_table = "parts_flaky";
  OPDELTA_ASSERT_OK((*hub)->AddSource(flaky));
  SourceSpec steady = flaky;
  steady.name = "steady";
  steady.source = steady_db.get();
  steady.source_table = "parts_steady";
  steady.warehouse_table = "parts_steady";
  OPDELTA_ASSERT_OK((*hub)->AddSource(steady));
  OPDELTA_ASSERT_OK((*hub)->Setup());

  auto drive = [&](int round) {
    for (const char* name : {"flaky", "steady"}) {
      extract::OpDeltaCapture* capture = (*hub)->capture(name);
      ASSERT_NE(capture, nullptr);
      const std::string table = std::string("parts_") + name;
      OPDELTA_ASSERT_OK(
          capture->RunTransaction({wl.MakeInsert(table, round * 10, 10)})
              .status());
    }
  };
  auto stats_for = [&](const std::string& name) {
    for (const SourceStats& s : (*hub)->Stats().sources) {
      if (s.name == name) return s;
    }
    ADD_FAILURE() << "no stats for " << name;
    return SourceStats();
  };

  // Round 1 is clean and establishes the flaky source's watermark.
  drive(1);
  OPDELTA_ASSERT_OK((*hub)->RunRound());
  const SourceStats before = stats_for("flaky");
  EXPECT_EQ(before.applied_seq, 1u);
  ASSERT_NE(before.applied_epoch, 0u);

  // The flaky source's hub files die; rounds keep coming until it is
  // quarantined. The steady source must keep flowing throughout.
  fenv.SetScope(dir.Sub("hubw") + "/flaky");
  fenv.SetErrorProbability(OpKind::kWrite, 1.0);
  for (int round = 2; round <= 5; ++round) {
    drive(round);
    (void)(*hub)->RunRound();
  }
  EXPECT_TRUE(stats_for("flaky").quarantined);
  EXPECT_GT(stats_for("flaky").errors, 0u);
  EXPECT_TRUE(
      TablesEqual(steady_db.get(), "parts_steady", wh.get(), "parts_steady"));

  // Heal the disk; the next successful probe lifts the quarantine and the
  // backlog drains from where the watermark left off.
  fenv.ClearFaults();
  bool recovered = false;
  for (int i = 0; i < 1000 && !recovered; ++i) {
    (void)(*hub)->RunRound();
    recovered = !stats_for("flaky").quarantined &&
                TablesEqual(flaky_db.get(), "parts_flaky", wh.get(),
                            "parts_flaky");
    if (!recovered) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(recovered);

  // No gap: the warehouse converged. No duplicate: physical row counts
  // match (TablesEqual alone would collapse duplicate keys) and the
  // ledger never had to drop a redelivery — recovery resumed cleanly
  // past the watermark instead of re-shipping applied data.
  EXPECT_TRUE(TablesEqual(flaky_db.get(), "parts_flaky", wh.get(), "parts_flaky"));
  EXPECT_EQ(CountRows(wh.get(), "parts_flaky"),
            CountRows(flaky_db.get(), "parts_flaky"));
  EXPECT_TRUE(
      TablesEqual(steady_db.get(), "parts_steady", wh.get(), "parts_steady"));
  const SourceStats after = stats_for("flaky");
  EXPECT_EQ(after.duplicates_dropped, 0u);
  EXPECT_EQ(after.applied_epoch, before.applied_epoch);  // same capture epoch
  EXPECT_GT(after.applied_seq, before.applied_seq);      // watermark advanced
  OPDELTA_EXPECT_OK((*hub)->Stop());
}

TEST(HubValidationTest, RejectsBadConfigurations) {
  TempDir dir;
  auto src = OpenDb(dir, "src", NoTimestampOptions());
  auto wh = OpenDb(dir, "wh", NoTimestampOptions());
  workload::PartsWorkload wl;
  OPDELTA_ASSERT_OK(wl.CreateTable(src.get(), "parts"));
  OPDELTA_ASSERT_OK(wl.CreateTable(wh.get(), "parts"));
  OPDELTA_ASSERT_OK(wh->CreateTable(
      "skinny",
      catalog::Schema({catalog::Column{"x", catalog::ValueType::kInt64}})));

  EXPECT_FALSE(DeltaHub::Create(nullptr, HubOptions()).ok());
  EXPECT_FALSE(DeltaHub::Create(wh.get(), HubOptions()).ok());  // no work_dir

  HubOptions options;
  options.work_dir = dir.Sub("hub");
  Result<std::unique_ptr<DeltaHub>> hub = DeltaHub::Create(wh.get(), options);
  ASSERT_TRUE(hub.ok());

  SourceSpec spec;
  spec.name = "a";
  spec.source = src.get();
  spec.method = pipeline::Method::kTrigger;
  spec.source_table = "parts";
  spec.warehouse_table = "parts";
  OPDELTA_ASSERT_OK((*hub)->AddSource(spec));
  EXPECT_TRUE((*hub)->AddSource(spec).code() ==
              StatusCode::kAlreadyExists);  // duplicate name

  spec.name = "b";
  spec.warehouse_table = "skinny";
  EXPECT_FALSE((*hub)->AddSource(spec).ok());  // schema mismatch

  spec.warehouse_table = "nope";
  EXPECT_TRUE((*hub)->AddSource(spec).IsNotFound());

  spec.warehouse_table = "parts";
  spec.method = pipeline::Method::kOpDelta;
  spec.replica_group = "g";
  EXPECT_TRUE((*hub)->AddSource(spec).code() ==
              StatusCode::kNotSupported);  // op-delta can't be reconciled

  // Group members must agree on the warehouse table.
  spec.method = pipeline::Method::kTrigger;
  spec.replica_group = "g2";
  OPDELTA_ASSERT_OK((*hub)->AddSource(spec));
  OPDELTA_ASSERT_OK(wh->CreateTable("parts2", workload::PartsWorkload::Schema()));
  SourceSpec other = spec;
  other.name = "c";
  other.warehouse_table = "parts2";
  OPDELTA_ASSERT_OK((*hub)->AddSource(other));
  EXPECT_FALSE((*hub)->Setup().ok());
}

}  // namespace
}  // namespace opdelta::hub
